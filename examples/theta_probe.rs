use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
fn main() {
    let p = CantileverProblem::new(40, 8, Material::unit(), LoadCase::PullX(1.0));
    let cfg = GmresConfig { tol: 1e-6, max_iters: 30000, ..Default::default() };
    for (label, pc) in [
        ("eps,1", SeqPrecond::Gls(10)),
        ("0.4,0.6", SeqPrecond::GlsOnTheta(10, IntervalUnion::single(0.4, 0.6))),
        ("0.5,1.0", SeqPrecond::GlsOnTheta(10, IntervalUnion::single(0.5, 1.0))),
        ("1e-4,0.1", SeqPrecond::GlsOnTheta(10, IntervalUnion::single(1e-4, 0.1))),
        ("0.9,1.0", SeqPrecond::GlsOnTheta(10, IntervalUnion::single(0.9, 1.0))),
    ] {
        let (_, h) = parfem::sequential::solve_static(&p, &pc, &cfg).unwrap();
        println!("{label}: {} iters (converged={})", h.iterations(), h.converged());
    }
}
