//! The unstructured-input workflow a downstream user follows: export a
//! distorted mesh to the text interchange format, re-import it as an
//! unstructured mesh (no grid structure assumed), partition it with the
//! greedy BFS graph partitioner, and solve in parallel with EDD-FGMRES.
//!
//! Run with: `cargo run --release --example unstructured_workflow`

use parfem::fem::{assembly, SubdomainSystem};
use parfem::mesh::graph::greedy_bfs_partition_cells;
use parfem::mesh::GenericQuadMesh;
use parfem::prelude::*;
use parfem_dd::SolveSession;

fn main() {
    // 1. Produce an "external" mesh file: a distorted cantilever written in
    //    the interchange format (stands in for a mesh-generator export).
    let source = QuadMesh::distorted(24, 8, 24.0, 8.0, 0.3, 2024);
    let generic = GenericQuadMesh::from_structured(&source);
    let mut file_bytes = Vec::new();
    generic.write(&mut file_bytes).expect("serialize mesh");
    println!(
        "exported mesh: {} nodes, {} elements, {} bytes",
        generic.n_nodes(),
        generic.n_elems(),
        file_bytes.len()
    );

    // 2. Import it back — from here on, nothing knows it was structured.
    let mesh = GenericQuadMesh::read(&file_bytes[..]).expect("parse mesh");
    assert_eq!(mesh, generic);

    // 3. Boundary conditions from topology + geometry: clamp the min-x
    //    boundary nodes, load the max-x ones.
    let mut dm = DofMap::new(mesh.n_nodes());
    for n in mesh.nodes_at_min_x(1e-9) {
        dm.clamp_node(n);
    }
    let boundary = mesh.boundary_nodes();
    let xmax = mesh.coords().iter().map(|c| c[0]).fold(f64::MIN, f64::max);
    let tip_nodes: Vec<usize> = boundary
        .iter()
        .copied()
        .filter(|&n| (mesh.node_coords(n)[0] - xmax).abs() < 1e-9)
        .collect();
    let mut loads = vec![0.0; dm.n_dofs()];
    for &n in &tip_nodes {
        loads[dm.dof(n, 1)] = -1e-3 / tip_nodes.len() as f64;
    }
    println!(
        "clamped {} nodes at x=0, loading {} tip nodes; {} equations",
        mesh.nodes_at_min_x(1e-9).len(),
        tip_nodes.len(),
        dm.n_free()
    );

    // 4. Graph partitioning (no grid knowledge) + per-subdomain assembly.
    let parts = 4;
    let partition = greedy_bfs_partition_cells(&mesh, parts);
    let mat = Material::unit();
    let systems: Vec<SubdomainSystem> = partition
        .subdomains_of(&mesh)
        .iter()
        .map(|s| SubdomainSystem::build_generic(&mesh, &dm, &mat, s, &loads, None))
        .collect();
    for s in &systems {
        println!(
            "  rank {}: {} local nodes, {} local dofs, {} neighbours",
            s.rank,
            s.nodes.len(),
            s.n_local_dofs(),
            s.neighbors.len()
        );
    }

    // 5. Parallel solve.
    let out = SolveSession::from_systems(&systems, dm.n_dofs())
        .machine(MachineModel::sgi_origin())
        .run()
        .expect("fault-free solve");
    assert!(out.history.converged());
    println!(
        "EDD-FGMRES-gls(7), P={parts}: {} iterations, modeled time {:.4} s",
        out.history.iterations(),
        out.modeled_time
    );

    // 6. Verify against the sequential assembled system.
    let k_raw = assembly::assemble_stiffness_generic(&mesh, &dm, &mat);
    let mut rhs = loads.clone();
    let k_bc = assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
    let r = k_bc.spmv(&out.u);
    let err: f64 = r
        .iter()
        .zip(&rhs)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        .sqrt();
    let scale: f64 = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!(
        "relative residual on the assembled system: {:.2e}",
        err / scale
    );
    assert!(err < 1e-5 * scale);
    println!("\nfull unstructured workflow (export → import → partition → solve) verified");
}
