//! Parallel scaling study: EDD vs RDD FGMRES with GLS preconditioning on
//! the virtual IBM SP2 and SGI Origin machines, P = 1..8 — a compact
//! version of the paper's Figs. 15–17.
//!
//! Run with: `cargo run --release --example scaling_study`

use parfem::prelude::*;

fn main() {
    let problem = CantileverProblem::new(64, 32, Material::unit(), LoadCase::PullX(1.0));
    println!(
        "cantilever {} equations; FGMRES-gls(7), tol 1e-6, restart 25\n",
        problem.n_eqn()
    );
    let cfg = SolverConfig::default();

    for model in [MachineModel::ibm_sp2(), MachineModel::sgi_origin()] {
        println!("== {} ==", model.name);
        println!(
            "{:>4} {:>14} {:>14} {:>10} {:>10}",
            "P", "EDD time (s)", "RDD time (s)", "EDD S(P)", "RDD S(P)"
        );
        let mut edd_t1 = 0.0;
        let mut rdd_t1 = 0.0;
        for p in [1usize, 2, 4, 8] {
            let epart = ElementPartition::strips_x(&problem.mesh, p);
            let edd = SolveSession::new(problem.as_problem())
                .strategy(Strategy::Edd(epart))
                .config(cfg.clone())
                .machine(model.clone())
                .run()
                .expect("fault-free solve");
            let npart = NodePartition::contiguous(problem.mesh.n_nodes(), p);
            let rdd = SolveSession::new(problem.as_problem())
                .strategy(Strategy::Rdd(npart))
                .config(cfg.clone())
                .machine(model.clone())
                .run()
                .expect("fault-free solve");
            assert!(edd.history.converged() && rdd.history.converged());
            if p == 1 {
                edd_t1 = edd.modeled_time;
                rdd_t1 = rdd.modeled_time;
            }
            println!(
                "{:>4} {:>14.4} {:>14.4} {:>10.2} {:>10.2}",
                p,
                edd.modeled_time,
                rdd.modeled_time,
                edd_t1 / edd.modeled_time,
                rdd_t1 / rdd.modeled_time
            );
        }
        println!();
    }
    println!("note: times are virtual (LogP-style machine model) — this host has too few");
    println!("cores for wall-clock speedup; see DESIGN.md for the substitution rationale.");
}
