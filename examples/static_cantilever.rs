//! Static elasticity study: compares every preconditioner of the paper's
//! Fig. 11 on a cantilever under pulling load, printing the per-iteration
//! convergence curves, and cross-checks the deflection against
//! Euler–Bernoulli beam theory for a shear load.
//!
//! Run with: `cargo run --release --example static_cantilever`

use parfem::prelude::*;
use parfem::sequential::SeqPrecond;

fn main() {
    let problem = CantileverProblem::new(40, 8, Material::unit(), LoadCase::PullX(1.0));
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };

    println!(
        "== preconditioner comparison (paper Fig. 11), Mesh2, {} eqns ==",
        problem.n_eqn()
    );
    for pc in [
        SeqPrecond::None,
        SeqPrecond::Jacobi,
        SeqPrecond::Ilu0,
        SeqPrecond::Neumann(20),
        SeqPrecond::Gls(7),
    ] {
        match parfem::sequential::solve_static(&problem, &pc, &cfg) {
            Ok((_, h)) => {
                // Print a sparse sampling of the residual curve.
                let r = &h.relative_residuals;
                let samples: Vec<String> = r
                    .iter()
                    .step_by((r.len() / 8).max(1))
                    .map(|v| format!("{v:.1e}"))
                    .collect();
                println!(
                    "{:>12}: {:4} iterations, curve [{}]",
                    pc.name(),
                    h.iterations(),
                    samples.join(", ")
                );
            }
            Err(e) => println!("{:>12}: failed ({e})", pc.name()),
        }
    }

    // Physics sanity: slender beam under tip shear vs Euler-Bernoulli.
    println!("\n== beam-theory cross-check ==");
    let p_total = -1e-3;
    let nx = 64;
    let ny = 4;
    let beam = {
        let mesh = QuadMesh::rectangle(nx, ny, 16.0, 1.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mut loads = vec![0.0; dm.n_dofs()];
        parfem::fem::assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, p_total, &mut loads);
        let sys = parfem::fem::assembly::build_static(&mesh, &dm, &Material::unit(), &loads);
        let (u, h) = parfem::sequential::solve_system(
            &sys.stiffness,
            &sys.rhs,
            &SeqPrecond::Gls(7),
            &GmresConfig {
                tol: 1e-10,
                max_iters: 100_000,
                ..Default::default()
            },
        )
        .expect("solve");
        assert!(h.converged());
        u[dm.dof(mesh.node_at(nx, ny / 2), 1)]
    };
    let analytic = p_total * 16.0_f64.powi(3) / (3.0 * (1.0 / 12.0));
    println!("FEM tip deflection      {beam:.6e}");
    println!("Euler-Bernoulli predict {analytic:.6e}");
    println!(
        "ratio {:.3} (shear-deformable FEM is slightly more flexible)",
        beam / analytic
    );
}
