//! Modal analysis with the paper's solver as the inner kernel: the lowest
//! natural frequency of the cantilever from inverse iteration on
//! `K x = λ M x`, each inverse application being one GLS-preconditioned
//! FGMRES solve; the highest frequency from a Lanczos run. Both validated
//! against Euler–Bernoulli beam theory.
//!
//! Run with: `cargo run --release --example modal_analysis`

use parfem::fem::assembly;
use parfem::krylov::lanczos;
use parfem::prelude::*;
use parfem::sequential::{solve_system, SeqPrecond};
use parfem::sparse::dense;

fn main() {
    // A slender cantilever so beam theory applies: L = 32, depth 2.
    let (nx, ny) = (64usize, 4usize);
    let (lx, ly) = (32.0f64, 2.0f64);
    let mesh = QuadMesh::rectangle(nx, ny, lx, ly);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();

    let k_raw = assembly::assemble_stiffness(&mesh, &dm, &mat);
    let m_raw = assembly::assemble_mass(&mesh, &dm, &mat, true);
    let mut f0 = vec![0.0; dm.n_dofs()];
    let k = assembly::apply_dirichlet(&k_raw, &dm, &mut f0);
    let m = assembly::apply_dirichlet_mass(&m_raw, &dm);

    // Symmetric reduction: B = D^{-1/2} K D^{-1/2} with D = lumped mass
    // (unit entries at constrained DOFs keep B well posed there; those rows
    // are decoupled identity rows of K and do not touch the beam modes).
    let m_diag = m.diagonal();
    let d_inv_sqrt: Vec<f64> = m_diag
        .iter()
        .map(|&mi| if mi > 0.0 { 1.0 / mi.sqrt() } else { 1.0 })
        .collect();
    let mut b = k.clone();
    b.scale_symmetric(&d_inv_sqrt);

    println!("cantilever L={lx}, depth={ly}: {} equations", dm.n_free());

    // --- lowest eigenvalue: inverse iteration, inner solves by FGMRES ---
    let n = b.n_rows();
    // Inverse iteration tolerates inexact inner solves: 1e-6 per solve is
    // plenty for a Rayleigh quotient accurate to ~1e-3.
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 100_000,
        ..Default::default()
    };
    let mut x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
    // Project out the constrained DOFs.
    for (d, _) in dm.fixed_dofs() {
        x[d] = 0.0;
    }
    let nx0 = dense::norm2(&x);
    dense::scale(1.0 / nx0, &mut x);
    let mut lambda_min = 0.0;
    let mut total_inner_iters = 0usize;
    for sweep in 0..6 {
        let (y, h) = solve_system(&b, &x, &SeqPrecond::GlsAuto(10), &cfg).expect("inner solve");
        assert!(h.converged(), "inverse-iteration solve failed");
        total_inner_iters += h.iterations();
        let mut y = y;
        for (d, _) in dm.fixed_dofs() {
            y[d] = 0.0;
        }
        let ny = dense::norm2(&y);
        lambda_min = dense::dot(&x, &y) / (ny * ny); // Rayleigh for B via y ~ B^{-1} x
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        let _ = sweep;
    }
    let omega1 = lambda_min.sqrt();
    println!(
        "inverse iteration: lambda_min = {lambda_min:.6e} (omega_1 = {omega1:.5e}), {total_inner_iters} inner FGMRES iterations"
    );

    // Beam theory: omega_1 = (beta1 L)^2 sqrt(E I / (rho A)) / L^2,
    // (beta1 L) = 1.8751.
    let inertia = ly.powi(3) / 12.0;
    let area = ly;
    let omega_beam = 1.8751_f64.powi(2) / lx.powi(2) * (1.0 * inertia / (1.0 * area)).sqrt();
    println!("Euler-Bernoulli omega_1 = {omega_beam:.5e}");
    let ratio = omega1 / omega_beam;
    println!("ratio {ratio:.3} (FEM slightly stiffer/softer within shear effects)");
    assert!(
        (ratio - 1.0).abs() < 0.12,
        "first bending frequency must match beam theory within ~12%"
    );

    // --- highest eigenvalue: plain Lanczos on B ---
    let (alpha, beta) = lanczos::lanczos_tridiagonal(&b, 40);
    let ritz = lanczos::sym_tridiag_eigenvalues(&alpha, &beta);
    let lambda_max = *ritz.last().unwrap();
    println!(
        "Lanczos(40): lambda_max = {lambda_max:.5e} (highest dilatational grid mode, period ~{:.2} time units)",
        2.0 * std::f64::consts::PI / lambda_max.sqrt()
    );
    assert!(lambda_max > lambda_min * 1e4, "spectrum must be wide");
    println!("\nmodal analysis composed entirely from the reproduction's own kernels");
}
