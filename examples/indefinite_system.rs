//! GLS polynomial preconditioning on a symmetric **indefinite** system —
//! the capability that distinguishes GLS from Neumann/Chebyshev (paper
//! Section 2.1.3: Θ may be "a union of an arbitrary number of disjoint
//! intervals", so "the GLS method can be a general method of solving
//! symmetric linear systems including both symmetric indefinite and
//! symmetric positive definite systems").
//!
//! We build a shifted FEM operator `A − σI` (the kind of system interior
//! eigenvalue problems and Helmholtz-like formulations produce), estimate
//! its two-sided spectrum, and compare:
//! - GLS on the two-interval Θ (works),
//! - Neumann series (its geometric series cannot converge across 0),
//! - unpreconditioned GMRES.
//!
//! Run with: `cargo run --release --example indefinite_system`

use parfem::krylov::gmres::{fgmres, GmresConfig};
use parfem::precond::{GlsPrecond, IdentityPrecond, IntervalUnion, NeumannPrecond};
use parfem::prelude::*;
use parfem::sparse::gershgorin;
use parfem::sparse::scaling::scale_system;

fn main() {
    // Scaled FEM stiffness: sigma(A) in (0, 1).
    let problem = CantileverProblem::new(24, 6, Material::unit(), LoadCase::PullX(1.0));
    let sys = problem.static_system();
    let (a_spd, _, _) = scale_system(&sys.stiffness, &sys.rhs).unwrap();
    let n = a_spd.n_rows();

    // Shift into indefiniteness: A = A_spd - sigma I.
    let sigma = 0.35;
    let shift = CsrMatrix::from_diagonal(&vec![-sigma; n]);
    let a = a_spd.add_scaled(1.0, &shift).unwrap();

    let lmax = gershgorin::power_iteration_lambda_max(&a, 50_000, 1e-12);
    println!("shifted operator: sigma = {sigma}, lambda_max = {lmax:.4} (spectrum straddles 0)");

    // Two-interval spectrum estimate with a guard band around 0. Any
    // eigenvalues inside the band are simply left to GMRES.
    let gap = 0.02;
    let theta = IntervalUnion::new(vec![(-sigma - 0.01, -gap), (gap, lmax + 0.01)]);
    println!(
        "theta = ({:.3}, {:.3}) u ({:.3}, {:.3})",
        -sigma - 0.01,
        -gap,
        gap,
        lmax + 0.01
    );

    // Manufactured solution.
    let xe: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
    let b = a.spmv(&xe);
    let cfg = GmresConfig {
        tol: 1e-8,
        restart: 50,
        max_iters: 30_000,
        ..Default::default()
    };

    let check = |label: &str, x: &[f64], iters: usize, converged: bool| {
        let r = a.spmv(x);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).powi(2))
            .sum::<f64>()
            .sqrt();
        println!("{label:>24}: {iters:>6} iterations, converged = {converged}, ||r|| = {err:.2e}");
        (converged, err)
    };

    let plain = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
    check(
        "unpreconditioned",
        &plain.x,
        plain.history.iterations(),
        plain.history.converged(),
    );

    let gls = GlsPrecond::new(10, theta);
    let pre = fgmres(&a, &gls, &b, &vec![0.0; n], &cfg);
    let (ok, _) = check(
        "gls(10) on 2 intervals",
        &pre.x,
        pre.history.iterations(),
        pre.history.converged(),
    );
    assert!(ok, "GLS must handle the indefinite system");

    // Neumann cannot work across 0: with sigma(A) straddling zero there is
    // no omega with rho(I - omega A) < 1.
    let neu = NeumannPrecond::new(10, 1.0 / lmax);
    let failed = fgmres(&a, &neu, &b, &vec![0.0; n], &cfg);
    check(
        "neumann(10) (expected bad)",
        &failed.x,
        failed.history.iterations(),
        failed.history.converged(),
    );

    assert!(
        pre.history.iterations() < plain.history.iterations(),
        "GLS should accelerate the indefinite solve: {} vs {}",
        pre.history.iterations(),
        plain.history.iterations()
    );
    println!("\nGLS handles the indefinite spectrum; the Neumann series cannot (paper Sec. 2.1.3)");
}
