//! Post-processing: solve the cantilever in parallel, recover centroid
//! stresses, and report the von Mises hot spot (the clamped root, as beam
//! theory predicts).
//!
//! Run with: `cargo run --release --example stress_recovery`

use parfem::fem::stress;
use parfem::prelude::*;

fn main() {
    let problem = CantileverProblem::new(32, 8, Material::unit(), LoadCase::ShearY(-1e-3));
    let part = ElementPartition::strips_x(&problem.mesh, 4);
    let cfg = SolverConfig {
        gmres: GmresConfig {
            tol: 1e-10,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = SolveSession::new(problem.as_problem())
        .strategy(Strategy::Edd(part))
        .config(cfg)
        .machine(MachineModel::sgi_origin())
        .run()
        .expect("fault-free solve");
    assert!(out.history.converged());
    println!(
        "solved {} equations in {} iterations",
        problem.n_eqn(),
        out.history.iterations()
    );

    let stresses =
        stress::centroid_stresses(&problem.mesh, &problem.dof_map, &problem.material, &out.u);

    // Hot spot.
    let (e_max, s_max) = stresses
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.von_mises.partial_cmp(&b.1.von_mises).unwrap())
        .expect("non-empty mesh");
    let col = e_max % problem.mesh.nx();
    let row = e_max / problem.mesh.nx();
    println!(
        "peak von Mises {:.4e} at element ({col}, {row}) — sigma_xx {:.3e}, sigma_yy {:.3e}, tau {:.3e}",
        s_max.von_mises, s_max.sigma[0], s_max.sigma[1], s_max.sigma[2]
    );
    assert!(
        col <= 1,
        "bending stress must peak at the clamped root, found column {col}"
    );

    // Column-wise max von Mises decays along the beam like the bending
    // moment M(x) = P (L - x).
    println!("\ncolumn  max_von_mises   bending_moment_ratio");
    let nx = problem.mesh.nx();
    for col in (0..nx).step_by(nx / 8) {
        let m = (0..problem.mesh.ny())
            .map(|row| stresses[row * nx + col].von_mises)
            .fold(0.0_f64, f64::max);
        let moment_ratio = (nx - col) as f64 / nx as f64;
        println!("{col:>6}  {m:>13.4e}   {moment_ratio:>8.2}");
    }
    println!("\nstress field consistent with beam theory (root-peaked, linear decay)");
}
