//! Elastodynamics: a suddenly applied tip load on a cantilever, integrated
//! with Newmark average acceleration; every time step's effective system
//! `[αM + K] u = f̂` is solved by polynomial-preconditioned FGMRES (the
//! paper's dynamic experiments, Figs. 12/14).
//!
//! Run with: `cargo run --release --example dynamic_cantilever`

use parfem::dynamic::{first_step_solve, simulate};
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;

fn main() {
    let problem = CantileverProblem::new(24, 4, Material::unit(), LoadCase::ShearY(-1e-3));
    let cfg = GmresConfig {
        tol: 1e-8,
        max_iters: 50_000,
        ..Default::default()
    };

    // First-step convergence comparison (the Fig. 12 measurement).
    println!("== first Newmark step, dt = 0.1 ==");
    for pc in [
        SeqPrecond::Ilu0,
        SeqPrecond::Neumann(20),
        SeqPrecond::Gls(7),
        SeqPrecond::Gls(20),
    ] {
        let (_, h) = first_step_solve(&problem, 0.1, &pc, &cfg).expect("first-step solve");
        println!("{:>12}: {:4} iterations", pc.name(), h.iterations());
    }

    // Transient: oscillation around the static deflection with ~2x dynamic
    // overshoot (classic suddenly-applied-load response). The fundamental
    // bending period of this beam (E=1, rho=1, L=24, unit-square elements)
    // is ~900 s, so 400 steps of dt=3 cover ~1.3 periods.
    println!("\n== transient, 400 steps of dt = 3.0 ==");
    let (u_static, _) =
        parfem::sequential::solve_static(&problem, &SeqPrecond::Gls(7), &cfg).unwrap();
    let tip = problem.dof_map.dof(
        problem.mesh.node_at(problem.mesh.nx(), problem.mesh.ny()),
        1,
    );
    let out = simulate(&problem, 3.0, 400, &SeqPrecond::Gls(7), &cfg).expect("transient");
    let peak = out
        .tip_history
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let mean: f64 = out.tip_history.iter().sum::<f64>() / out.tip_history.len() as f64;
    println!("static tip deflection  {:.6e}", u_static[tip]);
    println!("dynamic mean           {mean:.6e}");
    println!("dynamic peak           {peak:.6e}");
    println!(
        "overshoot factor       {:.2} (theory: 2.0 for undamped step load)",
        peak / u_static[tip]
    );
    println!(
        "total FGMRES iterations over the transient: {} (all converged: {})",
        out.total_iterations, out.all_converged
    );
}
