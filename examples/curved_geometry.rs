//! A curved domain through the full parallel pipeline: a quarter-annulus
//! ring clamped at one end, loaded tangentially at the other — the curved
//! counterpart of the paper's cantilever, exercising the isoparametric Q4
//! element with genuinely non-rectangular Jacobians.
//!
//! Run with: `cargo run --release --example curved_geometry`

use parfem::fem::{assembly, stress};
use parfem::prelude::*;

fn main() {
    // Quarter annulus, inner radius 4, outer 5 (a slender curved beam).
    // Angle decreases with s so the (x, y) orientation stays positive:
    // Edge::Left (s = 0) is the angle-pi/2 end at x = 0, Edge::Right is the
    // angle-0 end on the x-axis.
    let (nx, ny) = (48usize, 4usize);
    let mesh = QuadMesh::mapped(nx, ny, |s, t| {
        let r = 4.0 + t;
        let a = (1.0 - s) * std::f64::consts::FRAC_PI_2;
        [r * a.cos(), r * a.sin()]
    });
    // Clamp the angle-pi/2 end.
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    // Tangential load at the free (angle-0) end: the arc tangent at (r, 0)
    // is the y direction.
    let p_total = -1e-3;
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, p_total, &mut loads);
    let mat = Material::unit();

    println!(
        "quarter-annulus ring: {} elements, {} equations",
        mesh.n_elems(),
        dm.n_free()
    );

    let part = ElementPartition::strips_x(&mesh, 4);
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .gmres(GmresConfig {
            tol: 1e-10,
            ..Default::default()
        })
        .machine(MachineModel::sgi_origin())
        .run()
        .expect("fault-free solve");
    assert!(out.history.converged());
    println!(
        "EDD-FGMRES-gls(7), P=4: {} iterations, modeled time {:.4} s",
        out.history.iterations(),
        out.modeled_time
    );

    // Tip deflection vs curved-beam theory. Castigliano with bending moment
    // M(phi) = P R (1 - cos phi) along the quarter arc gives, at the load
    // and in its direction:
    //   delta = (3 pi / 4 - 2) P R^3 / (E I)  ~  0.3562 P R^3 / (E I).
    let tip = dm.dof(mesh.node_at(nx, ny / 2), 1);
    let r_mid: f64 = 4.5;
    let inertia = 1.0 / 12.0; // unit-thickness, depth-1 section
    let coeff = 3.0 * std::f64::consts::FRAC_PI_4 - 2.0;
    let delta_theory = coeff * p_total.abs() * r_mid.powi(3) / inertia;
    // The load points in -y at the tip, so u_y is negative there.
    let delta_fem = -out.u[tip];
    println!(
        "tip tangential deflection: FEM {delta_fem:.5e}, curved-beam theory {delta_theory:.5e}"
    );
    println!("ratio {:.3}", delta_fem / delta_theory);
    assert!(
        (delta_fem / delta_theory - 1.0).abs() < 0.25,
        "FEM must land near curved-beam theory"
    );

    // Peak bending stress sits at the clamped root.
    let stresses = stress::centroid_stresses(&mesh, &dm, &mat, &out.u);
    let (e_max, s_max) = stresses
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.von_mises.partial_cmp(&b.1.von_mises).unwrap())
        .expect("non-empty");
    println!(
        "peak von Mises {:.3e} at element column {} (0 = clamped root)",
        s_max.von_mises,
        e_max % nx
    );
    assert!(e_max % nx <= 1, "stress must peak at the root");
    println!("\ncurved geometry handled end to end by the same parallel pipeline");
}
