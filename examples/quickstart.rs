//! Quickstart: assemble a cantilever, solve it with the parallel
//! element-based domain-decomposition FGMRES under a GLS(7) polynomial
//! preconditioner, and verify the solution against a sequential solve.
//!
//! Run with: `cargo run --release --example quickstart`

use parfem::prelude::*;
use parfem::sequential::SeqPrecond;

fn main() {
    // A 40x8-element cantilever plate (the paper's Mesh2), clamped on the
    // left, pulled axially at the free end.
    let problem = CantileverProblem::new(40, 8, Material::unit(), LoadCase::PullX(1.0));
    println!(
        "cantilever {}x{} elements, {} nodes, {} equations",
        problem.mesh.nx(),
        problem.mesh.ny(),
        problem.mesh.n_nodes(),
        problem.n_eqn()
    );

    // Parallel solve: 4 element-based subdomains, GLS(7) polynomial
    // preconditioning, virtual SGI Origin machine model.
    let part = ElementPartition::strips_x(&problem.mesh, 4);
    let cfg = SolverConfig::default(); // gls(7), enhanced EDD, tol 1e-6
    let out = SolveSession::new(problem.as_problem())
        .strategy(Strategy::Edd(part))
        .config(cfg.clone())
        .machine(MachineModel::sgi_origin())
        .run()
        .expect("fault-free solve");
    println!(
        "parallel EDD-FGMRES-gls(7), P=4: {} iterations, converged={}, modeled time {:.4} s",
        out.history.iterations(),
        out.history.converged(),
        out.modeled_time
    );

    // Sequential reference.
    let (u_seq, h_seq) =
        parfem::sequential::solve_static(&problem, &SeqPrecond::Gls(7), &cfg.gmres)
            .expect("sequential solve");
    println!(
        "sequential FGMRES-gls(7):     {} iterations, converged={}",
        h_seq.iterations(),
        h_seq.converged()
    );

    // Compare tip displacements.
    let tip = problem.dof_map.dof(
        problem.mesh.node_at(problem.mesh.nx(), problem.mesh.ny()),
        0,
    );
    println!(
        "tip u_x: parallel {:.6e} vs sequential {:.6e}",
        out.u[tip], u_seq[tip]
    );
    let diff = (out.u[tip] - u_seq[tip]).abs() / u_seq[tip].abs().max(1e-30);
    assert!(diff < 1e-4, "parallel and sequential solutions must agree");
    println!("relative difference {diff:.2e} — ok");

    // Communication profile of rank 0 (Table-1-style numbers).
    let s = &out.reports[0].stats;
    println!(
        "rank 0 traffic: {} neighbour exchanges, {} all-reduces, {} bytes sent",
        s.neighbor_exchanges, s.allreduces, s.bytes_sent
    );
}
