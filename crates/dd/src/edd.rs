//! Element-based domain-decomposition FGMRES (paper Algorithms 5 and 6).
//!
//! The distributed operator keeps each subdomain's stiffness **unassembled**
//! (local distributed format); one application is a purely local SpMV
//! followed by the nearest-neighbour interface sum:
//!
//! ```text
//! ȳ = ⊕Σ_{∂Ω} (Â⁽ˢ⁾ x̄)            (Eqs. 36–37 + 28)
//! ```
//!
//! taking and returning vectors in the *global distributed* format. Because
//! [`EddOperator`] implements [`LinearOperator`], the polynomial
//! preconditioners run on it verbatim — each internal matrix–vector product
//! performs its own interface exchange, exactly the paper's Algorithm 7.
//!
//! Two FGMRES variants are provided:
//! - [`EddVariant::Basic`] (Algorithm 5) keeps intermediate vectors in local
//!   distributed form, costing **three** interface exchanges per Arnoldi
//!   step (the two extra round-trips are numerically idempotent, so both
//!   variants produce bit-identical iterates);
//! - [`EddVariant::Enhanced`] (Algorithm 6) keeps everything global
//!   distributed and needs **one** exchange per step — the paper's headline
//!   communication reduction (Table 1).
//!
//! Inner products of global distributed vectors deduplicate interface
//! entries by multiplicity weighting; classical Gram–Schmidt batches all of
//! an iteration's inner products (plus `‖w‖²`) into a single all-reduce, and
//! the post-orthogonalization norm comes from the Pythagorean identity
//! `‖w'‖² = ‖w‖² − Σh²` (with a guarded recomputation when cancellation
//! bites), keeping the global communication at one reduction per iteration
//! as Table 1 claims.

use crate::dist_vec::{EddLayout, ExchangeBuffers};
use crate::error::SolveError;
use crate::solver::{dd_fgmres, DdResult, DistributedOperator};
use parfem_krylov::gmres::GmresConfig;
use parfem_krylov::KrylovWorkspace;
use parfem_msg::Communicator;
use parfem_precond::{InterfaceConsistency, Preconditioner};
use parfem_sparse::variant::{select, SelectedKernel, VariantChoice};
use parfem_sparse::{kernels, CsrMatrix, KernelPolicy, LinearOperator};
use parfem_trace::MetricsRegistry;
use std::cell::RefCell;

/// Which of the paper's EDD algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EddVariant {
    /// Algorithm 5: three interface exchanges per Arnoldi step.
    Basic,
    /// Algorithm 6: one interface exchange per Arnoldi step.
    Enhanced,
}

/// The element-based distributed operator `x̄ ↦ ⊕Σ (Â⁽ˢ⁾ x̄)`.
pub struct EddOperator<'a, C: Communicator> {
    /// The (scaled) local distributed matrix `Â⁽ˢ⁾`.
    pub a_local: &'a CsrMatrix,
    /// Interface layout.
    pub layout: &'a EddLayout,
    /// This rank's communicator endpoint.
    pub comm: &'a C,
    /// The right-hand side in local distributed format, when this operator
    /// drives a solve (needed by [`DistributedOperator::residual_into`]).
    b_local: Option<&'a [f64]>,
    /// Which of the paper's EDD algorithms the flexible-preconditioning
    /// step follows.
    variant: EddVariant,
    /// Persistent interface-exchange staging, behind interior mutability
    /// because [`LinearOperator::apply_into`] takes `&self`. Every operator
    /// application reuses these buffers, so repeated matvecs (each
    /// polynomial-preconditioner term, every Arnoldi step) allocate nothing.
    bufs: RefCell<ExchangeBuffers>,
    /// Separate staging for the residual recomputes and the basic variant's
    /// re-sums, so they never contend with an in-flight matvec exchange.
    xbufs: RefCell<ExchangeBuffers>,
    /// Flops of the interface-row subset of one local SpMV (`2·nnz` over
    /// rows shared with a neighbour) — the part that must finish before the
    /// exchange can be posted.
    interface_flops: u64,
    /// Flops of the interior-row subset — the part overlapped with the
    /// in-flight exchange. `interface_flops + interior_flops` equals
    /// [`CsrMatrix::spmv_flops`] exactly.
    interior_flops: u64,
    /// Live metrics surface for solves driven through this operator
    /// (disabled unless installed via [`EddOperator::with_metrics`]).
    metrics: MetricsRegistry,
    /// Kernel variant for the *blocking* local SpMV, chosen by
    /// [`EddOperator::with_kernels`]. `None` keeps the scalar CSR path
    /// (the golden reference). The overlapped interface/interior split
    /// always uses the row-indexed CSR kernels regardless — the split
    /// schedule needs per-row addressing the packed formats don't expose.
    local_variant: Option<SelectedKernel<'a>>,
}

impl<'a, C: Communicator> EddOperator<'a, C> {
    /// Wraps a subdomain's local distributed matrix as the global operator.
    pub fn new(a_local: &'a CsrMatrix, layout: &'a EddLayout, comm: &'a C) -> Self {
        Self::for_solve(a_local, layout, comm, None, EddVariant::Enhanced)
    }

    /// Like [`EddOperator::new`], but carrying the right-hand side and
    /// algorithm variant a solve needs.
    pub(crate) fn for_solve(
        a_local: &'a CsrMatrix,
        layout: &'a EddLayout,
        comm: &'a C,
        b_local: Option<&'a [f64]>,
        variant: EddVariant,
    ) -> Self {
        let row_nnz_flops = |rows: &[usize]| -> u64 {
            let row_ptr = a_local.raw_parts().0;
            rows.iter()
                .map(|&r| 2 * (row_ptr[r + 1] - row_ptr[r]) as u64)
                .sum()
        };
        EddOperator {
            a_local,
            layout,
            comm,
            b_local,
            variant,
            bufs: RefCell::new(ExchangeBuffers::new()),
            xbufs: RefCell::new(ExchangeBuffers::new()),
            interface_flops: row_nnz_flops(layout.interface_rows()),
            interior_flops: row_nnz_flops(layout.interior_rows()),
            metrics: MetricsRegistry::disabled(),
            local_variant: None,
        }
    }

    /// Installs a live [`MetricsRegistry`]; [`dd_fgmres`] then records its
    /// solver aggregates through it (rank 0 only).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Selects a local-SpMV kernel variant for `policy` (see
    /// [`parfem_sparse::variant::select`]). [`KernelPolicy::Scalar`] keeps
    /// the plain CSR path untouched; other policies replace the blocking
    /// local SpMV only — the overlapped split schedule and the residual
    /// recompute stay on the (bit-identical) row-indexed scalar kernels.
    pub fn with_kernels(mut self, policy: KernelPolicy) -> Self {
        self.local_variant = match policy {
            KernelPolicy::Scalar => None,
            p => Some(select(self.a_local, p)),
        };
        self
    }

    /// The kernel variant the blocking local SpMV dispatches to.
    pub fn kernel_choice(&self) -> VariantChoice {
        self.local_variant
            .as_ref()
            .map_or(VariantChoice::Scalar, |s| s.choice())
    }

    /// Fused `y = ⊕Σ (Â⁽ˢ⁾ diag(s) x)`: scaling, local SpMV and interface
    /// exchange in one pass, without materialising `diag(s) x`.
    ///
    /// Each CSR row accumulates `v·(s[c]·x[c])` terms in the same 4-way
    /// tree as the plain kernel on a pre-scaled vector, so the result is
    /// **bit-identical** to `tmp[i] = s[i]*x[i]; self.apply_into(&tmp, y)`
    /// — only the intermediate store/reload of `tmp` is eliminated. The
    /// overlapped schedule is preserved: interface rows finish first, the
    /// exchange posts, interior rows compute in flight.
    pub fn apply_scaled_into(&self, s: &[f64], x: &[f64], y: &mut [f64]) {
        assert_eq!(s.len(), x.len(), "scale/vector length mismatch");
        let (row_ptr, col_idx, values) = self.a_local.raw_parts();
        // Fused arithmetic is 3 flops per stored entry (scale, multiply,
        // add) versus 2 for the plain SpMV; charge the modeled machine
        // accordingly so overlap studies stay honest.
        let fused = |flops: u64| flops + flops / 2;
        if self.layout.overlap() && !self.layout.neighbors.is_empty() {
            kernels::spmv_scaled_rows_indexed(
                row_ptr,
                col_idx,
                values,
                s,
                x,
                y,
                self.layout.interface_rows(),
            );
            self.comm.work(fused(self.interface_flops));
            self.trace_spmv();
            self.layout
                .interface_sum_split(self.comm, y, &mut self.bufs.borrow_mut(), |y| {
                    kernels::spmv_scaled_rows_indexed(
                        row_ptr,
                        col_idx,
                        values,
                        s,
                        x,
                        y,
                        self.layout.interior_rows(),
                    );
                    self.comm.work(fused(self.interior_flops));
                });
        } else {
            kernels::spmv_scaled_raw_range(row_ptr, col_idx, values, s, x, y, 0..y.len());
            self.comm.work(fused(self.a_local.spmv_flops()));
            self.trace_spmv();
            self.layout
                .interface_sum_buffered(self.comm, y, &mut self.bufs.borrow_mut());
        }
    }

    fn trace_spmv(&self) {
        if let Some(tracer) = self.comm.tracer() {
            tracer.add_count("spmv_calls", 1);
            tracer.add_count("spmv_rows", self.a_local.n_rows() as u64);
            tracer.add_count("spmv_flops", self.a_local.spmv_flops());
        }
    }
}

impl<C: Communicator> LinearOperator for EddOperator<'_, C> {
    fn dim(&self) -> usize {
        self.a_local.n_rows()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        if self.layout.overlap() && !self.layout.neighbors.is_empty() {
            // Overlapped schedule: finish only the interface rows, post the
            // exchange, and compute the interior rows while the messages
            // fly. Each row's dot product is the identical arithmetic in
            // either schedule, and the received contributions are added in
            // the same neighbour order, so the result is bit-identical to
            // the blocking path — only the modeled time changes.
            let (row_ptr, col_idx, values) = self.a_local.raw_parts();
            kernels::spmv_rows_indexed(
                row_ptr,
                col_idx,
                values,
                x,
                y,
                self.layout.interface_rows(),
            );
            self.comm.work(self.interface_flops);
            self.trace_spmv();
            self.layout
                .interface_sum_split(self.comm, y, &mut self.bufs.borrow_mut(), |y| {
                    kernels::spmv_rows_indexed(
                        row_ptr,
                        col_idx,
                        values,
                        x,
                        y,
                        self.layout.interior_rows(),
                    );
                    self.comm.work(self.interior_flops);
                });
        } else {
            match &self.local_variant {
                Some(sel) => sel.apply_into(x, y),
                None => self.a_local.spmv_into(x, y),
            }
            self.comm.work(self.a_local.spmv_flops());
            self.trace_spmv();
            self.layout
                .interface_sum_buffered(self.comm, y, &mut self.bufs.borrow_mut());
        }
    }

    fn apply_flops(&self) -> u64 {
        self.a_local.spmv_flops()
    }
}

/// EDD local vectors replicate interface entries, so an exact rank-local
/// solve leaves the sharing ranks disagreeing there. The partition-of-unity
/// average `z ← ⊕Σ z/mult` (multiplicity weighting followed by the Eq. 28
/// neighbour sum) restores the replication invariant — this is what turns
/// the registry's `direct` spec into a multiplicity-weighted additive
/// Schwarz step on EDD operators.
impl<C: Communicator> InterfaceConsistency for EddOperator<'_, C> {
    fn make_consistent(&self, z: &mut [f64]) {
        self.layout.to_local_distributed(z);
        self.layout
            .interface_sum_buffered(self.comm, z, &mut self.bufs.borrow_mut());
    }
}

impl<C: Communicator> DistributedOperator for EddOperator<'_, C> {
    type Comm = C;

    fn comm(&self) -> &C {
        self.comm
    }

    /// `r ← ⊕Σ (b_local − A_local x)`: the global distributed residual,
    /// staged through the persistent exchange buffers.
    fn residual_into(&self, x: &[f64], r: &mut [f64]) {
        let b_local = self
            .b_local
            .expect("EddOperator: residual requires a right-hand side");
        self.a_local.spmv_into(x, r);
        self.comm.work(self.a_local.spmv_flops());
        for (ri, bi) in r.iter_mut().zip(b_local) {
            *ri = bi - *ri;
        }
        self.comm.work(r.len() as u64);
        self.layout
            .interface_sum_buffered(self.comm, r, &mut self.xbufs.borrow_mut());
    }

    fn dot_partial(&self, x: &[f64], y: &[f64]) -> f64 {
        self.layout.dot_partial(x, y)
    }

    fn dot_flops_factor(&self) -> u64 {
        3 // multiply, multiplicity weight, accumulate
    }

    fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn gs_dots(&self, w: &[f64], basis: &[Vec<f64>], reduce: &mut [f64]) {
        for (i, vi) in basis.iter().enumerate() {
            reduce[i] = self.layout.dot_partial(w, vi);
        }
        reduce[basis.len()] = self.layout.dot_partial(w, w);
    }

    fn apply_precond<P>(
        &self,
        precond: &P,
        v_j: &[f64],
        z_j: &mut [f64],
        scratch: &mut [Vec<f64>],
        w_tmp: &mut [f64],
    ) where
        P: Preconditioner<Self> + ?Sized,
    {
        if self.variant == EddVariant::Basic {
            // Algorithm 5 keeps the basis local-distributed: converting
            // it back to global costs an extra exchange (numerically a
            // no-op). `w_tmp` is free until the post-precondition matvec.
            w_tmp.copy_from_slice(v_j);
            self.layout.to_local_distributed(w_tmp);
            self.comm.work(w_tmp.len() as u64);
            self.layout
                .interface_sum_buffered(self.comm, w_tmp, &mut self.xbufs.borrow_mut());
            precond.apply_scratch(self, w_tmp, z_j, scratch);
            // Algorithm 5 stores z local-distributed and re-sums it.
            self.layout.to_local_distributed(z_j);
            self.comm.work(z_j.len() as u64);
            self.layout
                .interface_sum_buffered(self.comm, z_j, &mut self.xbufs.borrow_mut());
        } else {
            precond.apply_scratch(self, v_j, z_j, scratch);
        }
    }
}

/// Distributed power iteration for `λ_max` of the EDD operator.
///
/// Runs the same Rayleigh-quotient iteration as
/// [`parfem_sparse::gershgorin::power_iteration_lambda_max`] but with
/// deduplicated (multiplicity-weighted) inner products and the interface
/// exchange inside the operator — so a spectrum estimate `Θ` can be
/// measured *in place* on the distributed system, without ever assembling
/// it (the paper's Fig. 10 study needs exactly this).
///
/// Deterministic: starts from the restriction of a fixed pseudo-random
/// global vector, so every rank iterates on a consistent state.
pub fn edd_lambda_max<C: Communicator>(
    comm: &C,
    layout: &EddLayout,
    a_local: &CsrMatrix,
    global_dofs: &[usize],
    max_iters: usize,
    tol: f64,
) -> f64 {
    let op = EddOperator::new(a_local, layout, comm);
    let n = a_local.n_rows();
    assert_eq!(global_dofs.len(), n, "global dof map length mismatch");
    // Deterministic start: hash of the global dof id (consistent at
    // interfaces across ranks by construction).
    let mut x: Vec<f64> = global_dofs
        .iter()
        .map(|&g| {
            let mut s = g as u64 ^ 0x9e37_79b9_7f4a_7c15;
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect();
    let norm = |v: &[f64]| -> f64 {
        comm.work(3 * n as u64);
        comm.allreduce_sum_scalar(layout.dot_partial(v, v)).sqrt()
    };
    let nx = norm(&x).max(1e-300);
    for xi in &mut x {
        *xi /= nx;
    }
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for it in 0..max_iters {
        op.apply_into(&x, &mut y);
        comm.work(3 * n as u64);
        let new_lambda = comm.allreduce_sum_scalar(layout.dot_partial(&x, &y));
        let ny = norm(&y);
        if ny == 0.0 {
            return 0.0;
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        if it > 0 && (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1e-300) {
            return new_lambda;
        }
        lambda = new_lambda;
    }
    lambda
}

/// Result of an EDD FGMRES solve on one rank (`x` is in global distributed
/// format over this rank's DOFs; the history is identical on every rank).
pub type EddResult = DdResult;

/// Restarted flexible GMRES on the EDD operator.
///
/// `b_local` is the right-hand side in *local distributed* format (as
/// assembled); `x0` is an initial guess in *global distributed* format.
///
/// Allocates a throwaway [`KrylovWorkspace`]; callers solving repeatedly
/// should hold one and use [`edd_fgmres_with`].
///
/// # Errors
/// [`SolveError::Comm`] when the communication substrate degrades mid-solve
/// (see [`dd_fgmres`]).
///
/// # Panics
/// Panics on dimension mismatches.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Algorithm 6 signature
pub fn edd_fgmres<'a, C, P>(
    comm: &'a C,
    layout: &'a EddLayout,
    a_local: &'a CsrMatrix,
    precond: &P,
    b_local: &'a [f64],
    x0: &[f64],
    cfg: &GmresConfig,
    variant: EddVariant,
) -> Result<EddResult, SolveError>
where
    C: Communicator,
    P: Preconditioner<EddOperator<'a, C>> + ?Sized,
{
    let mut ws = KrylovWorkspace::new();
    edd_fgmres_with(
        comm, layout, a_local, precond, b_local, x0, cfg, variant, &mut ws,
    )
}

/// [`edd_fgmres`] through a caller-owned [`KrylovWorkspace`]: once the
/// workspace (and the operator's exchange buffers) are warm, restarts and
/// iterations perform no heap allocation on this rank, and the iterates are
/// bit-identical to the allocating entry point.
///
/// # Errors
/// [`SolveError::Comm`] when the communication substrate degrades mid-solve
/// (see [`dd_fgmres`]).
///
/// # Panics
/// Panics on dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn edd_fgmres_with<'a, C, P>(
    comm: &'a C,
    layout: &'a EddLayout,
    a_local: &'a CsrMatrix,
    precond: &P,
    b_local: &'a [f64],
    x0: &[f64],
    cfg: &GmresConfig,
    variant: EddVariant,
    ws: &mut KrylovWorkspace,
) -> Result<EddResult, SolveError>
where
    C: Communicator,
    P: Preconditioner<EddOperator<'a, C>> + ?Sized,
{
    edd_fgmres_metered(
        comm,
        layout,
        a_local,
        precond,
        b_local,
        x0,
        cfg,
        variant,
        ws,
        &MetricsRegistry::disabled(),
    )
}

/// [`edd_fgmres_with`] with a live [`MetricsRegistry`] installed on the
/// operator: identical arithmetic and trace events, plus the solver
/// aggregates [`dd_fgmres`] records (rank 0 only).
///
/// # Errors
/// [`SolveError::Comm`] when the communication substrate degrades mid-solve
/// (see [`dd_fgmres`]).
///
/// # Panics
/// Panics on dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn edd_fgmres_metered<'a, C, P>(
    comm: &'a C,
    layout: &'a EddLayout,
    a_local: &'a CsrMatrix,
    precond: &P,
    b_local: &'a [f64],
    x0: &[f64],
    cfg: &GmresConfig,
    variant: EddVariant,
    ws: &mut KrylovWorkspace,
    metrics: &MetricsRegistry,
) -> Result<EddResult, SolveError>
where
    C: Communicator,
    P: Preconditioner<EddOperator<'a, C>> + ?Sized,
{
    assert_eq!(
        b_local.len(),
        a_local.n_rows(),
        "edd_fgmres: b length mismatch"
    );
    if let Some(tracer) = comm.tracer() {
        tracer.span_begin("fgmres", comm.virtual_time());
    }
    let op = EddOperator::for_solve(a_local, layout, comm, Some(b_local), variant)
        .with_metrics(metrics.clone())
        .with_kernels(cfg.kernels);
    let choice = op.kernel_choice();
    metrics
        .counter(&format!(
            "parfem_kernel_variant_{}_solves_total",
            choice.label()
        ))
        .incr();
    if let Some(tracer) = comm.tracer() {
        tracer.add_count(&format!("kernel_variant_{}", choice.label()), 1);
    }
    let res = dd_fgmres(&op, precond, x0, cfg, ws);
    if let Some(tracer) = comm.tracer() {
        tracer.span_end("fgmres", comm.virtual_time());
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::{edd_scaling_reference, DistributedScaling};
    use parfem_fem::{assembly, Material, SubdomainSystem};
    use parfem_krylov::gmres::fgmres;
    use parfem_krylov::history::ConvergenceHistory;
    use parfem_mesh::{DofMap, Edge, ElementPartition, QuadMesh};
    use parfem_msg::{run_ranks, MachineModel};
    use parfem_precond::{GlsPrecond, IdentityPrecond, NeumannPrecond};

    struct Fixture {
        systems: Vec<SubdomainSystem>,
        k: CsrMatrix,
        f: Vec<f64>,
        n: usize,
    }

    fn fixture(nx: usize, ny: usize, p: usize) -> Fixture {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
        let part = ElementPartition::strips_x(&mesh, p);
        let systems: Vec<SubdomainSystem> = part
            .subdomains(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        Fixture {
            systems,
            k: sys.stiffness,
            f: sys.rhs,
            n: dm.n_dofs(),
        }
    }

    /// Runs the parallel EDD solve and returns (global solution, history).
    fn run_edd(
        fx: &Fixture,
        p: usize,
        degree: usize,
        variant: EddVariant,
        cfg: &GmresConfig,
    ) -> (Vec<f64>, ConvergenceHistory, Vec<parfem_msg::RankReport>) {
        let gls = (degree > 0).then(|| GlsPrecond::for_scaled_system(degree));
        let out = run_ranks(p, MachineModel::ideal(), |comm| {
            let sys = &fx.systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
            let mut b = sys.f_local.clone();
            let a = sc.apply(&sys.k_local, &mut b);
            let x0 = vec![0.0; b.len()];
            let res = match &gls {
                Some(g) => edd_fgmres(comm, &layout, &a, g, &b, &x0, cfg, variant),
                None => edd_fgmres(comm, &layout, &a, &IdentityPrecond, &b, &x0, cfg, variant),
            }
            .expect("fault-free solve must not error");
            let mut u = res.x;
            sc.unscale(&mut u);
            (u, res.history)
        });
        // Gather: global-distributed values are identical at interfaces.
        let mut u = vec![0.0; fx.n];
        for (rank, (ul, _)) in out.results.iter().enumerate() {
            for (l, &g) in fx.systems[rank].global_dofs.iter().enumerate() {
                u[g] = ul[l];
            }
        }
        let history = out.results[0].1.clone();
        (u, history, out.reports)
    }

    /// Sequential reference with the *same* (distributed-sum) scaling.
    fn run_seq(fx: &Fixture, degree: usize, cfg: &GmresConfig) -> (Vec<f64>, ConvergenceHistory) {
        let sc = edd_scaling_reference(&fx.systems, fx.n);
        let a = sc.scale_matrix(&fx.k);
        let b = sc.scale_rhs(&fx.f);
        let res = if degree > 0 {
            let g = GlsPrecond::for_scaled_system(degree);
            fgmres(&a, &g, &b, &vec![0.0; fx.n], cfg)
        } else {
            fgmres(&a, &IdentityPrecond, &b, &vec![0.0; fx.n], cfg)
        };
        (sc.unscale_solution(&res.x), res.history)
    }

    #[test]
    fn parallel_solution_solves_the_physical_system() {
        let fx = fixture(8, 3, 4);
        let cfg = GmresConfig {
            tol: 1e-9,
            ..Default::default()
        };
        let (u, history, _) = run_edd(&fx, 4, 7, EddVariant::Enhanced, &cfg);
        assert!(history.converged(), "stop: {:?}", history.stop);
        let r = fx.k.spmv(&u);
        let err: f64 = r
            .iter()
            .zip(&fx.f)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = fx.f.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-6 * scale.max(1.0), "residual {err}");
    }

    #[test]
    fn parallel_matches_sequential_iterate_for_iterate() {
        let fx = fixture(8, 2, 4);
        let cfg = GmresConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let (u_par, h_par, _) = run_edd(&fx, 4, 5, EddVariant::Enhanced, &cfg);
        let (u_seq, h_seq) = run_seq(&fx, 5, &cfg);
        assert_eq!(
            h_par.iterations(),
            h_seq.iterations(),
            "iteration counts must match"
        );
        for (a, b) in h_par
            .relative_residuals
            .iter()
            .zip(&h_seq.relative_residuals)
        {
            assert!((a - b).abs() < 1e-8 * (1.0 + b), "residual curves differ");
        }
        for (a, b) in u_par.iter().zip(&u_seq) {
            assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn basic_and_enhanced_variants_agree_numerically() {
        let fx = fixture(6, 2, 3);
        let cfg = GmresConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let (u_b, h_b, rep_b) = run_edd(&fx, 3, 3, EddVariant::Basic, &cfg);
        let (u_e, h_e, rep_e) = run_edd(&fx, 3, 3, EddVariant::Enhanced, &cfg);
        assert_eq!(h_b.iterations(), h_e.iterations());
        for (a, b) in u_b.iter().zip(&u_e) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()));
        }
        // Table 1: the basic variant pays two extra exchanges per step.
        let ex_b = rep_b[0].stats.neighbor_exchanges;
        let ex_e = rep_e[0].stats.neighbor_exchanges;
        let iters = h_b.iterations() as u64;
        assert_eq!(
            ex_b - ex_e,
            2 * iters,
            "basic {ex_b} vs enhanced {ex_e} over {iters} iterations"
        );
    }

    #[test]
    fn enhanced_variant_uses_one_exchange_per_iteration_plus_precond() {
        let fx = fixture(6, 2, 2);
        let cfg = GmresConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let degree = 4;
        let (_, h, rep) = run_edd(&fx, 2, degree, EddVariant::Enhanced, &cfg);
        let iters = h.iterations() as u64;
        let restarts = h.restarts as u64;
        // Exchanges: 1 for the distributed scaling (Algorithm 3), 1 for the
        // initial residual, 1 per restart residual recompute, and per
        // iteration 1 matvec + `degree` preconditioner matvecs.
        let expected = 2 + restarts + iters * (1 + degree as u64);
        assert_eq!(rep[0].stats.neighbor_exchanges, expected);
    }

    #[test]
    fn single_rank_matches_sequential_exactly() {
        let fx = fixture(5, 2, 1);
        let cfg = GmresConfig {
            tol: 1e-9,
            ..Default::default()
        };
        let (u_par, h_par, _) = run_edd(&fx, 1, 7, EddVariant::Enhanced, &cfg);
        let (u_seq, h_seq) = run_seq(&fx, 7, &cfg);
        assert_eq!(h_par.iterations(), h_seq.iterations());
        for (a, b) in u_par.iter().zip(&u_seq) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn fused_scaled_apply_is_bit_identical_to_scale_then_apply() {
        let fx = fixture(6, 2, 3);
        for overlap in [false, true] {
            let out = run_ranks(3, MachineModel::ideal(), |comm| {
                let sys = &fx.systems[comm.rank()];
                let mut layout = EddLayout::from_system(sys);
                layout.set_overlap(overlap);
                let op = EddOperator::new(&sys.k_local, &layout, comm);
                let n = sys.k_local.n_rows();
                let s: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
                let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
                let mut fused = vec![0.0; n];
                op.apply_scaled_into(&s, &x, &mut fused);
                let sx: Vec<f64> = s.iter().zip(&x).map(|(si, xi)| si * xi).collect();
                let mut reference = vec![0.0; n];
                op.apply_into(&sx, &mut reference);
                (fused, reference)
            });
            for (fused, reference) in &out.results {
                assert_eq!(fused, reference, "fused path drifted (overlap={overlap})");
            }
        }
    }

    #[test]
    fn simd_local_variant_is_bit_identical_and_recorded() {
        let fx = fixture(5, 2, 2);
        let out = run_ranks(2, MachineModel::ideal(), |comm| {
            let sys = &fx.systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let scalar_op = EddOperator::new(&sys.k_local, &layout, comm);
            let simd_op =
                EddOperator::new(&sys.k_local, &layout, comm).with_kernels(KernelPolicy::Simd);
            assert_eq!(scalar_op.kernel_choice(), VariantChoice::Scalar);
            assert_eq!(simd_op.kernel_choice(), VariantChoice::Simd);
            let n = sys.k_local.n_rows();
            let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 * 0.5 - 3.0).collect();
            let mut want = vec![0.0; n];
            scalar_op.apply_into(&x, &mut want);
            let mut got = vec![0.0; n];
            simd_op.apply_into(&x, &mut got);
            (got, want)
        });
        for (got, want) in &out.results {
            assert_eq!(got, want, "SIMD local variant must match scalar exactly");
        }
    }

    #[test]
    fn unpreconditioned_edd_converges_but_slower() {
        let fx = fixture(6, 2, 2);
        let cfg = GmresConfig {
            tol: 1e-7,
            max_iters: 2000,
            ..Default::default()
        };
        let (_, h_plain, _) = run_edd(&fx, 2, 0, EddVariant::Enhanced, &cfg);
        let (_, h_gls, _) = run_edd(&fx, 2, 7, EddVariant::Enhanced, &cfg);
        assert!(h_plain.converged() && h_gls.converged());
        assert!(
            h_gls.iterations() < h_plain.iterations(),
            "gls {} vs plain {}",
            h_gls.iterations(),
            h_plain.iterations()
        );
    }

    #[test]
    fn distributed_lambda_max_matches_sequential_power_iteration() {
        let fx = fixture(8, 3, 4);
        // Sequential reference on the assembled scaled operator.
        let sc = edd_scaling_reference(&fx.systems, fx.n);
        let a_seq = sc.scale_matrix(&fx.k);
        let want = parfem_sparse::gershgorin::power_iteration_lambda_max(&a_seq, 50_000, 1e-12);
        let out = run_ranks(4, MachineModel::ideal(), |comm| {
            let sys = &fx.systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let scd = DistributedScaling::build(comm, &layout, &sys.k_local);
            let mut b = sys.f_local.clone();
            let a = scd.apply(&sys.k_local, &mut b);
            super::edd_lambda_max(comm, &layout, &a, &sys.global_dofs, 50_000, 1e-12)
        });
        for got in out.results {
            assert!(
                (got - want).abs() < 1e-6 * want,
                "distributed {got} vs sequential {want}"
            );
        }
    }

    #[test]
    fn neumann_preconditioner_runs_distributed() {
        let fx = fixture(6, 2, 3);
        let cfg = GmresConfig {
            tol: 1e-7,
            max_iters: 3000,
            ..Default::default()
        };
        let p = NeumannPrecond::for_scaled_system(10);
        let out = run_ranks(3, MachineModel::ideal(), |comm| {
            let sys = &fx.systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
            let mut b = sys.f_local.clone();
            let a = sc.apply(&sys.k_local, &mut b);
            let x0 = vec![0.0; b.len()];
            let res = edd_fgmres(comm, &layout, &a, &p, &b, &x0, &cfg, EddVariant::Enhanced)
                .expect("fault-free solve must not error");
            let mut u = res.x;
            sc.unscale(&mut u);
            (u, res.history.converged())
        });
        assert!(out.results.iter().all(|(_, c)| *c));
        let mut u = vec![0.0; fx.n];
        for (rank, (ul, _)) in out.results.iter().enumerate() {
            for (l, &g) in fx.systems[rank].global_dofs.iter().enumerate() {
                u[g] = ul[l];
            }
        }
        let r = fx.k.spmv(&u);
        let err: f64 = r
            .iter()
            .zip(&fx.f)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-4, "residual {err}");
    }
}
