//! Distributed norm-1 diagonal scaling (paper Algorithms 3–4).
//!
//! Each subdomain computes the absolute row sums of its **local
//! distributed** stiffness matrix, the sums are accumulated across the
//! interface (`d̄ = ⊕Σ d̂`), and the scaling `D = diag(1/√d̄)` is applied
//! locally: `Â⁽ˢ⁾ = D̂⁽ˢ⁾ K̂⁽ˢ⁾ D̂⁽ˢ⁾`, `b̂⁽ˢ⁾ = D̂⁽ˢ⁾ f̂⁽ˢ⁾`. Since the
//! accumulated `d̄` is identical at shared DOFs, `Σ Bᵀ Â B = D (Σ Bᵀ K̂ B) D`
//! exactly.
//!
//! Fidelity note: the distributed row sum `Σₛ‖k̂ᵢ⁽ˢ⁾‖₁` **upper-bounds** the
//! assembled `‖kᵢ‖₁` (interface entries from different subdomains may
//! cancel in the assembled matrix, `|a+b| ≤ |a|+|b|`). The Gershgorin
//! argument still yields `σ(A) ⊂ (0, 1)` — the bound is just slightly less
//! tight, exactly as in the paper's Algorithm 3. [`edd_row_sums_reference`]
//! reproduces the distributed sums sequentially so sequential and parallel
//! runs can be compared iterate for iterate.

use crate::dist_vec::{EddLayout, ExchangeBuffers};
use parfem_fem::subdomain::SubdomainSystem;
use parfem_mesh::numbering::DOFS_PER_NODE;
use parfem_msg::Communicator;
use parfem_sparse::{dense, scaling::inv_sqrt_scaling, CsrMatrix, DiagonalScaling};

/// The per-subdomain result of the distributed scaling.
#[derive(Debug, Clone)]
pub struct DistributedScaling {
    /// `1/√d̄` per local DOF (global distributed format — identical at
    /// interfaces).
    pub d: Vec<f64>,
}

impl DistributedScaling {
    /// Algorithm 3: local row sums, interface accumulation, `1/√·`.
    pub fn build<C: Communicator>(comm: &C, layout: &EddLayout, k_local: &CsrMatrix) -> Self {
        let mut sums = k_local.row_abs_sums();
        comm.work(2 * k_local.nnz() as u64);
        let mut bufs = ExchangeBuffers::new();
        layout.interface_sum_buffered(comm, &mut sums, &mut bufs);
        // The 1/√· map is shared with the sequential scaling, so the
        // distributed diagonal is the restriction of the assembled one
        // whenever the accumulated sums agree.
        DistributedScaling {
            d: inv_sqrt_scaling(&sums),
        }
    }

    /// Algorithm 4 step 1–2: returns the scaled local matrix `D̂K̂D̂` and
    /// scales the local RHS in place.
    pub fn apply(&self, k_local: &CsrMatrix, f_local: &mut [f64]) -> CsrMatrix {
        let mut a = k_local.clone();
        a.scale_symmetric(&self.d);
        dense::diag_mul(&self.d, f_local);
        a
    }

    /// Recovers physical displacements from the scaled solution:
    /// `û = D̂ x̂` (Algorithm 4 step 5).
    pub fn unscale(&self, x: &mut [f64]) {
        dense::diag_mul(&self.d, x);
    }
}

/// Sequential reference of the *distributed* row sums: for every global DOF,
/// the sum over subdomains of the local absolute row sums. Feeding these
/// into [`DiagonalScaling::from_row_sums`] yields the exact scaling the
/// parallel solver uses, for iterate-for-iterate comparisons.
pub fn edd_row_sums_reference(systems: &[SubdomainSystem], n_dofs: usize) -> Vec<f64> {
    let mut sums = vec![0.0; n_dofs];
    for sys in systems {
        let local = sys.k_local.row_abs_sums();
        for (l, &g) in sys.global_dofs.iter().enumerate() {
            sums[g] += local[l];
        }
    }
    sums
}

/// Builds the sequential [`DiagonalScaling`] matching the distributed one.
pub fn edd_scaling_reference(systems: &[SubdomainSystem], n_dofs: usize) -> DiagonalScaling {
    DiagonalScaling::from_row_sums(edd_row_sums_reference(systems, n_dofs))
}

/// Number of scalar DOFs per mesh node (re-exported for the driver).
pub const DOFS: usize = DOFS_PER_NODE;

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_fem::{assembly, Material};
    use parfem_mesh::{DofMap, Edge, ElementPartition, QuadMesh};
    use parfem_msg::{run_ranks, MachineModel};

    fn fixture(p: usize) -> (Vec<SubdomainSystem>, CsrMatrix, usize) {
        let mesh = QuadMesh::cantilever(6, 2);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
        let part = ElementPartition::strips_x(&mesh, p);
        let systems: Vec<SubdomainSystem> = part
            .subdomains(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        let k = assembly::build_static(&mesh, &dm, &mat, &loads).stiffness;
        (systems, k, dm.n_dofs())
    }

    #[test]
    fn distributed_scaling_matches_reference() {
        let (systems, _, n) = fixture(3);
        let reference = edd_scaling_reference(&systems, n);
        let out = run_ranks(3, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
            // Compare against the restriction of the reference diagonal.
            let want: Vec<f64> = sys
                .global_dofs
                .iter()
                .map(|&g| reference.diagonal()[g])
                .collect();
            sc.d.iter()
                .zip(&want)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max)
        });
        for err in out.results {
            assert!(err < 1e-13, "max deviation {err}");
        }
    }

    #[test]
    fn distributed_sums_upper_bound_assembled_sums() {
        let (systems, k, n) = fixture(3);
        let dist = edd_row_sums_reference(&systems, n);
        let assembled = k.row_abs_sums();
        for (i, (d, a)) in dist.iter().zip(&assembled).enumerate() {
            assert!(*d >= *a - 1e-12, "row {i}: distributed {d} < assembled {a}");
        }
    }

    #[test]
    fn scaled_assembled_operator_stays_in_unit_interval() {
        // The assembled scaled operator D K D (with distributed-sum D) must
        // still have lambda_max <= 1.
        let (systems, k, n) = fixture(2);
        let sc = edd_scaling_reference(&systems, n);
        let a = sc.scale_matrix(&k);
        let lmax = parfem_sparse::gershgorin::power_iteration_lambda_max(&a, 20_000, 1e-12);
        assert!(lmax <= 1.0 + 1e-9, "lambda_max {lmax}");
    }

    #[test]
    fn apply_and_unscale_round_trip() {
        let (systems, _, _) = fixture(2);
        let out = run_ranks(2, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
            let mut f = sys.f_local.clone();
            let a = sc.apply(&sys.k_local, &mut f);
            // A_ij = d_i K_ij d_j on the local matrix.
            let mut max_err = 0.0_f64;
            for r in 0..a.n_rows() {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let want = sc.d[r] * sys.k_local.get(r, c) * sc.d[c];
                    max_err = max_err.max((v - want).abs());
                }
            }
            // Unscale returns the original after dividing.
            let mut x = f.clone();
            sc.unscale(&mut x);
            for (xi, (fi, di)) in x.iter().zip(f.iter().zip(&sc.d)) {
                max_err = max_err.max((xi - fi * di).abs());
            }
            max_err
        });
        for err in out.results {
            assert!(err < 1e-12);
        }
    }
}
