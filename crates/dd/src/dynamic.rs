//! Parallel elastodynamics: Newmark time stepping with the EDD solver in
//! the loop.
//!
//! The paper's evaluation covers "large-scale static and dynamic problems";
//! this module runs the dynamic side in parallel. Each rank holds its
//! subdomain's unassembled stiffness **and** (lumped) mass; the effective
//! matrix `K̄̂⁽ˢ⁾ = ᾱM̂⁽ˢ⁾ + K̂⁽ˢ⁾` (paper Eq. 52) is formed locally once per
//! time-step size, norm-1 scaled with the distributed Algorithm 3, and every
//! step solves one distributed FGMRES system. The Newmark state `(u, v, a)`
//! lives in the global distributed format, so predictors and correctors are
//! purely local vector updates — interface consistency is preserved because
//! every update is the same linear combination on every sharing rank.

use crate::dist_vec::EddLayout;
use crate::edd::edd_fgmres_with;
use crate::scaling::DistributedScaling;
use crate::session::{DdSolveOutput, SolverConfig};
use parfem_fem::{Material, NewmarkParams, SubdomainSystem};
use parfem_krylov::history::{ConvergenceHistory, StopReason};
use parfem_krylov::KrylovWorkspace;
use parfem_mesh::{DofMap, ElementPartition, QuadMesh};
use parfem_msg::{run_ranks, Communicator, MachineModel};

/// Configuration of a parallel transient run.
#[derive(Debug, Clone)]
pub struct DynamicRunConfig {
    /// Linear-solver settings per time step.
    pub solver: SolverConfig,
    /// Newmark parameters.
    pub params: NewmarkParams,
    /// Number of time steps.
    pub steps: usize,
}

/// Output of a parallel transient run.
#[derive(Debug, Clone)]
pub struct DynamicRunOutput {
    /// Static-style output for the *final* state (solution = displacement
    /// at `t = steps·Δt`, history = last step's solve, reports/modeled time
    /// for the whole transient).
    pub last: DdSolveOutput,
    /// Per-step displacement at the watched global DOFs
    /// (`watch_histories[k][step]` for `watch_dofs[k]`).
    pub watch_histories: Vec<Vec<f64>>,
    /// Total FGMRES iterations over all steps.
    pub total_iterations: usize,
    /// Whether every step converged.
    pub all_converged: bool,
}

/// Runs `cfg.steps` Newmark steps of `M ü + K u = f` (constant load `loads`,
/// zero initial conditions, homogeneous Dirichlet BCs) with the EDD
/// distributed solver, watching the global DOFs in `watch_dofs`.
///
/// This frozen signature delegates to
/// [`SolveSession::run_dynamic`](crate::SolveSession::run_dynamic); new
/// code should use the session builder directly.
///
/// # Panics
/// Panics if the DOF map carries non-zero prescribed values (the transient
/// driver supports homogeneous constraints only) or on shape mismatches.
#[deprecated(note = "use SolveSession::run_dynamic")]
#[allow(clippy::too_many_arguments)] // problem + partition + machine + config + probes
pub fn solve_dynamic_edd(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &DynamicRunConfig,
    watch_dofs: &[usize],
) -> DynamicRunOutput {
    crate::session::SolveSession::new(crate::session::Problem::new(mesh, dm, material, loads))
        .strategy(crate::session::Strategy::Edd(part.clone()))
        .config(cfg.solver.clone())
        .machine(model)
        .run_dynamic(cfg.params, cfg.steps, watch_dofs)
}

/// The transient engine behind [`SolveSession::run_dynamic`]
/// (`crate::SolveSession`): one `run_ranks` launch whose rank body builds
/// the effective matrix, its distributed scaling and the registry
/// preconditioner once, then time-steps with a warm-started, shared-
/// workspace FGMRES per step.
#[allow(clippy::too_many_arguments)] // problem + partition + machine + config + probes
pub(crate) fn run_dynamic_edd(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &DynamicRunConfig,
    watch_dofs: &[usize],
) -> DynamicRunOutput {
    for (d, v) in dm.fixed_dofs() {
        assert_eq!(v, 0.0, "dynamic driver requires homogeneous BCs (dof {d})");
    }
    let p = part.n_parts();
    let systems: Vec<SubdomainSystem> = part
        .subdomains(mesh)
        .iter()
        .map(|s| SubdomainSystem::build(mesh, dm, material, s, loads, Some(true)))
        .collect();
    let (alpha, beta) = cfg.params.effective_coefficients();
    let dt = cfg.params.dt;
    let nm_beta = cfg.params.beta;
    let nm_gamma = cfg.params.gamma;

    type RankResult = (Vec<f64>, Vec<Vec<f64>>, usize, bool, ConvergenceHistory);
    let out = run_ranks(p, model, |comm| -> RankResult {
        let sys = &systems[comm.rank()];
        let mut layout = EddLayout::from_system(sys);
        layout.set_overlap(cfg.solver.overlap);
        let n = sys.n_local_dofs();
        // Setup-time interface sums share one staging buffer set.
        let mut setup_bufs = crate::dist_vec::ExchangeBuffers::new();

        // Effective local matrix and its distributed scaling.
        let k_eff_local = sys.effective_local(alpha, beta);
        let sc = DistributedScaling::build(comm, &layout, &k_eff_local);
        let mut dummy_rhs = vec![0.0; n];
        let a_eff = sc.apply(&k_eff_local, &mut dummy_rhs);

        let m_local = sys.m_local.as_ref().expect("mass assembled");
        // Assembled lumped-mass diagonal for the initial acceleration.
        let mut m_diag = m_local.diagonal();
        layout.interface_sum_buffered(comm, &mut m_diag, &mut setup_bufs);

        // Which local dofs are constrained (multiplicity-weighted identity
        // rows in K̂ ⇒ global dof fixed).
        let fixed_local: Vec<usize> = sys
            .global_dofs
            .iter()
            .enumerate()
            .filter(|(_, &g)| dm.is_fixed(g))
            .map(|(l, _)| l)
            .collect();

        // Initial state (global distributed): u = v = 0, a from
        // M a0 = f - K u0 = f (zero initial displacement).
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut f_assembled = sys.f_local.clone();
        layout.interface_sum_buffered(comm, &mut f_assembled, &mut setup_bufs);
        comm.work(n as u64);
        let mut a: Vec<f64> = f_assembled
            .iter()
            .zip(&m_diag)
            .map(|(fi, mi)| if *mi > 0.0 { fi / mi } else { 0.0 })
            .collect();
        for &l in &fixed_local {
            a[l] = 0.0;
        }

        // Preconditioner (constructed once; theta = (eps, 1) post scaling).
        // Built through the registry as a concrete `SpecPrecond` so the
        // per-step RHS borrows below need not outlive it; the diagonal
        // interface sum runs only for Jacobi (the closure is lazy), and the
        // effective local matrix feeds the `direct` spec's factorization.
        let pc = cfg.solver.precond.instantiate_full(None, Some(&a_eff), || {
            let mut d = a_eff.diagonal();
            layout.interface_sum_buffered(comm, &mut d, &mut setup_bufs);
            d
        });
        let apply_solver = |b_local: &[f64], x0: &[f64], ws: &mut KrylovWorkspace| {
            edd_fgmres_with(
                comm,
                &layout,
                &a_eff,
                &pc,
                b_local,
                x0,
                &cfg.solver.gmres,
                cfg.solver.variant,
                ws,
            )
        };

        // Local indices of watched dofs (if present on this rank).
        let watch_local: Vec<Option<usize>> = watch_dofs
            .iter()
            .map(|&g| sys.global_dofs.iter().position(|&gd| gd == g))
            .collect();
        let mut watch_histories: Vec<Vec<f64>> =
            vec![Vec::with_capacity(cfg.steps); watch_dofs.len()];

        let mut total_iterations = 0usize;
        let mut all_converged = true;
        let mut last_history = ConvergenceHistory {
            relative_residuals: vec![1.0],
            stop: StopReason::Converged,
            restarts: 0,
        };
        let mut u_star = vec![0.0; n];
        // One Krylov workspace reused by every time step: after the first
        // solve sizes it, the per-step FGMRES loop runs allocation-free.
        let mut ws = KrylovWorkspace::new();

        for _ in 0..cfg.steps {
            // Predictor (local, consistent).
            for i in 0..n {
                u_star[i] = u[i] + dt * v[i] + dt * dt * (0.5 - nm_beta) * a[i];
            }
            comm.work(6 * n as u64);
            // Effective local RHS: f̂ + ᾱ M̂ u* (local distributed), then
            // scale. Fixed rows: K̄̂ has 1/mult diag; rhs must carry 0.
            let mut rhs = m_local.spmv(&u_star);
            comm.work(m_local.spmv_flops());
            for (ri, fi) in rhs.iter_mut().zip(&sys.f_local) {
                *ri = fi + alpha * *ri;
            }
            comm.work(2 * n as u64);
            for &l in &fixed_local {
                rhs[l] = 0.0;
            }
            // Scale: b̂ = D̂ rhs; solve the scaled system; unscale.
            for (ri, di) in rhs.iter_mut().zip(&sc.d) {
                *ri *= di;
            }
            comm.work(n as u64);
            // Warm start from the scaled current displacement.
            let x0: Vec<f64> = u.iter().zip(&sc.d).map(|(ui, di)| ui / di).collect();
            comm.work(n as u64);
            // The dynamic driver always runs fault-free on the raw
            // communicator, so a typed solve error here is a bug.
            let res =
                apply_solver(&rhs, &x0, &mut ws).expect("fault-free dynamic solve must not error");
            total_iterations += res.history.iterations();
            all_converged &= res.history.converged();
            let mut u_new = res.x;
            sc.unscale(&mut u_new);
            for &l in &fixed_local {
                u_new[l] = 0.0;
            }
            // Correctors (local, consistent).
            for i in 0..n {
                let a_new = alpha * (u_new[i] - u_star[i]);
                v[i] += dt * ((1.0 - nm_gamma) * a[i] + nm_gamma * a_new);
                a[i] = a_new;
            }
            comm.work(7 * n as u64);
            for &l in &fixed_local {
                v[l] = 0.0;
                a[l] = 0.0;
            }
            u = u_new;
            last_history = res.history;
            for (k, wl) in watch_local.iter().enumerate() {
                if let Some(l) = wl {
                    watch_histories[k].push(u[*l]);
                }
            }
        }
        (
            u,
            watch_histories,
            total_iterations,
            all_converged,
            last_history,
        )
    });

    // Gather.
    let mut u = vec![0.0; dm.n_dofs()];
    for (rank, (ul, ..)) in out.results.iter().enumerate() {
        for (l, &g) in systems[rank].global_dofs.iter().enumerate() {
            u[g] = ul[l];
        }
    }
    let mut watch_histories = vec![Vec::new(); watch_dofs.len()];
    for (rank, (_, wh, ..)) in out.results.iter().enumerate() {
        for (k, h) in wh.iter().enumerate() {
            if !h.is_empty() && watch_histories[k].is_empty() {
                watch_histories[k] = h.clone();
            }
        }
        let _ = rank;
    }
    for (k, h) in watch_histories.iter().enumerate() {
        assert_eq!(
            h.len(),
            cfg.steps,
            "watched dof {} not owned by any rank",
            watch_dofs[k]
        );
    }
    let (_, _, total_iterations, all_converged, last_history) = out.results[0].clone();
    DynamicRunOutput {
        last: DdSolveOutput {
            u,
            history: last_history,
            reports: out.reports,
            modeled_time: out.modeled_time,
        },
        watch_histories,
        total_iterations,
        all_converged,
    }
}

#[cfg(test)]
#[allow(deprecated)] // the tests pin the frozen legacy entry point
mod tests {
    use super::*;
    use parfem_fem::assembly;
    use parfem_krylov::gmres::GmresConfig;
    use parfem_mesh::Edge;
    use parfem_msg::MachineModel;

    fn problem() -> (QuadMesh, DofMap, Material, Vec<f64>) {
        let mesh = QuadMesh::cantilever(12, 3);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1e-3, &mut loads);
        (mesh, dm, mat, loads)
    }

    fn run_cfg(steps: usize, dt: f64) -> DynamicRunConfig {
        DynamicRunConfig {
            solver: SolverConfig {
                gmres: GmresConfig {
                    tol: 1e-10,
                    ..Default::default()
                },
                ..Default::default()
            },
            params: NewmarkParams::average_acceleration(dt),
            steps,
        }
    }

    #[test]
    fn parallel_transient_matches_rank_one_run() {
        let (mesh, dm, mat, loads) = problem();
        let tip = dm.dof(mesh.node_at(12, 3), 1);
        let cfg = run_cfg(20, 2.0);
        let p1 = solve_dynamic_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 1),
            MachineModel::ideal(),
            &cfg,
            &[tip],
        );
        let p4 = solve_dynamic_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 4),
            MachineModel::ideal(),
            &cfg,
            &[tip],
        );
        assert!(p1.all_converged && p4.all_converged);
        for (a, b) in p1.watch_histories[0].iter().zip(&p4.watch_histories[0]) {
            assert!(
                (a - b).abs() < 1e-7 * (1.0 + b.abs()),
                "trajectories diverge: {a} vs {b}"
            );
        }
    }

    #[test]
    fn parallel_transient_matches_sequential_newmark() {
        // Reference: the sequential NewmarkIntegrator with a dense-accurate
        // iterative solve.
        let (mesh, dm, mat, loads) = problem();
        let tip = dm.dof(mesh.node_at(12, 3), 1);
        let steps = 15;
        let dt = 2.0;

        // Sequential reference.
        let k_raw = assembly::assemble_stiffness(&mesh, &dm, &mat);
        let m_raw = assembly::assemble_mass(&mesh, &dm, &mat, true);
        let mut f = loads.clone();
        let k = assembly::apply_dirichlet(&k_raw, &dm, &mut f);
        let m = assembly::apply_dirichlet_mass(&m_raw, &dm);
        let fixed: Vec<(usize, f64)> = dm.fixed_dofs().collect();
        let n = k.n_rows();
        let diag_solve = |a: &parfem_sparse::CsrMatrix, b: &[f64]| -> Vec<f64> {
            a.diagonal()
                .iter()
                .zip(b)
                .map(|(&d, &bi)| if d != 0.0 { bi / d } else { 0.0 })
                .collect()
        };
        let mut integ = parfem_fem::NewmarkIntegrator::new(
            k.clone(),
            m,
            NewmarkParams::average_acceleration(dt),
            fixed,
            vec![0.0; n],
            vec![0.0; n],
            &f,
            diag_solve,
        );
        let iter_solve = |a: &parfem_sparse::CsrMatrix, b: &[f64]| -> Vec<f64> {
            let (u, h) = crate::tests_support::seq_solve(a, b);
            assert!(h.converged());
            u
        };
        let mut seq_tip = Vec::new();
        for _ in 0..steps {
            integ.step(&f, iter_solve);
            seq_tip.push(integ.displacement()[tip]);
        }

        // Parallel.
        let cfg = run_cfg(steps, dt);
        let out = solve_dynamic_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 3),
            MachineModel::ideal(),
            &cfg,
            &[tip],
        );
        assert!(out.all_converged);
        for (s, p) in seq_tip.iter().zip(&out.watch_histories[0]) {
            assert!(
                (s - p).abs() < 1e-6 * (1.0 + s.abs()),
                "sequential {s} vs parallel {p}"
            );
        }
    }

    #[test]
    fn transient_tracks_static_deflection_on_average() {
        let (mesh, dm, mat, loads) = problem();
        let tip = dm.dof(mesh.node_at(12, 3), 1);
        // Static reference deflection.
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let (u_static, h) = crate::tests_support::seq_solve(&sys.stiffness, &sys.rhs);
        assert!(h.converged());
        // One fundamental period of this beam is ~130 s.
        let cfg = run_cfg(130, 1.0);
        let out = solve_dynamic_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 4),
            MachineModel::ideal(),
            &cfg,
            &[tip],
        );
        let mean: f64 =
            out.watch_histories[0].iter().sum::<f64>() / out.watch_histories[0].len() as f64;
        assert!(
            (mean - u_static[tip]).abs() < 0.3 * u_static[tip].abs(),
            "mean {mean} vs static {}",
            u_static[tip]
        );
        // Dynamic overshoot beyond static.
        let peak = out.watch_histories[0]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(peak < u_static[tip], "no overshoot: {peak}");
    }

    #[test]
    fn iteration_counts_stay_p_independent_in_dynamics() {
        let (mesh, dm, mat, loads) = problem();
        let cfg = run_cfg(5, 1.0);
        let tip = dm.dof(mesh.node_at(12, 3), 1);
        let mut totals = Vec::new();
        for p in [1usize, 2, 4] {
            let out = solve_dynamic_edd(
                &mesh,
                &dm,
                &mat,
                &loads,
                &ElementPartition::strips_x(&mesh, p),
                MachineModel::ideal(),
                &cfg,
                &[tip],
            );
            assert!(out.all_converged);
            totals.push(out.total_iterations);
        }
        let min = *totals.iter().min().unwrap();
        let max = *totals.iter().max().unwrap();
        assert!(max - min <= 5, "totals vary too much: {totals:?}");
    }
}
