//! The composable solve pipeline: one builder, every axis orthogonal.
//!
//! The paper's experiments sweep one axis at a time — strategy (EDD vs
//! RDD, Sections 3–4), preconditioner family and degree (Figs. 11–14),
//! mesh/partition/machine (Tables 1–3) — and [`SolveSession`] makes each
//! axis one builder call instead of one entry-point function:
//!
//! ```
//! use parfem_dd::{Problem, SolveSession, Strategy};
//! use parfem_fem::{assembly, Material};
//! use parfem_mesh::{DofMap, Edge, ElementPartition, QuadMesh};
//! use parfem_msg::MachineModel;
//! use parfem_precond::PrecondSpec;
//!
//! let mesh = QuadMesh::cantilever(8, 2);
//! let mut dm = DofMap::new(mesh.n_nodes());
//! dm.clamp_edge(&mesh, Edge::Left);
//! let mut loads = vec![0.0; dm.n_dofs()];
//! assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
//!
//! let out = SolveSession::new(Problem::new(&mesh, &dm, &Material::unit(), &loads))
//!     .strategy(Strategy::Edd(ElementPartition::strips_x(&mesh, 4)))
//!     .precond(PrecondSpec::parse("gls:7").unwrap())
//!     .machine(MachineModel::sgi_origin())
//!     .run()
//!     .expect("fault-free solve");
//! assert!(out.history.converged());
//! ```
//!
//! The orthogonal options are: strategy ([`Strategy::Edd`] /
//! [`Strategy::Rdd`]), EDD variant, preconditioner spec (via the
//! `parfem-precond` registry), GMRES settings, machine model, overlapped
//! interface exchange, deterministic fault plan, communication watchdog,
//! trace sink, and single- vs multi-RHS ([`SolveSession::run`] /
//! [`SolveSession::run_multi`]) vs transient
//! ([`SolveSession::run_dynamic`]). Any combination composes; results are
//! bit-identical to the historical `solve_*` entry points (pinned by the
//! FNV-1a golden digests in `tests/golden.rs`).

use crate::coarse::{edd_coarse_basis, edd_coarse_solvers, rdd_coarse_basis, rdd_coarse_solvers};
use crate::dist_vec::EddLayout;
use crate::dynamic::{run_dynamic_edd, DynamicRunConfig, DynamicRunOutput};
use crate::edd::{edd_fgmres_metered, EddVariant};
use crate::error::SolveError;
use crate::rdd::{rdd_fgmres_metered, RddSystem};
use crate::scaling::DistributedScaling;
use parfem_fem::{assembly::StaticSystem, Material, NewmarkParams, Physics, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_krylov::history::ConvergenceHistory;
use parfem_krylov::KrylovWorkspace;
use parfem_mesh::{
    DofMap, ElementPartition, HexMesh, NodePartition, PartitionerSpec, QuadMesh, Subdomain,
};
use parfem_msg::{
    try_run_ranks, Communicator, FaultPlan, FaultStats, FaultyComm, MachineModel, RankReport,
    RunOptions, ThreadComm,
};
use parfem_precond::twolevel::{CoarseSolver, CoarseSpec};
pub use parfem_precond::PrecondSpec;

use parfem_sparse::skyline::DEFAULT_PIVOT_TOL;
use parfem_sparse::{dense, scaling::scale_system, CsrMatrix, KernelPolicy};
use parfem_trace::{alloc, MetricsRegistry, TraceSink, Value};
use std::fmt;
use std::time::Duration;

/// Full configuration of a distributed solve.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// GMRES restart/tolerance settings (paper: `m̃ = 25`, `tol = 1e-6`).
    pub gmres: GmresConfig,
    /// Preconditioner choice (built through the `parfem-precond` registry).
    pub precond: PrecondSpec,
    /// EDD algorithm variant (ignored by RDD).
    pub variant: EddVariant,
    /// Overlap interface communication with interior computation: every
    /// matvec posts its exchange nonblocking and computes the rows that do
    /// not depend on the in-flight messages while they travel. Results are
    /// bit-identical to the blocking schedule; the modeled virtual time
    /// credits `max(compute, comm)` instead of their sum.
    pub overlap: bool,
    /// Deterministic fault-injection plan for the message layer. `None`
    /// (the default) runs fault-free on the raw [`ThreadComm`]; `Some`
    /// wraps every rank's endpoint in a [`FaultyComm`] driven by the plan,
    /// so chaos runs reproduce bit for bit from the seed alone.
    pub faults: Option<FaultPlan>,
    /// Wall-clock watchdog for every blocking communicator wait (receives
    /// and collectives). A peer that never shows up within this budget
    /// surfaces as a typed [`parfem_msg::CommError::Timeout`] instead of a
    /// hang.
    pub comm_timeout: Duration,
    /// Metrics sink for the whole session. Disabled by default (zero
    /// overhead); an enabled registry collects solver counters (iterations,
    /// restarts, preconditioner applies, convergence outcomes — recorded on
    /// rank 0 to avoid SPMD double counting), aggregate communication and
    /// flop counters summed over the per-rank [`CommStats`], fault-injection
    /// counters from the [`FaultyComm`] machinery, and session-level gauges
    /// and histograms. Render with [`MetricsRegistry::render`].
    ///
    /// [`CommStats`]: parfem_msg::CommStats
    pub metrics: MetricsRegistry,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            gmres: GmresConfig::default(),
            precond: PrecondSpec::Gls {
                degree: 7,
                theta: None,
            },
            variant: EddVariant::Enhanced,
            overlap: false,
            faults: None,
            comm_timeout: Duration::from_secs(30),
            metrics: MetricsRegistry::disabled(),
        }
    }
}

/// Output of a distributed solve.
#[derive(Debug, Clone)]
pub struct DdSolveOutput {
    /// The physical (unscaled) global solution.
    pub u: Vec<f64>,
    /// Convergence history (identical on every rank; rank 0's copy).
    pub history: ConvergenceHistory,
    /// Per-rank virtual time and communication statistics.
    pub reports: Vec<RankReport>,
    /// Modeled parallel time (max over rank clocks), in seconds.
    pub modeled_time: f64,
}

/// Output of a multi-right-hand-side session ([`SolveSession::run_multi`]).
///
/// Scaling, layout, preconditioner and Krylov workspace are built **once**
/// per session; each right-hand side then runs one distributed FGMRES.
#[derive(Debug, Clone)]
pub struct MultiSolveOutput {
    /// One physical (unscaled) global solution per right-hand side.
    pub solutions: Vec<Vec<f64>>,
    /// One convergence history per right-hand side (rank 0's copies).
    pub histories: Vec<ConvergenceHistory>,
    /// Per-rank virtual time and communication statistics for the whole
    /// multi-solve.
    pub reports: Vec<RankReport>,
    /// Modeled parallel time of the whole multi-solve, in seconds.
    pub modeled_time: f64,
}

impl MultiSolveOutput {
    /// Whether every right-hand side converged.
    pub fn all_converged(&self) -> bool {
        self.histories.iter().all(|h| h.converged())
    }
}

/// Everything a failed distributed solve still knows.
///
/// Returned by [`SolveSession::run`] / [`SolveSession::run_multi`] when at
/// least one rank hit a typed [`SolveError`]. Ranks that completed normally
/// are not listed in `errors`; the per-rank [`RankReport`]s cover every
/// rank up to the point its thread returned, so a post-mortem can still see
/// who spent what before the failure.
#[derive(Debug, Clone)]
pub struct SolveFailures {
    /// `(rank, error)` for every rank that failed, in rank order.
    pub errors: Vec<(usize, SolveError)>,
    /// Per-rank virtual time and communication statistics at teardown.
    pub reports: Vec<RankReport>,
    /// Modeled parallel time when the run tore down, in seconds.
    pub modeled_time: f64,
}

impl fmt::Display for SolveFailures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (rank, first) = match self.errors.first() {
            Some((r, e)) => (*r, e),
            None => return write!(f, "distributed solve failed (no rank error recorded)"),
        };
        write!(
            f,
            "{} of {} ranks failed; first: rank {}: {}",
            self.errors.len(),
            self.reports.len(),
            rank,
            first
        )
    }
}

impl std::error::Error for SolveFailures {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.errors
            .first()
            .map(|(_, e)| e as &(dyn std::error::Error + 'static))
    }
}

/// The mesh a [`Problem`] discretizes: the structured 2-D quadrilateral
/// family (elasticity and scalar heat) or the 3-D hexahedral box.
#[derive(Clone, Copy)]
pub enum ProblemMesh<'a> {
    /// A structured 2-D quadrilateral mesh.
    Quad(&'a QuadMesh),
    /// A structured 3-D hexahedral mesh.
    Hex(&'a HexMesh),
}

/// A borrowed view of the mesh-level problem a session solves: geometry,
/// physics, constraints, material and the global load vector.
#[derive(Clone, Copy)]
pub struct Problem<'a> {
    mesh: ProblemMesh<'a>,
    physics: Physics,
    /// DOF numbering and Dirichlet constraints.
    pub dof_map: &'a DofMap,
    /// Material parameters.
    pub material: &'a Material,
    /// Global load vector (`dof_map.n_dofs()` long).
    pub loads: &'a [f64],
}

impl<'a> Problem<'a> {
    /// The 2-D elasticity problem of the paper (two displacement DOFs per
    /// node on a quadrilateral mesh) — the historical constructor; results
    /// are bit-identical to the pre-physics-axis sessions.
    pub fn new(
        mesh: &'a QuadMesh,
        dof_map: &'a DofMap,
        material: &'a Material,
        loads: &'a [f64],
    ) -> Self {
        Self::with_physics(
            ProblemMesh::Quad(mesh),
            Physics::Elasticity2d,
            dof_map,
            material,
            loads,
        )
    }

    /// A scalar Poisson/steady-heat problem on a quadrilateral mesh (one
    /// temperature DOF per node).
    pub fn heat(
        mesh: &'a QuadMesh,
        dof_map: &'a DofMap,
        material: &'a Material,
        loads: &'a [f64],
    ) -> Self {
        Self::with_physics(
            ProblemMesh::Quad(mesh),
            Physics::Heat2d,
            dof_map,
            material,
            loads,
        )
    }

    /// A 3-D elasticity problem on a hexahedral mesh (three displacement
    /// DOFs per node).
    pub fn elasticity3d(
        mesh: &'a HexMesh,
        dof_map: &'a DofMap,
        material: &'a Material,
        loads: &'a [f64],
    ) -> Self {
        Self::with_physics(
            ProblemMesh::Hex(mesh),
            Physics::Elasticity3d,
            dof_map,
            material,
            loads,
        )
    }

    /// The general constructor: any supported (mesh, physics) pairing.
    ///
    /// # Panics
    /// Panics when the load vector or the DOF map's DOFs-per-node count does
    /// not match the physics, or when the physics' spatial dimension does
    /// not match the mesh.
    pub fn with_physics(
        mesh: ProblemMesh<'a>,
        physics: Physics,
        dof_map: &'a DofMap,
        material: &'a Material,
        loads: &'a [f64],
    ) -> Self {
        assert_eq!(
            loads.len(),
            dof_map.n_dofs(),
            "load vector does not match the DOF map"
        );
        assert_eq!(
            dof_map.dofs_per_node(),
            physics.dofs_per_node(),
            "DOF map carries the wrong DOFs-per-node count for {physics}"
        );
        let mesh_dim = match mesh {
            ProblemMesh::Quad(_) => 2,
            ProblemMesh::Hex(_) => 3,
        };
        assert_eq!(
            physics.dim(),
            mesh_dim,
            "{physics} needs a {}-D mesh",
            physics.dim()
        );
        Problem {
            mesh,
            physics,
            dof_map,
            material,
            loads,
        }
    }

    /// The mesh this problem discretizes.
    pub fn mesh(&self) -> ProblemMesh<'a> {
        self.mesh
    }

    /// The physics assembled on the mesh.
    pub fn physics(&self) -> Physics {
        self.physics
    }

    /// Node coordinates lifted to 3-D (`z = 0` on 2-D meshes) — the
    /// geometry the rigid-body coarse modes consume.
    pub fn coords3(&self) -> Vec<[f64; 3]> {
        match self.mesh {
            ProblemMesh::Quad(m) => m.coords().iter().map(|c| [c[0], c[1], 0.0]).collect(),
            ProblemMesh::Hex(m) => m.coords().to_vec(),
        }
    }

    /// The quadrilateral mesh, for the 2-D-only paths (`partitioned()`, the
    /// transient driver).
    ///
    /// # Panics
    /// Panics on a hexahedral mesh, naming the caller `what`.
    fn quad_mesh(&self, what: &str) -> &'a QuadMesh {
        match self.mesh {
            ProblemMesh::Quad(m) => m,
            ProblemMesh::Hex(_) => panic!("{what} supports 2-D quadrilateral meshes only"),
        }
    }

    /// Element-partitions this problem's mesh into the subdomain node sets.
    fn subdomains(&self, part: &ElementPartition) -> Vec<Subdomain> {
        match self.mesh {
            ProblemMesh::Quad(m) => part.subdomains(m),
            ProblemMesh::Hex(m) => part.subdomains_of(m),
        }
    }

    /// Assembles one subdomain's unassembled local system for this
    /// problem's physics.
    fn build_subdomain(&self, sub: &Subdomain) -> SubdomainSystem {
        match (self.mesh, self.physics) {
            (ProblemMesh::Quad(m), Physics::Elasticity2d) => {
                SubdomainSystem::build(m, self.dof_map, self.material, sub, self.loads, None)
            }
            (ProblemMesh::Quad(m), Physics::Heat2d) => {
                SubdomainSystem::build_heat(m, self.dof_map, self.material, sub, self.loads)
            }
            (ProblemMesh::Hex(m), Physics::Elasticity3d) => {
                SubdomainSystem::build_hex(m, self.dof_map, self.material, sub, self.loads)
            }
            // `with_physics` pins the mesh dimension to the physics.
            _ => unreachable!("mesh/physics pairing validated at construction"),
        }
    }

    /// Assembles the constrained global static system for this problem's
    /// physics (the RDD baseline's input).
    fn build_static(&self) -> StaticSystem {
        match (self.mesh, self.physics) {
            (ProblemMesh::Quad(m), Physics::Elasticity2d) => {
                parfem_fem::assembly::build_static(m, self.dof_map, self.material, self.loads)
            }
            (ProblemMesh::Quad(m), Physics::Heat2d) => {
                parfem_fem::assembly::build_static_heat(m, self.dof_map, self.material, self.loads)
            }
            (ProblemMesh::Hex(m), Physics::Elasticity3d) => {
                parfem_fem::assembly::build_static_hex(m, self.dof_map, self.material, self.loads)
            }
            _ => unreachable!("mesh/physics pairing validated at construction"),
        }
    }
}

/// Which domain-decomposition strategy a session runs, with its partition.
#[derive(Clone)]
pub enum Strategy {
    /// Element-based decomposition (the paper's contribution): unassembled
    /// per-subdomain systems, interface sums of nodal values only.
    Edd(ElementPartition),
    /// Row-based (block-row) decomposition: the PSPARSLIB/Aztec-style
    /// baseline over the assembled, scaled matrix.
    Rdd(NodePartition),
}

enum SessionInput<'a> {
    Mesh(Problem<'a>),
    Systems {
        systems: &'a [SubdomainSystem],
        n_dofs: usize,
    },
}

/// Builder-style distributed solve: construct from a [`Problem`] (or
/// prebuilt subdomain systems), choose the orthogonal options, then
/// [`run`](SolveSession::run), [`run_multi`](SolveSession::run_multi) or
/// [`run_dynamic`](SolveSession::run_dynamic). See the [module
/// docs](self) for an example.
pub struct SolveSession<'a> {
    input: SessionInput<'a>,
    strategy: Option<Strategy>,
    cfg: SolverConfig,
    model: MachineModel,
    sink: Option<&'a TraceSink>,
}

impl<'a> SolveSession<'a> {
    /// Starts a session over a mesh-level [`Problem`]. A
    /// [`strategy`](SolveSession::strategy) must be chosen before running.
    pub fn new(problem: Problem<'a>) -> Self {
        SolveSession {
            input: SessionInput::Mesh(problem),
            strategy: None,
            cfg: SolverConfig::default(),
            model: MachineModel::ideal(),
            sink: None,
        }
    }

    /// Starts a session over *prebuilt* per-subdomain systems — one rank
    /// per system. This is the element-agnostic entry: build the systems
    /// with [`SubdomainSystem::build`] (Q4), `build_tri` (T3) or
    /// `build_quad8` (Q8) and hand them over. The strategy is implicitly
    /// EDD; do not set [`strategy`](SolveSession::strategy).
    pub fn from_systems(systems: &'a [SubdomainSystem], n_dofs: usize) -> Self {
        assert!(!systems.is_empty(), "need at least one subdomain system");
        SolveSession {
            input: SessionInput::Systems { systems, n_dofs },
            strategy: None,
            cfg: SolverConfig::default(),
            model: MachineModel::ideal(),
            sink: None,
        }
    }

    /// Chooses the decomposition strategy (and its partition).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Chooses EDD over the element partition `spec` produces for `parts`
    /// subdomains — the session-builder face of the CLI's `--partitioner`
    /// flag (`strips`, `blocks`, or the seeded graph partitioner). Works
    /// for every supported mesh: the partitioner registry is generic over
    /// structured cell meshes, hexahedra included.
    ///
    /// # Panics
    /// Panics for sessions built from prebuilt systems (those are already
    /// partitioned).
    pub fn partitioned(mut self, spec: PartitionerSpec, parts: usize) -> Self {
        let SessionInput::Mesh(ref p) = self.input else {
            panic!("partitioned() needs a mesh-level session; prebuilt systems already are");
        };
        let part = match p.mesh() {
            ProblemMesh::Quad(m) => spec.element_partition(m, parts),
            ProblemMesh::Hex(m) => spec.element_partition(m, parts),
        };
        self.strategy = Some(Strategy::Edd(part));
        self
    }

    /// Replaces the whole solver configuration at once (the escape hatch
    /// for callers that already hold a [`SolverConfig`]).
    pub fn config(mut self, cfg: SolverConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the preconditioner spec (default `gls:7`, the paper's choice).
    pub fn precond(mut self, spec: PrecondSpec) -> Self {
        self.cfg.precond = spec;
        self
    }

    /// Sets the EDD algorithm variant (default enhanced; ignored by RDD).
    pub fn variant(mut self, variant: EddVariant) -> Self {
        self.cfg.variant = variant;
        self
    }

    /// Sets the GMRES restart/tolerance settings.
    pub fn gmres(mut self, gmres: GmresConfig) -> Self {
        self.cfg.gmres = gmres;
        self
    }

    /// Selects the kernel-variant policy (default
    /// [`KernelPolicy::Scalar`], the bit-exact golden reference).
    /// [`KernelPolicy::Auto`] micro-benchmarks the candidate formats
    /// against each rank's local matrix at operator build time and keeps
    /// the fastest; the winning choice is recorded per solve in the
    /// metrics registry (`parfem_kernel_variant_<label>_solves_total`)
    /// and on the trace. The policy drives the EDD local SpMV and the
    /// lane-kernel Gram–Schmidt path inside FGMRES; the RDD baseline and
    /// the overlapped split schedule keep their scalar row kernels.
    pub fn kernels(mut self, policy: KernelPolicy) -> Self {
        self.cfg.gmres.kernels = policy;
        self
    }

    /// Sets the virtual machine model (default ideal — free communication).
    pub fn machine(mut self, model: MachineModel) -> Self {
        self.model = model;
        self
    }

    /// Enables/disables the overlapped (nonblocking) interface exchange.
    /// Bit-identical results; changes only the modeled time.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.cfg.overlap = overlap;
        self
    }

    /// Installs a deterministic fault-injection plan (accepts a
    /// [`FaultPlan`], `Some(plan)` or `None`).
    pub fn faults(mut self, faults: impl Into<Option<FaultPlan>>) -> Self {
        self.cfg.faults = faults.into();
        self
    }

    /// Sets the wall-clock watchdog per blocking communicator wait.
    pub fn comm_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.comm_timeout = timeout;
        self
    }

    /// Records structured events (host spans, per-rank comm events,
    /// per-iteration convergence, the `solve_summary` instant) into `sink`.
    pub fn trace(mut self, sink: &'a TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Records solver, communication, fault and session counters into the
    /// given [`MetricsRegistry`] (see [`SolverConfig::metrics`]). Pass an
    /// enabled registry; the default is disabled (zero overhead).
    pub fn metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.cfg.metrics = metrics.clone();
        self
    }

    /// Runs one distributed solve of the session's problem.
    ///
    /// # Errors
    /// Returns [`SolveFailures`] listing every rank whose solve failed
    /// with a typed [`SolveError`] (possible only under fault injection or
    /// communicator timeouts).
    ///
    /// # Panics
    /// Panics on API misuse: a mesh-level session without a strategy, or a
    /// prebuilt-systems session with one.
    pub fn run(&self) -> Result<DdSolveOutput, SolveFailures> {
        let disabled = TraceSink::disabled();
        let sink = self.sink.unwrap_or(&disabled);
        match (&self.input, &self.strategy) {
            (SessionInput::Systems { systems, n_dofs }, None) => run_edd_systems(
                systems,
                *n_dofs,
                None,
                parfem_mesh::numbering::DOFS_PER_NODE,
                self.model.clone(),
                &self.cfg,
                sink,
            ),
            (SessionInput::Systems { .. }, Some(_)) => panic!(
                "prebuilt subdomain systems already encode the partition; do not set .strategy(..)"
            ),
            (SessionInput::Mesh(p), Some(Strategy::Edd(part))) => {
                let systems = assemble_edd(p, part, sink);
                let coords = p.coords3();
                run_edd_systems(
                    &systems,
                    p.dof_map.n_dofs(),
                    Some(&coords),
                    p.dof_map.dofs_per_node(),
                    self.model.clone(),
                    &self.cfg,
                    sink,
                )
            }
            (SessionInput::Mesh(p), Some(Strategy::Rdd(part))) => {
                run_rdd(p, part, self.model.clone(), &self.cfg, sink)
            }
            (SessionInput::Mesh(_), None) => {
                panic!("SolveSession over a mesh needs .strategy(Strategy::Edd(..) | Strategy::Rdd(..))")
            }
        }
    }

    /// Solves the session's system for **many right-hand sides**, sharing
    /// one partition, assembly, scaling, preconditioner and Krylov
    /// workspace across all of them. Each `rhs_set[k]` is a global load
    /// vector (`dof_map.n_dofs()` long); `solutions[k]` is its physical
    /// solution.
    ///
    /// Requires the mesh-level problem (the load vectors are global) and
    /// **homogeneous** Dirichlet constraints — the per-RHS local load
    /// rebuild `f̂ᵢ = fᵢ/multᵢ` with zeroed constrained rows is exact only
    /// when the prescribed values are zero. The first right-hand side
    /// produces bit-identical results to [`SolveSession::run`] on the same
    /// loads.
    ///
    /// # Errors
    /// Returns [`SolveFailures`] exactly as [`SolveSession::run`].
    ///
    /// # Panics
    /// Panics on inhomogeneous constraints, wrong load-vector lengths, a
    /// prebuilt-systems input, or a missing strategy.
    pub fn run_multi(&self, rhs_set: &[Vec<f64>]) -> Result<MultiSolveOutput, SolveFailures> {
        let disabled = TraceSink::disabled();
        let sink = self.sink.unwrap_or(&disabled);
        let p = match &self.input {
            SessionInput::Mesh(p) => p,
            SessionInput::Systems { .. } => panic!(
                "run_multi needs the mesh-level problem: the right-hand sides are global load vectors"
            ),
        };
        for (d, v) in p.dof_map.fixed_dofs() {
            assert_eq!(v, 0.0, "run_multi requires homogeneous BCs (dof {d})");
        }
        for rhs in rhs_set {
            assert_eq!(
                rhs.len(),
                p.dof_map.n_dofs(),
                "right-hand side does not match the DOF map"
            );
        }
        match &self.strategy {
            Some(Strategy::Edd(part)) => {
                run_multi_edd(p, part, rhs_set, self.model.clone(), &self.cfg, sink)
            }
            Some(Strategy::Rdd(part)) => {
                run_multi_rdd(p, part, rhs_set, self.model.clone(), &self.cfg, sink)
            }
            None => panic!(
                "SolveSession over a mesh needs .strategy(Strategy::Edd(..) | Strategy::Rdd(..))"
            ),
        }
    }

    /// Runs `steps` Newmark time steps of `M ü + K u = f` (constant load,
    /// zero initial conditions, homogeneous Dirichlet BCs) with the EDD
    /// distributed solver in the loop, watching the global DOFs in
    /// `watch_dofs`. The session's solver configuration (preconditioner,
    /// variant, overlap, GMRES settings) applies to every step's solve;
    /// fault plans are ignored (the transient driver runs fault-free).
    ///
    /// # Panics
    /// Panics unless the session holds a mesh-level problem with an EDD
    /// strategy, if the DOF map carries non-zero prescribed values, or if
    /// the preconditioner spec is two-level (the transient driver has no
    /// coarse-space plumbing).
    pub fn run_dynamic(
        &self,
        params: NewmarkParams,
        steps: usize,
        watch_dofs: &[usize],
    ) -> DynamicRunOutput {
        let p = match &self.input {
            SessionInput::Mesh(p) => p,
            SessionInput::Systems { .. } => {
                panic!("run_dynamic needs the mesh-level problem (mass assembly)")
            }
        };
        let part = match &self.strategy {
            Some(Strategy::Edd(part)) => part,
            _ => panic!("the transient driver is EDD-only: set .strategy(Strategy::Edd(..))"),
        };
        assert!(
            !self.cfg.precond.needs_coarse(),
            "the transient driver does not support two-level preconditioning; \
             use a one-level preconditioner spec"
        );
        assert_eq!(
            p.physics,
            Physics::Elasticity2d,
            "the transient driver integrates the 2-D elasticity equations of motion only"
        );
        let cfg = DynamicRunConfig {
            solver: self.cfg.clone(),
            params,
            steps,
        };
        run_dynamic_edd(
            p.quad_mesh("run_dynamic"),
            p.dof_map,
            p.material,
            p.loads,
            part,
            self.model.clone(),
            &cfg,
            watch_dofs,
        )
    }
}

/// Partitions the mesh and assembles the per-subdomain systems under
/// host-side spans.
fn assemble_edd(
    p: &Problem<'_>,
    part: &ElementPartition,
    sink: &TraceSink,
) -> Vec<SubdomainSystem> {
    let subdomains = host_span(sink, "partition", || p.subdomains(part));
    host_span(sink, "assembly", || {
        subdomains.iter().map(|s| p.build_subdomain(s)).collect()
    })
}

/// Stamps the end-of-solve summary (consumed by `parfem report` and the
/// convergence renderer) onto the trace as a host-side `solve_summary`
/// instant event.
///
/// `alloc_start` is the allocation-counter snapshot taken when the solve
/// began; when the process runs under a
/// [`parfem_trace::alloc::CountingAlloc`] (the `parfem` binary's
/// `count-allocs` feature, or an instrumented test harness), the summary
/// additionally carries `alloc_count` / `alloc_bytes` for the whole solve,
/// so workspace regressions surface directly in `parfem report`.
fn emit_solve_summary(
    sink: &TraceSink,
    variant: &str,
    spec: &PrecondSpec,
    overlap: bool,
    out: &DdSolveOutput,
    alloc_start: alloc::AllocStats,
) {
    if let Some(tracer) = sink.host_tracer() {
        let mut fields = vec![
            (
                "converged".to_string(),
                Value::U64(out.history.converged() as u64),
            ),
            (
                "iterations".to_string(),
                Value::U64(out.history.iterations() as u64),
            ),
            (
                "restarts".to_string(),
                Value::U64(out.history.restarts as u64),
            ),
            (
                "final_rel_res".to_string(),
                Value::F64(
                    out.history
                        .relative_residuals
                        .last()
                        .copied()
                        .unwrap_or(f64::NAN),
                ),
            ),
            ("modeled_time".to_string(), Value::F64(out.modeled_time)),
            ("precond".to_string(), Value::Str(spec.name())),
            ("variant".to_string(), Value::Str(variant.to_string())),
            ("overlap".to_string(), Value::U64(overlap as u64)),
        ];
        if alloc::is_counting() {
            let d = alloc::stats().since(alloc_start);
            fields.push(("alloc_count".to_string(), Value::U64(d.count)));
            fields.push(("alloc_bytes".to_string(), Value::U64(d.bytes)));
        }
        tracer.instant("solve_summary", 0.0, fields);
    }
}

/// Sums the per-rank [`parfem_msg::CommStats`] into aggregate
/// communication/compute counters and records the modeled session time. A
/// disabled registry makes this a no-op.
fn record_comm_metrics(metrics: &MetricsRegistry, reports: &[RankReport], modeled_time: f64) {
    if !metrics.is_enabled() {
        return;
    }
    let mut total = parfem_msg::CommStats::default();
    let h_virt = metrics.histogram("parfem_rank_virtual_microseconds");
    for r in reports {
        total = total.merged(&r.stats);
        h_virt.observe((r.virtual_time * 1e6).round().max(0.0) as u64);
    }
    metrics.counter("parfem_msg_sends_total").add(total.sends);
    metrics
        .counter("parfem_msg_sent_bytes_total")
        .add(total.bytes_sent);
    metrics.counter("parfem_msg_recvs_total").add(total.recvs);
    metrics
        .counter("parfem_msg_recv_bytes_total")
        .add(total.bytes_received);
    metrics
        .counter("parfem_msg_allreduces_total")
        .add(total.allreduces);
    metrics
        .counter("parfem_msg_barriers_total")
        .add(total.barriers);
    metrics
        .counter("parfem_msg_exchanges_total")
        .add(total.neighbor_exchanges);
    metrics
        .counter("parfem_compute_flops_total")
        .add(total.flops);
    metrics
        .gauge("parfem_session_last_modeled_seconds")
        .set(modeled_time);
}

/// Folds one rank's [`FaultStats`] into the fault-injection counters. A
/// disabled registry makes this a no-op.
fn record_fault_metrics(metrics: &MetricsRegistry, stats: &FaultStats) {
    if !metrics.is_enabled() {
        return;
    }
    metrics.counter("parfem_fault_drops_total").add(stats.drops);
    metrics
        .counter("parfem_fault_retransmits_total")
        .add(stats.retransmits);
    metrics
        .counter("parfem_fault_duplicates_total")
        .add(stats.duplicates);
    metrics
        .counter("parfem_fault_delays_total")
        .add(stats.delays);
    metrics
        .counter("parfem_fault_reorders_total")
        .add(stats.reorders);
    metrics
        .counter("parfem_fault_discards_total")
        .add(stats.discards);
}

/// Bumps the session outcome counters around a run result. A disabled
/// registry makes this the identity.
fn record_session_outcome<T>(
    metrics: &MetricsRegistry,
    res: Result<T, SolveFailures>,
) -> Result<T, SolveFailures> {
    if metrics.is_enabled() {
        match &res {
            Ok(_) => metrics.counter("parfem_session_solves_total").incr(),
            Err(_) => metrics
                .counter("parfem_session_solve_failures_total")
                .incr(),
        }
    }
    res
}

/// Runs `f` under a named host-side (wall-clock) span.
fn host_span<R>(sink: &TraceSink, name: &str, f: impl FnOnce() -> R) -> R {
    let tracer = sink.host_tracer();
    if let Some(t) = &tracer {
        t.span_begin(name, 0.0);
    }
    let r = f();
    if let Some(t) = &tracer {
        t.span_end(name, 0.0);
    }
    r
}

/// The coarse-space component of a two-level preconditioner spec, if any.
fn coarse_spec(spec: &PrecondSpec) -> Option<&CoarseSpec> {
    match spec {
        PrecondSpec::TwoLevel { coarse, .. } => Some(coarse),
        _ => None,
    }
}

/// Host-side coarse construction for an EDD run: when the spec is
/// two-level, builds the global coarse basis once and restricts it to one
/// [`CoarseSolver`] per rank, all under a `coarse-build` host span.
fn build_edd_coarse(
    spec: &PrecondSpec,
    systems: &[SubdomainSystem],
    n_dofs: usize,
    coords: Option<&[[f64; 3]]>,
    dofs_per_node: usize,
    sink: &TraceSink,
) -> Option<Vec<CoarseSolver>> {
    coarse_spec(spec).map(|cs| {
        host_span(sink, "coarse-build", || {
            let basis = edd_coarse_basis(
                cs,
                systems,
                n_dofs,
                coords,
                dofs_per_node,
                DEFAULT_PIVOT_TOL,
            );
            edd_coarse_solvers(&basis, systems)
        })
    })
}

/// Host-side coarse construction for an RDD run, over the already-scaled
/// assembled operator and the node partition's disjoint block rows.
fn build_rdd_coarse(
    spec: &PrecondSpec,
    a: &CsrMatrix,
    d: &[f64],
    node_part: &NodePartition,
    p: &Problem<'_>,
    systems: &[RddSystem],
    sink: &TraceSink,
) -> Option<Vec<CoarseSolver>> {
    coarse_spec(spec).map(|cs| {
        host_span(sink, "coarse-build", || {
            let coords = p.coords3();
            let basis =
                rdd_coarse_basis(cs, a, d, node_part, p.dof_map, &coords, DEFAULT_PIVOT_TOL);
            rdd_coarse_solvers(&basis, systems)
        })
    })
}

/// The per-rank EDD pipeline: distributed scaling, preconditioner build,
/// and the flexible GMRES, over any [`Communicator`] — the raw
/// [`ThreadComm`] in fault-free runs, a [`FaultyComm`] under chaos.
fn edd_rank_body<C: Communicator>(
    comm: &C,
    sys: &SubdomainSystem,
    coarse: Option<&CoarseSolver>,
    cfg: &SolverConfig,
) -> Result<(Vec<f64>, ConvergenceHistory), SolveError> {
    if let Some(t) = comm.tracer() {
        t.span_begin("scaling", comm.virtual_time());
    }
    let mut layout = EddLayout::from_system(sys);
    layout.set_overlap(cfg.overlap);
    let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
    let mut b = sys.f_local.clone();
    let a = sc.apply(&sys.k_local, &mut b);
    if let Some(t) = comm.tracer() {
        t.span_end("scaling", comm.virtual_time());
        t.span_begin("precond-build", comm.virtual_time());
    }
    let x0 = vec![0.0; b.len()];
    // The rank-local scaled matrix feeds the `direct` spec (exact local
    // solve); the lazy closure feeds Jacobi its assembled diagonal.
    let pc = cfg.precond.instantiate_full(coarse.cloned(), Some(&a), || {
        // Assembled diagonal of the scaled operator for Jacobi.
        let mut d = a.diagonal();
        let mut bufs = crate::dist_vec::ExchangeBuffers::new();
        layout.interface_sum_buffered(comm, &mut d, &mut bufs);
        d
    });
    if let Some(t) = comm.tracer() {
        t.span_end("precond-build", comm.virtual_time());
    }
    let res = edd_fgmres_metered(
        comm,
        &layout,
        &a,
        &pc,
        &b,
        &x0,
        &cfg.gmres,
        cfg.variant,
        &mut KrylovWorkspace::new(),
        &cfg.metrics,
    )?;
    let mut u = res.x;
    sc.unscale(&mut u);
    Ok((u, res.history))
}

/// The per-rank multi-RHS EDD pipeline: layout, scaling, preconditioner
/// and Krylov workspace built once, then one FGMRES per right-hand side.
fn edd_multi_rank_body<C: Communicator>(
    comm: &C,
    sys: &SubdomainSystem,
    coarse: Option<&CoarseSolver>,
    fixed_local: &[usize],
    rhs_set: &[Vec<f64>],
    cfg: &SolverConfig,
) -> Result<(Vec<Vec<f64>>, Vec<ConvergenceHistory>), SolveError> {
    if let Some(t) = comm.tracer() {
        t.span_begin("scaling", comm.virtual_time());
    }
    let mut layout = EddLayout::from_system(sys);
    layout.set_overlap(cfg.overlap);
    let n = sys.n_local_dofs();
    let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
    let mut dummy_rhs = vec![0.0; n];
    let a = sc.apply(&sys.k_local, &mut dummy_rhs);
    if let Some(t) = comm.tracer() {
        t.span_end("scaling", comm.virtual_time());
        t.span_begin("precond-build", comm.virtual_time());
    }
    // A concrete `SpecPrecond` (not the boxed form): the operator type is
    // re-instantiated at every solve, so the per-RHS `b` borrows below do
    // not have to outlive the preconditioner.
    let pc = cfg.precond.instantiate_full(coarse.cloned(), Some(&a), || {
        let mut d = a.diagonal();
        let mut bufs = crate::dist_vec::ExchangeBuffers::new();
        layout.interface_sum_buffered(comm, &mut d, &mut bufs);
        d
    });
    if let Some(t) = comm.tracer() {
        t.span_end("precond-build", comm.virtual_time());
    }
    let x0 = vec![0.0; n];
    let mut ws = KrylovWorkspace::new();
    let mut solutions = Vec::with_capacity(rhs_set.len());
    let mut histories = Vec::with_capacity(rhs_set.len());
    for rhs in rhs_set {
        // Local distributed load: global entries split by multiplicity,
        // constrained rows zeroed (homogeneous BCs — asserted by the
        // caller). This reproduces `SubdomainSystem::build`'s f_local.
        let mut b: Vec<f64> = sys
            .global_dofs
            .iter()
            .zip(&sys.multiplicity)
            .map(|(&g, &m)| rhs[g] / m)
            .collect();
        for &l in fixed_local {
            b[l] = 0.0;
        }
        dense::diag_mul(&sc.d, &mut b);
        let res = edd_fgmres_metered(
            comm,
            &layout,
            &a,
            &pc,
            &b,
            &x0,
            &cfg.gmres,
            cfg.variant,
            &mut ws,
            &cfg.metrics,
        )?;
        let mut u = res.x;
        sc.unscale(&mut u);
        solutions.push(u);
        histories.push(res.history);
    }
    Ok((solutions, histories))
}

/// Splits the per-rank outcomes of a fallible run. A rank *panic* is a bug
/// (not an injected fault) and propagates as a panic; typed [`SolveError`]s
/// collect into [`SolveFailures`]; a clean run yields the per-rank values.
fn collect_rank_results<R>(
    results: Vec<Result<Result<R, SolveError>, parfem_msg::RankPanic>>,
    reports: Vec<RankReport>,
    modeled_time: f64,
) -> Result<(Vec<R>, Vec<RankReport>, f64), SolveFailures> {
    let mut values = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for (rank, res) in results.into_iter().enumerate() {
        match res {
            Ok(Ok(v)) => values.push(v),
            Ok(Err(e)) => errors.push((rank, e)),
            Err(p) => panic!("rank panicked: {}", p.message),
        }
    }
    if errors.is_empty() {
        Ok((values, reports, modeled_time))
    } else {
        Err(SolveFailures {
            errors,
            reports,
            modeled_time,
        })
    }
}

/// The EDD engine over prebuilt systems: distributed scaling →
/// preconditioner → FGMRES → gather, one rank per system.
///
/// When `cfg.faults` is set, every rank's communicator is wrapped in a
/// [`FaultyComm`] driven by the shared [`FaultPlan`], and `cfg.comm_timeout`
/// bounds every blocking wait, so even a killed rank tears the run down
/// with errors on every survivor instead of a hang.
fn run_edd_systems(
    systems: &[SubdomainSystem],
    n_dofs: usize,
    coords: Option<&[[f64; 3]]>,
    dofs_per_node: usize,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    let p = systems.len();
    assert!(p > 0, "need at least one subdomain system");
    let alloc_start = alloc::stats();
    let coarse = build_edd_coarse(&cfg.precond, systems, n_dofs, coords, dofs_per_node, sink);
    let opts = RunOptions {
        comm_timeout: cfg.comm_timeout,
    };
    let out = try_run_ranks(p, model, opts, sink, |comm: &ThreadComm| {
        let sys = &systems[comm.rank()];
        let csol = coarse.as_ref().map(|c| &c[comm.rank()]);
        match &cfg.faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                let r = edd_rank_body(&faulty, sys, csol, cfg);
                record_fault_metrics(&cfg.metrics, &faulty.fault_stats());
                r
            }
            None => edd_rank_body(comm, sys, csol, cfg),
        }
    });
    record_comm_metrics(&cfg.metrics, &out.reports, out.modeled_time);
    let (results, reports, modeled_time) = record_session_outcome(
        &cfg.metrics,
        collect_rank_results(out.results, out.reports, out.modeled_time),
    )?;

    let mut u = vec![0.0; n_dofs];
    host_span(sink, "gather", || {
        for (rank, (ul, _)) in results.iter().enumerate() {
            for (l, &g) in systems[rank].global_dofs.iter().enumerate() {
                u[g] = ul[l];
            }
        }
    });
    let solved = DdSolveOutput {
        u,
        history: results[0].1.clone(),
        reports,
        modeled_time,
    };
    emit_solve_summary(
        sink,
        edd_variant_label(cfg.variant),
        &cfg.precond,
        cfg.overlap,
        &solved,
        alloc_start,
    );
    Ok(solved)
}

fn edd_variant_label(variant: EddVariant) -> &'static str {
    match variant {
        EddVariant::Basic => "edd-basic",
        EddVariant::Enhanced => "edd-enhanced",
    }
}

/// The multi-RHS EDD engine: one partition/assembly/scaling/preconditioner,
/// then one solve per right-hand side, gathered per RHS.
fn run_multi_edd(
    p: &Problem<'_>,
    part: &ElementPartition,
    rhs_set: &[Vec<f64>],
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<MultiSolveOutput, SolveFailures> {
    let systems = assemble_edd(p, part, sink);
    let fixed_local: Vec<Vec<usize>> = systems
        .iter()
        .map(|sys| {
            sys.global_dofs
                .iter()
                .enumerate()
                .filter(|(_, &g)| p.dof_map.is_fixed(g))
                .map(|(l, _)| l)
                .collect()
        })
        .collect();
    let coords = p.coords3();
    let coarse = build_edd_coarse(
        &cfg.precond,
        &systems,
        p.dof_map.n_dofs(),
        Some(&coords),
        p.dof_map.dofs_per_node(),
        sink,
    );
    let opts = RunOptions {
        comm_timeout: cfg.comm_timeout,
    };
    let out = try_run_ranks(systems.len(), model, opts, sink, |comm: &ThreadComm| {
        let sys = &systems[comm.rank()];
        let csol = coarse.as_ref().map(|c| &c[comm.rank()]);
        let fixed = &fixed_local[comm.rank()];
        match &cfg.faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                let r = edd_multi_rank_body(&faulty, sys, csol, fixed, rhs_set, cfg);
                record_fault_metrics(&cfg.metrics, &faulty.fault_stats());
                r
            }
            None => edd_multi_rank_body(comm, sys, csol, fixed, rhs_set, cfg),
        }
    });
    record_comm_metrics(&cfg.metrics, &out.reports, out.modeled_time);
    let (results, reports, modeled_time) = record_session_outcome(
        &cfg.metrics,
        collect_rank_results(out.results, out.reports, out.modeled_time),
    )?;

    let n_dofs = p.dof_map.n_dofs();
    let (solutions, histories) = host_span(sink, "gather", || {
        let mut solutions = Vec::with_capacity(rhs_set.len());
        for k in 0..rhs_set.len() {
            let mut u = vec![0.0; n_dofs];
            for (rank, (sols, _)) in results.iter().enumerate() {
                for (l, &g) in systems[rank].global_dofs.iter().enumerate() {
                    u[g] = sols[k][l];
                }
            }
            solutions.push(u);
        }
        (solutions, results[0].1.clone())
    });
    Ok(MultiSolveOutput {
        solutions,
        histories,
        reports,
        modeled_time,
    })
}

/// The per-rank RDD pipeline: preconditioner build plus the block-row
/// FGMRES, over any [`Communicator`].
fn rdd_rank_body<C: Communicator>(
    comm: &C,
    sys: &RddSystem,
    a: &CsrMatrix,
    coarse: Option<&CoarseSolver>,
    cfg: &SolverConfig,
) -> Result<(Vec<f64>, ConvergenceHistory), SolveError> {
    if let Some(t) = comm.tracer() {
        t.span_begin("precond-build", comm.virtual_time());
    }
    let x0 = vec![0.0; sys.n_local()];
    // `a_loc` (the owned diagonal block) feeds the `direct` spec; the lazy
    // closure feeds Jacobi its diagonal.
    let pc = cfg
        .precond
        .instantiate_full(coarse.cloned(), Some(&sys.a_loc), || {
            sys.rows.iter().map(|&d| a.get(d, d)).collect()
        });
    if let Some(t) = comm.tracer() {
        t.span_end("precond-build", comm.virtual_time());
    }
    let res = rdd_fgmres_metered(
        comm,
        sys,
        &pc,
        &x0,
        &cfg.gmres,
        &mut KrylovWorkspace::new(),
        &cfg.metrics,
    )?;
    Ok((res.x, res.history))
}

/// The RDD engine: host-side assembly and scaling, block-row split, one
/// FGMRES per rank, scatter + unscale.
fn run_rdd(
    p: &Problem<'_>,
    node_part: &NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    let alloc_start = alloc::stats();
    let assembled = host_span(sink, "assembly", || p.build_static());
    let (a, b, sc) = host_span(sink, "scaling", || {
        scale_system(&assembled.stiffness, &assembled.rhs).expect("square assembled system")
    });
    let mut systems = RddSystem::build_all(&a, &b, node_part);
    for sys in &mut systems {
        sys.overlap = cfg.overlap;
    }
    let coarse = build_rdd_coarse(
        &cfg.precond,
        &a,
        sc.diagonal(),
        node_part,
        p,
        &systems,
        sink,
    );
    let nparts = node_part.n_parts();
    let opts = RunOptions {
        comm_timeout: cfg.comm_timeout,
    };

    let out = try_run_ranks(nparts, model, opts, sink, |comm: &ThreadComm| {
        let sys = &systems[comm.rank()];
        let csol = coarse.as_ref().map(|c| &c[comm.rank()]);
        match &cfg.faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                let r = rdd_rank_body(&faulty, sys, &a, csol, cfg);
                record_fault_metrics(&cfg.metrics, &faulty.fault_stats());
                r
            }
            None => rdd_rank_body(comm, sys, &a, csol, cfg),
        }
    });
    record_comm_metrics(&cfg.metrics, &out.reports, out.modeled_time);
    let (results, reports, modeled_time) = record_session_outcome(
        &cfg.metrics,
        collect_rank_results(out.results, out.reports, out.modeled_time),
    )?;

    let mut x = vec![0.0; p.dof_map.n_dofs()];
    let solved = host_span(sink, "gather", || {
        for (rank, (xl, _)) in results.iter().enumerate() {
            systems[rank].scatter(xl, &mut x);
        }
        DdSolveOutput {
            u: sc.unscale_solution(&x),
            history: results[0].1.clone(),
            reports,
            modeled_time,
        }
    });
    emit_solve_summary(sink, "rdd", &cfg.precond, cfg.overlap, &solved, alloc_start);
    Ok(solved)
}

/// The multi-RHS RDD engine: one assembly/scaling/split, then one
/// block-row FGMRES per right-hand side on a per-rank system whose local
/// load is swapped between solves.
fn run_multi_rdd(
    p: &Problem<'_>,
    node_part: &NodePartition,
    rhs_set: &[Vec<f64>],
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<MultiSolveOutput, SolveFailures> {
    let assembled = host_span(sink, "assembly", || p.build_static());
    let (a, b, sc) = host_span(sink, "scaling", || {
        scale_system(&assembled.stiffness, &assembled.rhs).expect("square assembled system")
    });
    // Per-RHS scaled global loads (constrained entries zeroed — homogeneous
    // BCs asserted by the caller, matching `build_static`'s RHS fixups).
    let scaled_rhs: Vec<Vec<f64>> = host_span(sink, "scaling", || {
        rhs_set
            .iter()
            .map(|rhs| {
                let mut g = rhs.clone();
                for (d, _) in p.dof_map.fixed_dofs() {
                    g[d] = 0.0;
                }
                sc.apply_in_place(&mut g);
                g
            })
            .collect()
    });
    let mut systems = RddSystem::build_all(&a, &b, node_part);
    for sys in &mut systems {
        sys.overlap = cfg.overlap;
    }
    let coarse = build_rdd_coarse(
        &cfg.precond,
        &a,
        sc.diagonal(),
        node_part,
        p,
        &systems,
        sink,
    );
    let nparts = node_part.n_parts();
    let opts = RunOptions {
        comm_timeout: cfg.comm_timeout,
    };
    let out = try_run_ranks(nparts, model, opts, sink, |comm: &ThreadComm| {
        let template = &systems[comm.rank()];
        let csol = coarse.as_ref().map(|c| &c[comm.rank()]);
        match &cfg.faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                let r = rdd_multi_rank_body(&faulty, template, csol, &scaled_rhs, &a, cfg);
                record_fault_metrics(&cfg.metrics, &faulty.fault_stats());
                r
            }
            None => rdd_multi_rank_body(comm, template, csol, &scaled_rhs, &a, cfg),
        }
    });
    record_comm_metrics(&cfg.metrics, &out.reports, out.modeled_time);
    let (results, reports, modeled_time) = record_session_outcome(
        &cfg.metrics,
        collect_rank_results(out.results, out.reports, out.modeled_time),
    )?;

    let (solutions, histories) = host_span(sink, "gather", || {
        let mut solutions = Vec::with_capacity(rhs_set.len());
        for k in 0..rhs_set.len() {
            let mut x = vec![0.0; p.dof_map.n_dofs()];
            for (rank, (sols, _)) in results.iter().enumerate() {
                systems[rank].scatter(&sols[k], &mut x);
            }
            solutions.push(sc.unscale_solution(&x));
        }
        (solutions, results[0].1.clone())
    });
    Ok(MultiSolveOutput {
        solutions,
        histories,
        reports,
        modeled_time,
    })
}

/// The per-rank multi-RHS RDD pipeline: the preconditioner and Krylov
/// workspace are shared; each right-hand side runs on a copy of the local
/// block whose `b_loc` is the restriction of that (scaled) global load.
fn rdd_multi_rank_body<C: Communicator>(
    comm: &C,
    template: &RddSystem,
    coarse: Option<&CoarseSolver>,
    scaled_rhs: &[Vec<f64>],
    a: &CsrMatrix,
    cfg: &SolverConfig,
) -> Result<(Vec<Vec<f64>>, Vec<ConvergenceHistory>), SolveError> {
    if let Some(t) = comm.tracer() {
        t.span_begin("precond-build", comm.virtual_time());
    }
    // Concrete `SpecPrecond`, so the local system can be mutated between
    // solves (a boxed trait object would pin the operator's lifetime).
    let pc = cfg
        .precond
        .instantiate_full(coarse.cloned(), Some(&template.a_loc), || {
            template.rows.iter().map(|&d| a.get(d, d)).collect()
        });
    if let Some(t) = comm.tracer() {
        t.span_end("precond-build", comm.virtual_time());
    }
    let mut sys = template.clone();
    let x0 = vec![0.0; template.n_local()];
    let mut ws = KrylovWorkspace::new();
    let mut solutions = Vec::with_capacity(scaled_rhs.len());
    let mut histories = Vec::with_capacity(scaled_rhs.len());
    for g in scaled_rhs {
        sys.b_loc = sys.rows.iter().map(|&d| g[d]).collect();
        let res = rdd_fgmres_metered(comm, &sys, &pc, &x0, &cfg.gmres, &mut ws, &cfg.metrics)?;
        solutions.push(res.x);
        histories.push(res.history);
    }
    Ok((solutions, histories))
}
