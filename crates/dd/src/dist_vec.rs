//! Distributed vector formats (paper Definitions 1–2) and the interface sum.
//!
//! A subdomain's slice of a global vector comes in two flavours:
//!
//! - **local distributed** `û⁽ˢ⁾`: only this subdomain's own contributions —
//!   summing `Bₛᵀ û⁽ˢ⁾` over subdomains reconstructs the global vector;
//! - **global distributed** `ū⁽ˢ⁾ = Bₛ u`: the full global values at the
//!   local DOFs — interface entries are *identical* across sharing
//!   subdomains.
//!
//! Conversion local → global is the nearest-neighbour sum
//! `ū⁽ˢ⁾ = ⊕Σ_{∂Ωₛ} û⁽ˢ⁾` (Eq. 28): each pair of neighbouring subdomains
//! swaps its interface contributions and adds what it receives. Conversion
//! global → local divides interface entries by their multiplicity (any
//! splitting works; the uniform one keeps symmetry).

use parfem_fem::subdomain::SubdomainSystem;
use parfem_msg::Communicator;

/// Interface layout of one subdomain: everything needed to run `⊕Σ_{∂Ω}`
/// and deduplicated inner products.
#[derive(Debug, Clone)]
pub struct EddLayout {
    /// Per neighbour: `(rank, shared local DOF indices)` in the canonical
    /// pairing order.
    pub neighbors: Vec<(usize, Vec<usize>)>,
    /// `1 / multiplicity` per local DOF.
    pub inv_multiplicity: Vec<f64>,
    /// Local DOFs shared with at least one neighbour (multiplicity > 1),
    /// ascending. These are the rows a split matvec must compute *before*
    /// posting its interface messages.
    interface_rows: Vec<usize>,
    /// Local DOFs owned exclusively by this subdomain, ascending — the rows
    /// a split matvec computes while interface messages are in flight.
    interior_rows: Vec<usize>,
    /// Whether operators over this layout should overlap communication with
    /// computation (split matvec through the nonblocking exchange).
    overlap: bool,
}

/// Persistent send/receive buffers for
/// [`EddLayout::interface_sum_buffered`].
///
/// The interface sum runs once per matrix–vector product — `degree + 1`
/// times per FGMRES iteration under a polynomial preconditioner — so its
/// per-call send/receive allocations dominate the solver's allocation
/// traffic. Keeping one `ExchangeBuffers` next to the operator reduces
/// that to zero after the first exchange: buffer capacities are retained
/// across rounds.
#[derive(Debug, Clone, Default)]
pub struct ExchangeBuffers {
    /// Neighbour ranks in pairing order (mirrors the layout).
    ranks: Vec<usize>,
    /// Outgoing interface values, one buffer per neighbour.
    send: Vec<Vec<f64>>,
    /// Incoming interface values, one buffer per neighbour.
    recv: Vec<Vec<f64>>,
}

impl ExchangeBuffers {
    /// Empty buffers; sized lazily by the first buffered exchange.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the per-neighbour buffers for `layout` (idempotent; only the
    /// first call after a layout change allocates).
    fn ensure(&mut self, layout: &EddLayout) {
        if self.ranks.len() != layout.neighbors.len()
            || self
                .ranks
                .iter()
                .zip(&layout.neighbors)
                .any(|(&r, (nr, _))| r != *nr)
        {
            self.ranks.clear();
            self.ranks.extend(layout.neighbors.iter().map(|(r, _)| *r));
            self.send.resize(layout.neighbors.len(), Vec::new());
            self.recv.resize(layout.neighbors.len(), Vec::new());
        }
    }
}

impl EddLayout {
    /// Extracts the layout from an assembled subdomain system.
    pub fn from_system(sys: &SubdomainSystem) -> Self {
        let inv_multiplicity: Vec<f64> = sys.multiplicity.iter().map(|&m| 1.0 / m).collect();
        let (interface_rows, interior_rows) =
            (0..inv_multiplicity.len()).partition(|&l| inv_multiplicity[l] < 1.0);
        EddLayout {
            neighbors: sys
                .neighbors
                .iter()
                .map(|l| (l.rank, l.shared_local_dofs.clone()))
                .collect(),
            inv_multiplicity,
            interface_rows,
            interior_rows,
            overlap: false,
        }
    }

    /// Number of local DOFs.
    pub fn n_local(&self) -> usize {
        self.inv_multiplicity.len()
    }

    /// Local DOFs shared with a neighbour (ascending).
    pub fn interface_rows(&self) -> &[usize] {
        &self.interface_rows
    }

    /// Local DOFs private to this subdomain (ascending).
    pub fn interior_rows(&self) -> &[usize] {
        &self.interior_rows
    }

    /// Enables (or disables) the overlapped, split matvec for operators
    /// built over this layout. Off by default; results are bit-identical
    /// either way — only the modeled communication/computation schedule
    /// changes.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Whether operators over this layout should overlap communication
    /// with computation.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// The nearest-neighbour interface sum `v ← ⊕Σ_{∂Ω} v` (Eq. 28) through
    /// persistent [`ExchangeBuffers`]: converts a local distributed vector
    /// into the global distributed format in place, one exchange round with
    /// every neighbour. The send/receive staging reuses the caller's
    /// buffers, so repeated calls allocate nothing; one-shot setup code
    /// just passes a fresh [`ExchangeBuffers::new`].
    ///
    /// # Panics
    /// Panics if `v` has the wrong length.
    pub fn interface_sum_buffered<C: Communicator>(
        &self,
        comm: &C,
        v: &mut [f64],
        bufs: &mut ExchangeBuffers,
    ) {
        assert_eq!(v.len(), self.n_local(), "interface_sum: length mismatch");
        if self.neighbors.is_empty() {
            comm.count_neighbor_exchange();
            return;
        }
        bufs.ensure(self);
        for ((_, dofs), out) in self.neighbors.iter().zip(bufs.send.iter_mut()) {
            out.clear();
            out.extend(dofs.iter().map(|&l| v[l]));
        }
        comm.exchange_into(&bufs.ranks, &bufs.send, &mut bufs.recv);
        for ((_, dofs), buf) in self.neighbors.iter().zip(&bufs.recv) {
            for (&l, &x) in dofs.iter().zip(buf) {
                v[l] += x;
            }
        }
        // 1 add per received interface value.
        let recv_total: usize = bufs.recv.iter().map(|b| b.len()).sum();
        comm.work(recv_total as u64);
    }

    /// The interface sum split around a nonblocking exchange: `v`'s
    /// interface entries (which must already be computed) are posted to the
    /// neighbours via [`Communicator::start_exchange`], `interior(v)` runs
    /// while the messages fly, and the received contributions are added
    /// after [`Communicator::finish_exchange`] — in the same neighbour
    /// order as the blocking form, so the result is **bit-identical** to
    /// running `interior(v)` first and then
    /// [`EddLayout::interface_sum_buffered`]. Only the virtual-time
    /// schedule changes: the communication is credited as
    /// `max(interior compute, message flight)` instead of their sum.
    ///
    /// Counts as one neighbour-exchange round, like the blocking forms.
    ///
    /// # Panics
    /// Panics if `v` has the wrong length.
    pub fn interface_sum_split<C: Communicator>(
        &self,
        comm: &C,
        v: &mut [f64],
        bufs: &mut ExchangeBuffers,
        interior: impl FnOnce(&mut [f64]),
    ) {
        assert_eq!(v.len(), self.n_local(), "interface_sum: length mismatch");
        if self.neighbors.is_empty() {
            comm.count_neighbor_exchange();
            interior(v);
            return;
        }
        bufs.ensure(self);
        for ((_, dofs), out) in self.neighbors.iter().zip(bufs.send.iter_mut()) {
            out.clear();
            out.extend(dofs.iter().map(|&l| v[l]));
        }
        let handle = comm.start_exchange(&bufs.ranks, &bufs.send);
        interior(v);
        comm.finish_exchange(handle, &bufs.ranks, &mut bufs.recv);
        for ((_, dofs), buf) in self.neighbors.iter().zip(&bufs.recv) {
            for (&l, &x) in dofs.iter().zip(buf) {
                v[l] += x;
            }
        }
        let recv_total: usize = bufs.recv.iter().map(|b| b.len()).sum();
        comm.work(recv_total as u64);
    }

    /// Converts a global distributed vector to local distributed in place by
    /// multiplicity weighting (`Σ Bᵀ` of the result reproduces the global
    /// vector). No communication.
    pub fn to_local_distributed(&self, v: &mut [f64]) {
        for (vi, w) in v.iter_mut().zip(&self.inv_multiplicity) {
            *vi *= w;
        }
    }

    /// Local partial of the deduplicated inner product of two *global
    /// distributed* vectors: `Σ_l x_l y_l / mult_l`. Summed across ranks
    /// (all-reduce) this equals the true global `⟨x, y⟩` (Eq. 33–35).
    pub fn dot_partial(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_local(), "dot_partial: x length mismatch");
        assert_eq!(y.len(), self.n_local(), "dot_partial: y length mismatch");
        x.iter()
            .zip(y)
            .zip(&self.inv_multiplicity)
            .map(|((a, b), w)| a * b * w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_fem::{assembly, Material, SubdomainSystem};
    use parfem_mesh::{DofMap, Edge, ElementPartition, QuadMesh};
    use parfem_msg::{run_ranks, MachineModel};

    fn systems(nx: usize, ny: usize, p: usize) -> (Vec<SubdomainSystem>, usize) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
        let part = ElementPartition::strips_x(&mesh, p);
        let systems: Vec<SubdomainSystem> = part
            .subdomains(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        (systems, dm.n_dofs())
    }

    #[test]
    fn interface_sum_reproduces_global_gather() {
        // For a global vector u, restrict to local, weight to local
        // distributed, interface-sum -> must reproduce the restriction
        // (global distributed) exactly.
        let (systems, n) = systems(6, 2, 3);
        let u: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let out = run_ranks(3, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let mut v = sys.restrict(&u);
            layout.to_local_distributed(&mut v);
            let mut bufs = ExchangeBuffers::new();
            layout.interface_sum_buffered(comm, &mut v, &mut bufs);
            // Compare against the plain restriction.
            let want = sys.restrict(&u);
            v.iter()
                .zip(&want)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max)
        });
        for err in out.results {
            assert!(err < 1e-12, "max deviation {err}");
        }
    }

    #[test]
    fn dot_partial_sums_to_true_inner_product() {
        let (systems, n) = systems(8, 2, 4);
        let x: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) + 0.5).collect();
        let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let out = run_ranks(4, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let xl = sys.restrict(&x);
            let yl = sys.restrict(&y);
            comm.allreduce_sum_scalar(layout.dot_partial(&xl, &yl))
        });
        for got in out.results {
            assert!((got - want).abs() < 1e-10 * want.abs().max(1.0));
        }
    }

    #[test]
    fn single_rank_interface_sum_is_identity() {
        let (systems, n) = systems(3, 2, 1);
        let u: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = run_ranks(1, MachineModel::ideal(), |comm| {
            let sys = &systems[0];
            let layout = EddLayout::from_system(sys);
            let mut v = sys.restrict(&u);
            let mut bufs = ExchangeBuffers::new();
            layout.interface_sum_buffered(comm, &mut v, &mut bufs);
            v
        });
        assert_eq!(out.results[0], u);
        // The exchange is still *counted* (it is a communication point in
        // the algorithm), even though a lone rank sends nothing.
        assert_eq!(out.reports[0].stats.neighbor_exchanges, 1);
        assert_eq!(out.reports[0].stats.sends, 0);
    }

    #[test]
    fn interface_and_interior_rows_partition_the_local_dofs() {
        let (systems, _) = systems(6, 2, 3);
        for sys in &systems {
            let layout = EddLayout::from_system(sys);
            let mut all: Vec<usize> = layout
                .interface_rows()
                .iter()
                .chain(layout.interior_rows())
                .copied()
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..layout.n_local()).collect::<Vec<_>>());
            // Interface rows are exactly the shared (multiplicity > 1) DOFs,
            // which is the union of the neighbour send lists.
            for (_, dofs) in &layout.neighbors {
                for d in dofs {
                    assert!(layout.interface_rows().binary_search(d).is_ok());
                }
            }
            for &l in layout.interface_rows() {
                assert!(layout.inv_multiplicity[l] < 1.0);
            }
        }
    }

    #[test]
    fn split_interface_sum_is_bit_identical_to_blocking() {
        let (systems, n) = systems(8, 3, 4);
        let u: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let out = run_ranks(4, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let mut bufs = ExchangeBuffers::new();
            // Blocking: interior written first, then the plain sum.
            let mut blocking = sys.restrict(&u);
            layout.to_local_distributed(&mut blocking);
            for &l in layout.interior_rows() {
                blocking[l] *= 2.0;
            }
            layout.interface_sum_buffered(comm, &mut blocking, &mut bufs);
            // Split: interface entries ready up front, interior written
            // while the messages are in flight.
            let mut split = sys.restrict(&u);
            layout.to_local_distributed(&mut split);
            layout.interface_sum_split(comm, &mut split, &mut bufs, |v| {
                for &l in layout.interior_rows() {
                    v[l] *= 2.0;
                }
            });
            (blocking, split, comm.stats().neighbor_exchanges)
        });
        for (blocking, split, exchanges) in out.results {
            assert_eq!(blocking, split, "split sum must be bit-identical");
            assert_eq!(exchanges, 2, "each form counts one exchange round");
        }
    }

    #[test]
    fn matvec_identity_under_interface_sum() {
        // y_global = K x == gathers of (local spmv + interface sum).
        let mesh = QuadMesh::cantilever(6, 2);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let sys_global = assembly::build_static(&mesh, &dm, &mat, &loads);
        let part = ElementPartition::strips_x(&mesh, 3);
        let systems: Vec<SubdomainSystem> = part
            .subdomains(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        let x: Vec<f64> = (0..dm.n_dofs())
            .map(|i| ((i * 3 % 11) as f64) - 5.0)
            .collect();
        let y_want = sys_global.stiffness.spmv(&x);
        let out = run_ranks(3, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let xl = sys.restrict(&x);
            let mut yl = sys.k_local.spmv(&xl);
            let mut bufs = ExchangeBuffers::new();
            layout.interface_sum_buffered(comm, &mut yl, &mut bufs);
            // Compare with the restriction of the global product.
            let want = sys.restrict(&y_want);
            yl.iter()
                .zip(&want)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max)
        });
        for err in out.results {
            assert!(err < 1e-9, "max deviation {err}");
        }
    }
}
