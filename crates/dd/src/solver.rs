//! The unified distributed FGMRES core.
//!
//! The paper's Algorithms 5/6 (element-based) and 8 (row-based) share one
//! Krylov skeleton: restarted flexible GMRES with batched classical
//! Gram–Schmidt (one all-reduce per iteration), a guarded Pythagorean
//! norm recompute, and Givens-rotation least squares. What differs between
//! the decompositions is *only* how the distributed pieces are realised —
//! the matvec's interface completion, the local partial of a deduplicated
//! inner product, the residual, and the flop accounting of a dot. The
//! [`DistributedOperator`] trait captures exactly those hooks, and
//! [`dd_fgmres`] runs the shared loop over any implementor; `edd_fgmres`
//! and `rdd_fgmres` are thin wrappers that construct their operator and
//! delegate here.
//!
//! The layering (bottom-up) is
//! `Communicator → DistributedOperator → dd_fgmres → drivers`:
//! the communicator moves bytes and accounts virtual time, the operator
//! turns them into a distributed matrix action and inner products, this
//! module turns the operator into a solver, and the drivers in
//! [`crate::driver`] wire meshes and preconditioners to it.
//!
//! Every floating-point operation in this loop preserves the exact
//! evaluation order of the two solvers it replaced, per operator — the
//! golden tests in `crates/dd/tests/golden.rs` pin the pre-refactor
//! iterates bit for bit.

use crate::error::SolveError;
use parfem_krylov::givens::Givens;
use parfem_krylov::gmres::GmresConfig;
use parfem_krylov::history::{ConvergenceHistory, StopReason};
use parfem_krylov::KrylovWorkspace;
use parfem_msg::Communicator;
use parfem_precond::Preconditioner;
use parfem_sparse::LinearOperator;
use parfem_trace::{EventKind, MetricsRegistry, Value};

/// The hooks a domain decomposition must provide to run under
/// [`dd_fgmres`].
///
/// Implementors are [`LinearOperator`]s whose `apply_into` performs the
/// full distributed matvec (local SpMV plus interface completion — the
/// EDD `⊕Σ` sum or the RDD halo gather), so polynomial preconditioners run
/// on them unchanged. The remaining methods expose the decomposition's
/// inner-product semantics and residual; their default-free design keeps
/// the two implementations' floating-point sequences exactly as they were
/// before unification (EDD dots are multiplicity-weighted at 3 flops per
/// element, RDD dots are plain at 2 — and the Gram–Schmidt sweep kernels
/// differ per operator on purpose).
pub trait DistributedOperator: LinearOperator {
    /// The communicator endpoint type this operator runs over.
    type Comm: Communicator;

    /// This rank's communicator endpoint.
    fn comm(&self) -> &Self::Comm;

    /// `r ← restriction of (b − A x)` in the operator's vector format,
    /// including the interface completion and its work accounting. The
    /// right-hand side is owned by the operator (supplied at construction).
    fn residual_into(&self, x: &[f64], r: &mut [f64]);

    /// Local partial of the deduplicated global inner product `⟨x, y⟩`;
    /// summing the partials across ranks (one all-reduce) yields the true
    /// global product.
    fn dot_partial(&self, x: &[f64], y: &[f64]) -> f64;

    /// Flops charged per vector element of one local dot partial: 3 for
    /// the multiplicity-weighted EDD form (`x·y·w`), 2 for the plain RDD
    /// form.
    fn dot_flops_factor(&self) -> u64;

    /// Fills `reduce[0..=basis.len()]` with the batched Gram–Schmidt
    /// partials: `reduce[i] = ⟨w, basis[i]⟩_partial` and
    /// `reduce[basis.len()] = ⟨w, w⟩_partial`. Kept per-operator because
    /// the two solvers historically used different (bit-compatible only
    /// with themselves) sweep kernels.
    fn gs_dots(&self, w: &[f64], basis: &[Vec<f64>], reduce: &mut [f64]);

    /// Live metrics surface for this operator's solves
    /// ([`MetricsRegistry::disabled`] unless the implementor carries one).
    /// [`dd_fgmres`] records its per-iteration and per-solve aggregates
    /// through it **on rank 0 only**, so fleet-wide totals are not
    /// multiplied by the rank count.
    fn metrics(&self) -> &MetricsRegistry {
        static DISABLED: MetricsRegistry = MetricsRegistry::disabled();
        &DISABLED
    }

    /// Produces the flexible vector `z_j` from the basis vector `v_j`
    /// through `precond`. The default is a plain scratch-buffered
    /// application; EDD's basic variant (Algorithm 5) overrides it to wrap
    /// the application in its local-distributed round trips, using `w_tmp`
    /// (free at this point of the iteration) as staging.
    fn apply_precond<P>(
        &self,
        precond: &P,
        v_j: &[f64],
        z_j: &mut [f64],
        scratch: &mut [Vec<f64>],
        w_tmp: &mut [f64],
    ) where
        P: Preconditioner<Self> + ?Sized,
        Self: Sized,
    {
        let _ = w_tmp;
        precond.apply_scratch(self, v_j, z_j, scratch);
    }
}

/// Result of a distributed FGMRES solve on one rank.
#[derive(Debug, Clone)]
pub struct DdResult {
    /// The solution over this rank's DOFs, in the operator's vector format
    /// (global distributed for EDD, owned rows for RDD).
    pub x: Vec<f64>,
    /// Convergence history (identical on every rank).
    pub history: ConvergenceHistory,
}

/// Restarted flexible GMRES over any [`DistributedOperator`] — the single
/// solver loop behind `edd_fgmres` and `rdd_fgmres`.
///
/// Once the workspace (and the operator's exchange staging) are warm,
/// restarts and iterations perform no heap allocation on this rank, and
/// solves that reuse a workspace are bit-identical to solves on a fresh
/// one.
///
/// # Errors
/// [`SolveError::Comm`] when the communication substrate degrades: the
/// direct reductions are fallible, and the rank's latched error state
/// ([`Communicator::status`]) is checked after every distributed
/// matvec/preconditioner application, so an error inside an infallible
/// exchange surfaces within the same iteration instead of corrupting the
/// solve silently.
///
/// # Panics
/// Panics on dimension mismatches or a non-positive restart length.
pub fn dd_fgmres<Op, P>(
    op: &Op,
    precond: &P,
    x0: &[f64],
    cfg: &GmresConfig,
    ws: &mut KrylovWorkspace,
) -> Result<DdResult, SolveError>
where
    Op: DistributedOperator,
    P: Preconditioner<Op> + ?Sized,
{
    let n = op.dim();
    assert_eq!(x0.len(), n, "dd_fgmres: x0 length mismatch");
    assert!(cfg.restart > 0, "dd_fgmres: restart must be positive");
    let m = cfg.restart;
    let comm = op.comm();
    let dot_f = op.dot_flops_factor();
    ws.ensure(n, m, precond.scratch_vectors());

    // Convergence is identical on every rank, so live aggregates are
    // recorded on rank 0 only — other ranks get no-op handles.
    let metrics = if comm.rank() == 0 {
        op.metrics().clone()
    } else {
        MetricsRegistry::disabled()
    };
    let m_iters = metrics.counter("parfem_solver_iterations_total");
    let m_precond = metrics.counter("parfem_solver_precond_applies_total");

    let mut x = x0.to_vec();
    // Reserve to the workspace's history high-water mark, not to
    // `max_iters`: a `max_iters`-scaled reservation reads as per-iteration
    // bytes to the alloc gate, while the warm-workspace hint makes repeat
    // solves push into an exactly-sized Vec with zero growth.
    let mut residuals = Vec::with_capacity(ws.history_hint);
    let mut restarts = 0usize;
    let mut total_iters = 0usize;

    let global_norm = |v: &[f64]| -> Result<f64, SolveError> {
        comm.work(dot_f * n as u64);
        Ok(comm.try_allreduce_sum_scalar(op.dot_partial(v, v))?.sqrt())
    };

    op.residual_into(&x, &mut ws.r);
    comm.status()?;
    let r0_norm = global_norm(&ws.r)?;
    residuals.push(1.0);
    if r0_norm == 0.0 {
        let history = ConvergenceHistory {
            relative_residuals: residuals,
            stop: StopReason::Converged,
            restarts: 0,
        };
        ws.history_hint = ws.history_hint.max(history.relative_residuals.len());
        record_solve_end(&metrics, &history);
        return Ok(DdResult { x, history });
    }
    let breakdown_tol = 1e-14 * r0_norm;

    loop {
        let beta = global_norm(&ws.r)?;
        if beta / r0_norm <= cfg.tol {
            let history = ConvergenceHistory {
                relative_residuals: residuals,
                stop: StopReason::Converged,
                restarts,
            };
            ws.history_hint = ws.history_hint.max(history.relative_residuals.len());
            record_solve_end(&metrics, &history);
            return Ok(DdResult { x, history });
        }

        ws.rotations.clear();
        ws.g.fill(0.0);
        ws.g[0] = beta;
        ws.v[0].copy_from_slice(&ws.r);
        for vi in &mut ws.v[0] {
            *vi /= beta;
        }
        comm.work(n as u64);

        let mut j_done = 0usize;
        let mut stop: Option<StopReason> = None;

        for j in 0..m {
            if total_iters >= cfg.max_iters {
                stop = Some(StopReason::MaxIterations);
                break;
            }
            total_iters += 1;
            m_iters.incr();
            let iter_start_stats = comm.stats();
            let degree = precond.current_operator_applications();

            // Flexible preconditioning (polynomial preconditioners run
            // Algorithm 7 inside the operator: one exchange per internal
            // matvec).
            if let Some(tracer) = comm.tracer() {
                tracer.add_count("precond_applies", 1);
            }
            m_precond.incr();
            op.apply_precond(
                precond,
                &ws.v[j],
                &mut ws.z[j],
                &mut ws.precond_scratch,
                &mut ws.w,
            );

            // Matrix-vector product (the one exchange Algorithm 6 keeps).
            op.apply_into(&ws.z[j], &mut ws.w);

            // The preconditioner and matvec run over infallible (latching)
            // exchanges; surface anything they latched before their output
            // contaminates the Krylov basis.
            comm.status()?;

            // Batched classical Gram-Schmidt reductions: all projections
            // plus ||w||^2 in ONE all-reduce, batched into `ws.reduce`.
            op.gs_dots(&ws.w, &ws.v[..(j + 1)], &mut ws.reduce);
            comm.work(dot_f * (n * (j + 2)) as u64);
            comm.try_allreduce_sum_into(&mut ws.reduce[..(j + 2)])?;

            let hcol = &mut ws.h[j];
            hcol[..(j + 1)].copy_from_slice(&ws.reduce[..(j + 1)]);
            let ww = ws.reduce[j + 1];
            parfem_sparse::kernels::axpy_sweep_neg(&hcol[..(j + 1)], &ws.v[..(j + 1)], &mut ws.w);
            comm.work((2 * n * (j + 1)) as u64);

            // Post-orthogonalization norm by the Pythagorean identity, with
            // a guarded recomputation (one extra reduction) whenever the
            // subtraction cancels more than two digits — without the guard
            // the Hessenberg entry loses accuracy near convergence and the
            // iteration stalls past the sequential count.
            let h_sq: f64 = hcol[..(j + 1)].iter().map(|h| h * h).sum();
            let mut hh = ww - h_sq;
            if hh < 1e-2 * ww.max(1e-300) {
                hh = comm
                    .try_allreduce_sum_scalar(op.dot_partial(&ws.w, &ws.w))?
                    .max(0.0);
                comm.work(dot_f * n as u64);
            }
            let h_next = hh.max(0.0).sqrt();
            hcol[j + 1] = h_next;

            for (i, rot) in ws.rotations.iter().enumerate() {
                let (a, b2) = rot.apply(hcol[i], hcol[i + 1]);
                hcol[i] = a;
                hcol[i + 1] = b2;
            }
            let (rot, rr) = Givens::compute(hcol[j], hcol[j + 1]);
            hcol[j] = rr;
            hcol[j + 1] = 0.0;
            let (g0, g1) = rot.apply(ws.g[j], ws.g[j + 1]);
            ws.g[j] = g0;
            ws.g[j + 1] = g1;
            ws.rotations.push(rot);
            j_done = j + 1;

            let rel = ws.g[j + 1].abs() / r0_norm;
            residuals.push(rel);

            if let Some(tracer) = comm.tracer() {
                let st = comm.stats();
                tracer.emit(
                    EventKind::Iter,
                    "",
                    comm.virtual_time(),
                    vec![
                        ("iter".to_string(), Value::U64(total_iters as u64)),
                        ("rel_res".to_string(), Value::F64(rel)),
                        ("restart_index".to_string(), Value::U64((j + 1) as u64)),
                        ("cycle".to_string(), Value::U64(restarts as u64)),
                        ("degree".to_string(), Value::U64(degree as u64)),
                        (
                            "exchanges".to_string(),
                            Value::U64(st.neighbor_exchanges - iter_start_stats.neighbor_exchanges),
                        ),
                        (
                            "allreduces".to_string(),
                            Value::U64(st.allreduces - iter_start_stats.allreduces),
                        ),
                    ],
                );
            }

            if rel <= cfg.tol {
                stop = Some(StopReason::Converged);
                break;
            }
            if h_next <= breakdown_tol {
                stop = Some(StopReason::Breakdown);
                break;
            }
            ws.v[j + 1].copy_from_slice(&ws.w);
            for t in &mut ws.v[j + 1] {
                *t /= h_next;
            }
            comm.work(n as u64);
        }

        if j_done > 0 {
            for i in (0..j_done).rev() {
                let mut acc = ws.g[i];
                for k in (i + 1)..j_done {
                    acc -= ws.h[k][i] * ws.y[k];
                }
                ws.y[i] = acc / ws.h[i][i];
            }
            for k in 0..j_done {
                let yk = ws.y[k];
                for (xi, zi) in x.iter_mut().zip(&ws.z[k]) {
                    *xi += yk * zi;
                }
            }
            comm.work((2 * n * j_done) as u64);
        }

        match stop {
            Some(reason) => {
                let history = ConvergenceHistory {
                    relative_residuals: residuals,
                    stop: reason,
                    restarts,
                };
                ws.history_hint = ws.history_hint.max(history.relative_residuals.len());
                record_solve_end(&metrics, &history);
                return Ok(DdResult { x, history });
            }
            None => {
                restarts += 1;
                op.residual_into(&x, &mut ws.r);
                comm.status()?;
            }
        }
    }
}

/// Rolls one finished solve into the live metrics surface (no-op when the
/// registry is disabled).
fn record_solve_end(metrics: &MetricsRegistry, history: &ConvergenceHistory) {
    if !metrics.is_enabled() {
        return;
    }
    metrics.counter("parfem_solver_solves_total").incr();
    metrics
        .counter("parfem_solver_restarts_total")
        .add(history.restarts as u64);
    if history.converged() {
        metrics.counter("parfem_solver_converged_total").incr();
    }
    metrics.gauge("parfem_solver_last_rel_res").set(
        history
            .relative_residuals
            .last()
            .copied()
            .unwrap_or(f64::NAN),
    );
    metrics
        .histogram("parfem_solver_iterations")
        .observe(history.iterations() as u64);
}
