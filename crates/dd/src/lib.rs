//! Domain-decomposition solvers — the paper's primary contribution.
//!
//! - [`dist_vec`] — the local/global distributed vector formats of the
//!   paper's Definitions 1–2 and the nearest-neighbour interface sum
//!   `⊕Σ_{∂Ω}` (Eq. 28),
//! - [`scaling`] — distributed norm-1 diagonal scaling (Algorithms 3–4),
//! - [`edd`] — the element-based distributed operator and the EDD flexible
//!   GMRES, in both the basic (Algorithm 5, three interface exchanges per
//!   Arnoldi step) and enhanced (Algorithm 6, one exchange) variants,
//! - [`rdd`] — the row-based (block-row) distributed operator and FGMRES
//!   (Algorithm 8), the PSPARSLIB/Aztec-style baseline,
//! - [`coarse`] — two-level coarse-space construction over both
//!   partitions: per-part geometry extraction, host-side Galerkin
//!   assembly, and the per-rank restriction of the coarse basis,
//! - [`solver`] — the unified distributed FGMRES core: one restarted
//!   flexible GMRES loop over the [`solver::DistributedOperator`] trait
//!   that both [`edd`] and [`rdd`] implement,
//! - [`session`] — the composable [`SolveSession`] builder: strategy,
//!   preconditioner, machine model, overlap, faults, tracing and
//!   single-/multi-RHS/transient runs as orthogonal options,
//! - [`driver`] — the frozen legacy entry points, now thin `#[deprecated]`
//!   shims over [`SolveSession`].

#![deny(missing_docs)]
#![warn(clippy::all)]
// Indexed `for r in 0..n` loops are the idiomatic form for the sparse/FEM
// kernels in this workspace (the index feeds several arrays and the CSR
// row spans at once); the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod coarse;
pub mod dist_vec;
pub mod driver;
pub mod dynamic;
pub mod edd;
pub mod error;
pub mod rdd;
pub mod scaling;
pub mod session;
pub mod solver;

pub use coarse::{
    edd_coarse_basis, edd_coarse_solvers, edd_part_geometry, edd_scaled_matrix, rdd_coarse_basis,
    rdd_coarse_solvers,
};
pub use dist_vec::{EddLayout, ExchangeBuffers};
#[allow(deprecated)] // the frozen legacy entry points stay importable
pub use driver::{
    solve_edd, solve_edd_systems, solve_edd_systems_traced, solve_edd_traced, solve_rdd,
    solve_rdd_traced, try_solve_edd_systems_traced, try_solve_edd_traced, try_solve_rdd_traced,
};
#[allow(deprecated)] // the frozen legacy entry point stays importable
pub use dynamic::solve_dynamic_edd;
pub use dynamic::{DynamicRunConfig, DynamicRunOutput};
pub use edd::{edd_fgmres, edd_fgmres_with, edd_lambda_max, EddOperator, EddVariant};
pub use error::SolveError;
pub use parfem_sparse::KernelPolicy;
pub use rdd::{rdd_fgmres, rdd_fgmres_with, RddLocalIlu, RddOperator, RddSystem};
pub use session::{
    DdSolveOutput, MultiSolveOutput, PrecondSpec, Problem, ProblemMesh, SolveFailures,
    SolveSession, SolverConfig, Strategy,
};
pub use solver::{dd_fgmres, DdResult, DistributedOperator};

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared helpers for the crate's tests.
    use parfem_krylov::gmres::{fgmres, GmresConfig};
    use parfem_krylov::ConvergenceHistory;
    use parfem_precond::GlsPrecond;
    use parfem_sparse::{scaling::scale_system, CsrMatrix};

    /// Accurate sequential reference solve: norm-1 scaling + GLS(7) FGMRES
    /// at tight tolerance.
    pub fn seq_solve(a: &CsrMatrix, b: &[f64]) -> (Vec<f64>, ConvergenceHistory) {
        let (scaled, rhs, sc) = scale_system(a, b).expect("square system");
        let cfg = GmresConfig {
            tol: 1e-11,
            max_iters: 100_000,
            ..Default::default()
        };
        let res = fgmres(
            &scaled,
            &GlsPrecond::for_scaled_system(7),
            &rhs,
            &vec![0.0; scaled.n_rows()],
            &cfg,
        );
        (sc.unscale_solution(&res.x), res.history)
    }
}
