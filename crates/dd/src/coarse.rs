//! Two-level coarse-space construction for the distributed solvers.
//!
//! The generic machinery — mode construction, Galerkin assembly, the
//! skyline-factored coarse solve — lives in [`parfem_precond::twolevel`];
//! this module supplies the *domain-decomposition* half:
//!
//! - extracting per-part [`CoarsePartGeometry`] from EDD subdomain systems
//!   (element partition, shared interface dofs, multiplicity weights) and
//!   from RDD node partitions (disjoint block rows),
//! - assembling the **global scaled operator** `A = D K D` on the host —
//!   the Galerkin product `Ẑᵀ A Ẑ` must be built from the fully assembled
//!   matrix so every rank factors the identical coarse operator,
//! - restricting the global coarse basis to per-rank [`CoarseSolver`]s
//!   whose restriction lists carry the partition-of-unity weights
//!   (`1/mult` in EDD, where interface entries are replicated; unit in
//!   RDD, where rows are disjoint),
//! - implementing [`CoarseReduce`] for [`EddOperator`] / [`RddOperator`]
//!   so the coarse residual sum runs through the deterministic
//!   [`Communicator::allreduce_sum_into`] (fault-latched like every other
//!   collective).
//!
//! Everything here is deterministic: geometry follows the systems' own
//! dof ordering, the Galerkin operator is assembled sequentially on the
//! host, and each rank's entry lists are sorted by [`CoarseSolver::new`].

use crate::edd::EddOperator;
use crate::rdd::{RddOperator, RddSystem};
use crate::scaling::edd_scaling_reference;
use parfem_fem::SubdomainSystem;
use parfem_mesh::{DofMap, NodePartition};
use parfem_msg::Communicator;
use parfem_precond::twolevel::{
    build_coarse_basis, CoarseBasis, CoarsePartGeometry, CoarseReduce, CoarseSolver, CoarseSpec,
};
use parfem_sparse::{CooMatrix, CsrMatrix};
use std::collections::HashMap;
use std::sync::Arc;

impl<'a, C: Communicator> CoarseReduce for EddOperator<'a, C> {
    fn coarse_reduce(&self, buf: &mut [f64]) {
        self.comm.allreduce_sum_into(buf);
    }

    fn coarse_work(&self, flops: u64) {
        self.comm.work(flops);
    }
}

impl<'a, C: Communicator> CoarseReduce for RddOperator<'a, C> {
    fn coarse_reduce(&self, buf: &mut [f64]) {
        self.comm.allreduce_sum_into(buf);
    }

    fn coarse_work(&self, flops: u64) {
        self.comm.work(flops);
    }
}

/// Assembles the global scaled operator `A = D K D` from EDD subdomain
/// systems, together with the scaling diagonal `d`. Identical (bit for
/// bit) to scaling the globally assembled stiffness: the norm-1 row sums
/// distribute over the element partition, and the coordinate accumulator
/// sums duplicate interface entries on conversion.
pub fn edd_scaled_matrix(systems: &[SubdomainSystem], n_dofs: usize) -> (CsrMatrix, Vec<f64>) {
    let d = edd_scaling_reference(systems, n_dofs).diagonal().to_vec();
    let mut coo = CooMatrix::new(n_dofs, n_dofs);
    for sys in systems {
        let k = &sys.k_local;
        for l1 in 0..k.n_rows() {
            let g1 = sys.global_dofs[l1];
            let (cols, vals) = k.row(l1);
            for (&l2, &v) in cols.iter().zip(vals) {
                let g2 = sys.global_dofs[l2];
                coo.push(g1, g2, d[g1] * v * d[g2])
                    .expect("subdomain dof within global range");
            }
        }
    }
    (coo.to_csr(), d)
}

/// Per-part coarse geometry of an EDD element partition: one part per
/// subdomain system, dofs in the system's own local order.
///
/// Constrained dofs are detected structurally: `build_from_elements`
/// stores a Dirichlet row as a single diagonal entry, so a row whose only
/// entry is its own diagonal carries no stiffness coupling and is excluded
/// from the coarse modes. (A floating interior dof whose every in-part
/// neighbour is constrained matches too — harmless, it merely leaves that
/// dof to the smoother.)
///
/// `coords` are the mesh node positions (`z = 0` for 2-D meshes); pass
/// `None` for raw prebuilt systems, in which case positions are zero and
/// only geometry-free coarse spaces ([`CoarseSpec::Const`],
/// [`CoarseSpec::LowRank`]) remain valid. `dofs_per_node` is the physics'
/// DOF count per node (1 scalar, 2 plane elasticity, 3 solid) — it decodes
/// the interleaved global numbering `dof = dofs_per_node * node + comp`.
pub fn edd_part_geometry(
    systems: &[SubdomainSystem],
    coords: Option<&[[f64; 3]]>,
    dofs_per_node: usize,
) -> Vec<CoarsePartGeometry> {
    assert!(dofs_per_node > 0, "need at least one DOF per node");
    systems
        .iter()
        .map(|sys| {
            let n = sys.global_dofs.len();
            let mut geo = CoarsePartGeometry {
                dofs: sys.global_dofs.clone(),
                pos: Vec::with_capacity(n),
                comp: Vec::with_capacity(n),
                constrained: Vec::with_capacity(n),
            };
            for (l, &g) in sys.global_dofs.iter().enumerate() {
                geo.comp.push(g % dofs_per_node);
                geo.pos
                    .push(coords.map_or([0.0; 3], |c| c[g / dofs_per_node]));
                let (cols, _) = sys.k_local.row(l);
                geo.constrained.push(cols.len() == 1 && cols[0] == l);
            }
            geo
        })
        .collect()
}

/// Builds the global coarse basis for an EDD element partition: part
/// geometry from the systems, multiplicity from the systems' own weights,
/// and the Galerkin operator from the host-assembled scaled matrix.
///
/// # Panics
/// Panics when `spec` is [`CoarseSpec::Rbm`] (plain or smoothed) and
/// `coords` is `None`:
/// rigid-body modes need node positions, which prebuilt raw systems do not
/// carry — build the session from a mesh, or use `twolevel:const:*` /
/// `twolevel:lowrank-K:*`.
pub fn edd_coarse_basis(
    spec: &CoarseSpec,
    systems: &[SubdomainSystem],
    n_dofs: usize,
    coords: Option<&[[f64; 3]]>,
    dofs_per_node: usize,
    pivot_tol: f64,
) -> CoarseBasis {
    assert!(
        !(matches!(spec.base(), CoarseSpec::Rbm) && coords.is_none()),
        "rigid-body coarse modes need node coordinates; build the session from a mesh \
         or use twolevel:const / twolevel:lowrank-K"
    );
    let parts = edd_part_geometry(systems, coords, dofs_per_node);
    let mut mult = vec![1.0; n_dofs];
    for sys in systems {
        for (l, &g) in sys.global_dofs.iter().enumerate() {
            mult[g] = sys.multiplicity[l];
        }
    }
    let (a_scaled, d) = edd_scaled_matrix(systems, n_dofs);
    build_coarse_basis(spec, &parts, &mult, &d, &a_scaled, pivot_tol)
}

/// Restricts a global coarse basis to one per-rank [`CoarseSolver`] per
/// EDD subdomain.
///
/// Each rank's **prolongation** carries every basis entry living on one of
/// its local dofs — including entries of neighbouring parts' modes at
/// shared interface dofs, so interface corrections come out bit-identical
/// across the ranks sharing them. The **restriction** divides the same
/// entries by the dof multiplicity: local EDD vectors are replicated at
/// interfaces, so the all-reduced partial sums reproduce `Ẑᵀ v` exactly
/// once each shared entry is counted `1/mult` times per sharing rank.
pub fn edd_coarse_solvers(basis: &CoarseBasis, systems: &[SubdomainSystem]) -> Vec<CoarseSolver> {
    systems
        .iter()
        .map(|sys| {
            let local: HashMap<usize, usize> = sys
                .global_dofs
                .iter()
                .enumerate()
                .map(|(l, &g)| (g, l))
                .collect();
            let mut restrict = Vec::new();
            let mut prolong = Vec::new();
            for (m, col) in basis.modes.iter().enumerate() {
                for &(g, v) in col {
                    if let Some(&l) = local.get(&g) {
                        restrict.push((l, m, v / sys.multiplicity[l]));
                        prolong.push((l, m, v));
                    }
                }
            }
            CoarseSolver::new(
                basis.n_modes(),
                restrict,
                prolong,
                Arc::clone(&basis.factor),
            )
        })
        .collect()
}

/// Builds the global coarse basis for an RDD node partition over the
/// host-scaled assembled operator `a_scaled` (with scaling diagonal `d`,
/// from the same [`parfem_sparse::scaling::scale_system`] call that
/// produced it). One part per rank, dofs of each part taken node by node
/// in ascending node order; multiplicity is `1` everywhere — block rows
/// are disjoint.
pub fn rdd_coarse_basis(
    spec: &CoarseSpec,
    a_scaled: &CsrMatrix,
    d: &[f64],
    node_part: &NodePartition,
    dof_map: &DofMap,
    coords: &[[f64; 3]],
    pivot_tol: f64,
) -> CoarseBasis {
    let dpn = dof_map.dofs_per_node();
    let mut parts = vec![CoarsePartGeometry::default(); node_part.n_parts()];
    for (node, &owner) in node_part.owners().iter().enumerate() {
        let geo = &mut parts[owner];
        for c in 0..dpn {
            let g = node * dpn + c;
            geo.dofs.push(g);
            geo.pos.push(coords[node]);
            geo.comp.push(c);
            geo.constrained.push(dof_map.is_fixed(g));
        }
    }
    let mult = vec![1.0; a_scaled.n_rows()];
    build_coarse_basis(spec, &parts, &mult, d, a_scaled, pivot_tol)
}

/// Restricts a global coarse basis to one [`CoarseSolver`] per RDD block
/// row. Rows are disjoint, so restriction and prolongation are the exact
/// transpose pair over each rank's owned rows (unit weights); the
/// all-reduce then concatenates the disjoint partial sums.
pub fn rdd_coarse_solvers(basis: &CoarseBasis, systems: &[RddSystem]) -> Vec<CoarseSolver> {
    systems
        .iter()
        .map(|sys| {
            let local: HashMap<usize, usize> =
                sys.rows.iter().enumerate().map(|(l, &g)| (g, l)).collect();
            let mut restrict = Vec::new();
            let mut prolong = Vec::new();
            for (m, col) in basis.modes.iter().enumerate() {
                for &(g, v) in col {
                    if let Some(&l) = local.get(&g) {
                        restrict.push((l, m, v));
                        prolong.push((l, m, v));
                    }
                }
            }
            CoarseSolver::new(
                basis.n_modes(),
                restrict,
                prolong,
                Arc::clone(&basis.factor),
            )
        })
        .collect()
}
