//! Frozen entry points of the historical driver API.
//!
//! Every function here is a thin `#[deprecated]` shim over the composable
//! [`SolveSession`] builder in [`crate::session`] — one line of
//! configuration per historical parameter, bit-identical results (pinned by
//! the FNV-1a golden digests in `tests/golden.rs`). New code should use
//! [`SolveSession`] directly; these signatures stay for source
//! compatibility.

use crate::session::{Problem, SolveSession, Strategy};
use parfem_fem::{Material, SubdomainSystem};
use parfem_mesh::{DofMap, ElementPartition, NodePartition, QuadMesh};
use parfem_msg::MachineModel;
use parfem_trace::TraceSink;

pub use crate::session::{DdSolveOutput, SolveFailures, SolverConfig};
pub use parfem_precond::PrecondSpec;

/// Solves the static system with element-based domain decomposition over
/// `part.n_parts()` ranks.
///
/// `loads` is the global load vector (`dm.n_dofs()` long). Returns the
/// gathered physical solution plus performance reports.
///
/// ```
/// # #![allow(deprecated)]
/// use parfem_dd::{solve_edd, SolverConfig};
/// use parfem_fem::{assembly, Material};
/// use parfem_mesh::{DofMap, Edge, ElementPartition, QuadMesh};
/// use parfem_msg::MachineModel;
///
/// let mesh = QuadMesh::cantilever(8, 2);
/// let mut dm = DofMap::new(mesh.n_nodes());
/// dm.clamp_edge(&mesh, Edge::Left);
/// let mut loads = vec![0.0; dm.n_dofs()];
/// assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
///
/// let out = solve_edd(
///     &mesh, &dm, &Material::unit(), &loads,
///     &ElementPartition::strips_x(&mesh, 4),
///     MachineModel::sgi_origin(), &SolverConfig::default(),
/// );
/// assert!(out.history.converged());
/// assert_eq!(out.u.len(), dm.n_dofs());
/// ```
#[deprecated(note = "use SolveSession::new(..).strategy(Strategy::Edd(..)).run()")]
pub fn solve_edd(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    SolveSession::new(Problem::new(mesh, dm, material, loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg.clone())
        .machine(model)
        .run()
        .unwrap_or_else(|failures| panic!("distributed solve failed: {failures}"))
}

/// [`solve_edd`] recording structured events into `sink`.
#[deprecated(note = "use SolveSession::new(..).trace(sink).run()")]
#[allow(clippy::too_many_arguments)] // the traced twin of solve_edd
pub fn solve_edd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> DdSolveOutput {
    SolveSession::new(Problem::new(mesh, dm, material, loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg.clone())
        .machine(model)
        .trace(sink)
        .run()
        .unwrap_or_else(|failures| panic!("distributed solve failed: {failures}"))
}

/// Fallible twin of [`solve_edd_traced`].
///
/// # Errors
///
/// Returns [`SolveFailures`] listing every rank whose solve failed with a
/// typed [`crate::SolveError`].
#[deprecated(note = "use SolveSession::new(..).trace(sink).run()")]
#[allow(clippy::too_many_arguments)] // the fallible twin of solve_edd_traced
pub fn try_solve_edd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    SolveSession::new(Problem::new(mesh, dm, material, loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg.clone())
        .machine(model)
        .trace(sink)
        .run()
}

/// Runs the EDD pipeline over *prebuilt* subdomain systems — one rank per
/// system. This is the element-agnostic entry point: build the systems with
/// [`SubdomainSystem::build`] (Q4), [`SubdomainSystem::build_tri`] (T3) or
/// [`SubdomainSystem::build_quad8`] (Q8) and hand them over.
#[deprecated(note = "use SolveSession::from_systems(..).run()")]
pub fn solve_edd_systems(
    systems: &[SubdomainSystem],
    n_dofs: usize,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    SolveSession::from_systems(systems, n_dofs)
        .config(cfg.clone())
        .machine(model)
        .run()
        .unwrap_or_else(|failures| panic!("distributed solve failed: {failures}"))
}

/// [`solve_edd_systems`] with tracing.
///
/// # Panics
///
/// Panics if any rank returns a [`crate::SolveError`] — use
/// [`try_solve_edd_systems_traced`] to handle degraded communication
/// (fault injection, killed ranks) without unwinding.
#[deprecated(note = "use SolveSession::from_systems(..).trace(sink).run()")]
pub fn solve_edd_systems_traced(
    systems: &[SubdomainSystem],
    n_dofs: usize,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> DdSolveOutput {
    SolveSession::from_systems(systems, n_dofs)
        .config(cfg.clone())
        .machine(model)
        .trace(sink)
        .run()
        .unwrap_or_else(|failures| panic!("distributed solve failed: {failures}"))
}

/// Fallible twin of [`solve_edd_systems_traced`].
///
/// # Errors
///
/// Returns [`SolveFailures`] listing every rank whose solve failed with a
/// typed [`crate::SolveError`], alongside the per-rank reports and modeled
/// time at teardown.
#[deprecated(note = "use SolveSession::from_systems(..).trace(sink).run()")]
pub fn try_solve_edd_systems_traced(
    systems: &[SubdomainSystem],
    n_dofs: usize,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    SolveSession::from_systems(systems, n_dofs)
        .config(cfg.clone())
        .machine(model)
        .trace(sink)
        .run()
}

/// Solves the static system with the row-based (block-row) decomposition
/// over `node_part.n_parts()` ranks — the Section 4 baseline.
///
/// Assembly and scaling happen at setup (the RDD strategy requires the
/// assembled matrix — one of the overheads the paper's EDD avoids).
#[deprecated(note = "use SolveSession::new(..).strategy(Strategy::Rdd(..)).run()")]
pub fn solve_rdd(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    node_part: &NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    SolveSession::new(Problem::new(mesh, dm, material, loads))
        .strategy(Strategy::Rdd(node_part.clone()))
        .config(cfg.clone())
        .machine(model)
        .run()
        .unwrap_or_else(|failures| panic!("distributed solve failed: {failures}"))
}

/// [`solve_rdd`] recording structured events into `sink`.
///
/// # Panics
///
/// Panics if any rank returns a [`crate::SolveError`] — use
/// [`try_solve_rdd_traced`] to handle degraded communication without
/// unwinding.
#[deprecated(note = "use SolveSession::new(..).strategy(Strategy::Rdd(..)).trace(sink).run()")]
#[allow(clippy::too_many_arguments)] // the traced twin of solve_rdd
pub fn solve_rdd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    node_part: &NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> DdSolveOutput {
    SolveSession::new(Problem::new(mesh, dm, material, loads))
        .strategy(Strategy::Rdd(node_part.clone()))
        .config(cfg.clone())
        .machine(model)
        .trace(sink)
        .run()
        .unwrap_or_else(|failures| panic!("distributed solve failed: {failures}"))
}

/// Fallible twin of [`solve_rdd_traced`].
///
/// # Errors
///
/// Returns [`SolveFailures`] listing every rank whose solve failed with a
/// typed [`crate::SolveError`], alongside the per-rank reports and modeled
/// time at teardown.
#[deprecated(note = "use SolveSession::new(..).strategy(Strategy::Rdd(..)).trace(sink).run()")]
#[allow(clippy::too_many_arguments)] // the fallible twin of solve_rdd_traced
pub fn try_solve_rdd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    node_part: &NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    SolveSession::new(Problem::new(mesh, dm, material, loads))
        .strategy(Strategy::Rdd(node_part.clone()))
        .config(cfg.clone())
        .machine(model)
        .trace(sink)
        .run()
}

#[cfg(test)]
#[allow(deprecated)] // the tests pin the frozen legacy entry points
mod tests {
    use super::*;
    use crate::edd::EddVariant;
    use parfem_fem::assembly;
    use parfem_krylov::gmres::GmresConfig;
    use parfem_mesh::Edge;

    fn problem(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material, Vec<f64>) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
        (mesh, dm, mat, loads)
    }

    fn residual(mesh: &QuadMesh, dm: &DofMap, mat: &Material, loads: &[f64], u: &[f64]) -> f64 {
        let sys = assembly::build_static(mesh, dm, mat, loads);
        let r = sys.stiffness.spmv(u);
        r.iter()
            .zip(&sys.rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn edd_driver_solves_cantilever() {
        let (mesh, dm, mat, loads) = problem(8, 3);
        let part = ElementPartition::strips_x(&mesh, 4);
        let out = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        assert!(residual(&mesh, &dm, &mat, &loads, &out.u) < 1e-4);
        assert_eq!(out.reports.len(), 4);
        assert!(out.modeled_time > 0.0);
    }

    #[test]
    fn rdd_driver_solves_cantilever() {
        let (mesh, dm, mat, loads) = problem(8, 3);
        let part = NodePartition::contiguous(mesh.n_nodes(), 4);
        let out = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        assert!(residual(&mesh, &dm, &mat, &loads, &out.u) < 1e-4);
    }

    #[test]
    fn edd_and_rdd_agree_on_the_solution() {
        let (mesh, dm, mat, loads) = problem(6, 3);
        let epart = ElementPartition::strips_x(&mesh, 3);
        let npart = NodePartition::contiguous(mesh.n_nodes(), 3);
        let cfg = SolverConfig {
            gmres: GmresConfig {
                tol: 1e-10,
                ..Default::default()
            },
            ..Default::default()
        };
        let ue = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &epart,
            MachineModel::ideal(),
            &cfg,
        );
        let ur = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &npart,
            MachineModel::ideal(),
            &cfg,
        );
        let scale = ue.u.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-12);
        for (a, b) in ue.u.iter().zip(&ur.u) {
            assert!((a - b).abs() < 1e-5 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn all_precond_specs_run_edd() {
        let (mesh, dm, mat, loads) = problem(6, 2);
        let part = ElementPartition::strips_x(&mesh, 2);
        for spec in [
            PrecondSpec::None,
            PrecondSpec::Jacobi,
            PrecondSpec::Gls {
                degree: 5,
                theta: None,
            },
            PrecondSpec::Neumann { degree: 8 },
            PrecondSpec::Chebyshev { degree: 8 },
            PrecondSpec::GlsEscalating { period: 3 },
        ] {
            let cfg = SolverConfig {
                gmres: GmresConfig {
                    max_iters: 5000,
                    ..Default::default()
                },
                precond: spec.clone(),
                ..Default::default()
            };
            let out = solve_edd(&mesh, &dm, &mat, &loads, &part, MachineModel::ideal(), &cfg);
            assert!(
                out.history.converged(),
                "{} failed to converge",
                spec.name()
            );
        }
    }

    #[test]
    fn modeled_time_shrinks_with_more_ranks_on_ideal_machine() {
        let (mesh, dm, mat, loads) = problem(32, 8);
        let cfg = SolverConfig::default();
        let t1 = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 1),
            MachineModel::ideal(),
            &cfg,
        )
        .modeled_time;
        let t4 = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 4),
            MachineModel::ideal(),
            &cfg,
        )
        .modeled_time;
        let speedup = t1 / t4;
        assert!(
            speedup > 2.5,
            "ideal-machine speedup on 4 ranks too low: {speedup}"
        );
    }

    #[test]
    fn edd_runs_on_triangle_meshes() {
        // The element-agnostic pipeline: T3 subdomains through the same
        // distributed solver, checked against the assembled T3 system.
        let tmesh = parfem_mesh::TriMesh::cantilever(8, 3);
        let mut dm = DofMap::new(tmesh.n_nodes());
        for n in tmesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        loads[dm.dof(tmesh.node_at(8, 3), 1)] = -1.0;
        let part = parfem_mesh::ElementPartition::strips_x_tri(&tmesh, 3);
        let systems: Vec<parfem_fem::SubdomainSystem> = part
            .subdomains_of(&tmesh)
            .iter()
            .map(|s| parfem_fem::SubdomainSystem::build_tri(&tmesh, &dm, &mat, s, &loads, None))
            .collect();
        let out = crate::driver::solve_edd_systems(
            &systems,
            dm.n_dofs(),
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        // Residual against the assembled T3 system.
        let k_raw = parfem_fem::tri3::assemble_stiffness(&tmesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = parfem_fem::assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let r = k_bc.spmv(&out.u);
        let err: f64 = r
            .iter()
            .zip(&rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5, "T3 residual {err}");
    }

    #[test]
    fn edd_runs_on_quad8_meshes() {
        let emesh = parfem_mesh::Quad8Mesh::cantilever(6, 2);
        let mut dm = DofMap::new(emesh.n_nodes());
        for n in emesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        for n in emesh.edge_nodes(Edge::Right) {
            loads[dm.dof(n, 0)] = 0.2;
        }
        let part = parfem_mesh::ElementPartition::strips_x_quad8(&emesh, 3);
        let systems: Vec<parfem_fem::SubdomainSystem> = part
            .subdomains_of(&emesh)
            .iter()
            .map(|s| parfem_fem::SubdomainSystem::build_quad8(&emesh, &dm, &mat, s, &loads, None))
            .collect();
        let out = crate::driver::solve_edd_systems(
            &systems,
            dm.n_dofs(),
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        let k_raw = parfem_fem::quad8s::assemble_stiffness(&emesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = parfem_fem::assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let r = k_bc.spmv(&out.u);
        let err: f64 = r
            .iter()
            .zip(&rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-5 * scale.max(1.0), "Q8 residual {err}");
    }

    #[test]
    fn trace_comm_counts_match_live_stats_for_edd_solve() {
        // The trace reconstructs communication by *counting events*, so
        // agreement with the live CommStats is a real integrity check of
        // the whole instrumentation path (ISSUE acceptance criterion).
        let (mesh, dm, mat, loads) = problem(10, 4);
        let part = ElementPartition::strips_x(&mesh, 4);
        let sink = parfem_trace::TraceSink::recording();
        let out = solve_edd_traced(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::sgi_origin(),
            &SolverConfig::default(),
            &sink,
        );
        assert!(out.history.converged());
        let events = sink.take_events();
        let report = parfem_trace::TraceReport::from_events(&events);
        assert_eq!(report.nranks(), 4);
        for rank in &report.ranks {
            let live = &out.reports[rank.rank].stats;
            assert_eq!(rank.comm.sends, live.sends, "rank {} sends", rank.rank);
            assert_eq!(rank.comm.recvs, live.recvs, "rank {} recvs", rank.rank);
            assert_eq!(rank.comm.bytes_sent, live.bytes_sent);
            assert_eq!(rank.comm.bytes_received, live.bytes_received);
            assert_eq!(rank.comm.allreduces, live.allreduces);
            assert_eq!(rank.comm.allreduce_bytes, live.allreduce_bytes);
            assert_eq!(rank.comm.barriers, live.barriers);
            assert_eq!(rank.comm.neighbor_exchanges, live.neighbor_exchanges);
            assert!((rank.final_virt - out.reports[rank.rank].virtual_time).abs() < 1e-12);
        }
        // The solve summary instant reached the trace intact.
        let s = report.solve.as_ref().expect("solve summary");
        assert!(s.converged);
        assert_eq!(s.iterations, out.history.iterations() as u64);
        assert_eq!(s.variant, "edd-enhanced");
    }

    #[test]
    fn trace_round_trips_through_jsonl() {
        // emit → encode → parse → aggregate must equal in-memory aggregate.
        let (mesh, dm, mat, loads) = problem(6, 3);
        let part = ElementPartition::strips_x(&mesh, 3);
        let sink = parfem_trace::TraceSink::recording();
        let _ = solve_edd_traced(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &SolverConfig::default(),
            &sink,
        );
        let events = sink.take_events();
        let text = parfem_trace::jsonl::encode_all(&events);
        let parsed = parfem_trace::jsonl::decode_all(&text).expect("parseable JSONL");
        assert_eq!(events.len(), parsed.len());
        let direct = parfem_trace::TraceReport::from_events(&events);
        let round = parfem_trace::TraceReport::from_events(&parsed);
        assert_eq!(direct.comm_totals(), round.comm_totals());
        assert_eq!(direct.iters.len(), round.iters.len());
        for (a, b) in direct.ranks.iter().zip(&round.ranks) {
            assert_eq!(a.comm.sends, b.comm.sends);
            assert_eq!(a.comm.flops, b.comm.flops);
        }
    }

    #[test]
    fn untraced_solve_is_unaffected_by_instrumentation() {
        // The disabled sink must leave results bit-identical to the traced
        // run (tracing reads state; it never perturbs the solve).
        let (mesh, dm, mat, loads) = problem(8, 3);
        let part = ElementPartition::strips_x(&mesh, 4);
        let cfg = SolverConfig::default();
        let plain = solve_edd(&mesh, &dm, &mat, &loads, &part, MachineModel::ideal(), &cfg);
        let sink = parfem_trace::TraceSink::recording();
        let traced = solve_edd_traced(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &cfg,
            &sink,
        );
        assert_eq!(plain.u, traced.u);
        assert_eq!(
            plain.history.relative_residuals,
            traced.history.relative_residuals
        );
        assert_eq!(plain.modeled_time, traced.modeled_time);
    }

    #[test]
    fn overlap_is_bit_identical_and_faster_on_latency_bound_machines() {
        // The overlapped schedule reorders only *when* rows are computed
        // relative to the in-flight exchange, never the arithmetic — so the
        // solution and residual history must be bit-identical — while the
        // modeled time strictly improves on a high-latency machine where
        // the interface exchange dominates.
        let (mesh, dm, mat, loads) = problem(16, 6);
        let part = ElementPartition::strips_x(&mesh, 4);
        let blocking = SolverConfig::default();
        let overlapped = SolverConfig {
            overlap: true,
            ..Default::default()
        };
        let b = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &blocking,
        );
        let o = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &overlapped,
        );
        assert_eq!(b.u, o.u, "overlap must not change the solution bits");
        assert_eq!(
            b.history.relative_residuals, o.history.relative_residuals,
            "overlap must not change the residual history bits"
        );
        assert!(
            o.modeled_time < b.modeled_time,
            "overlap must strictly improve modeled time: {} vs {}",
            o.modeled_time,
            b.modeled_time
        );
        // Same communication volume either way: only the schedule differs.
        for (rb, ro) in b.reports.iter().zip(&o.reports) {
            assert_eq!(rb.stats.sends, ro.stats.sends);
            assert_eq!(rb.stats.bytes_sent, ro.stats.bytes_sent);
            assert_eq!(rb.stats.neighbor_exchanges, ro.stats.neighbor_exchanges);
        }
    }

    #[test]
    fn rdd_overlap_is_bit_identical_and_faster_on_latency_bound_machines() {
        let (mesh, dm, mat, loads) = problem(16, 6);
        let part = NodePartition::contiguous(mesh.n_nodes(), 4);
        let blocking = SolverConfig::default();
        let overlapped = SolverConfig {
            overlap: true,
            ..Default::default()
        };
        let b = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &blocking,
        );
        let o = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &overlapped,
        );
        assert_eq!(b.u, o.u, "overlap must not change the solution bits");
        assert_eq!(
            b.history.relative_residuals, o.history.relative_residuals,
            "overlap must not change the residual history bits"
        );
        assert!(
            o.modeled_time < b.modeled_time,
            "overlap must strictly improve modeled time: {} vs {}",
            o.modeled_time,
            b.modeled_time
        );
    }

    #[test]
    fn precond_spec_names_match_paper_labels() {
        assert_eq!(PrecondSpec::None.name(), "none");
        assert_eq!(
            PrecondSpec::Gls {
                degree: 10,
                theta: None
            }
            .name(),
            "gls(10)"
        );
        assert_eq!(PrecondSpec::Neumann { degree: 20 }.name(), "neumann(20)");
        assert_eq!(PrecondSpec::Jacobi.name(), "jacobi");
    }

    #[test]
    fn variant_option_reaches_the_solver_through_the_session() {
        // Basic vs enhanced EDD must give the same solution but different
        // trace labels; here we just pin that both run through the shims.
        let (mesh, dm, mat, loads) = problem(6, 2);
        let part = ElementPartition::strips_x(&mesh, 2);
        for variant in [EddVariant::Basic, EddVariant::Enhanced] {
            let cfg = SolverConfig {
                variant,
                ..Default::default()
            };
            let out = solve_edd(&mesh, &dm, &mat, &loads, &part, MachineModel::ideal(), &cfg);
            assert!(out.history.converged());
        }
    }
}
