//! High-level parallel solve drivers.
//!
//! These wire the full pipeline of the paper's Algorithm 2: partition the
//! mesh, assemble per-subdomain (EDD) or block-row (RDD) systems, apply the
//! distributed norm-1 diagonal scaling, build the requested preconditioner,
//! run the distributed FGMRES over `P` ranks on the virtual-time machine,
//! and gather the physical solution.

use crate::dist_vec::EddLayout;
use crate::edd::{edd_fgmres, EddVariant};
use crate::error::SolveError;
use crate::rdd::{rdd_fgmres, RddSystem};
use crate::scaling::DistributedScaling;
use parfem_fem::{Material, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_krylov::history::ConvergenceHistory;
use parfem_mesh::{DofMap, ElementPartition, NodePartition, QuadMesh};
use parfem_msg::{
    try_run_ranks, Communicator, FaultPlan, FaultyComm, MachineModel, RankReport, RunOptions,
    ThreadComm,
};
use parfem_precond::{
    ChebyshevPrecond, EscalatingGls, GlsPrecond, IdentityPrecond, IntervalUnion, JacobiPrecond,
    NeumannPrecond, Preconditioner,
};
use parfem_sparse::{scaling::scale_system, CsrMatrix, LinearOperator};
use parfem_trace::{alloc, TraceSink, Value};
use std::fmt;
use std::time::Duration;

/// Which preconditioner the distributed solver should build.
#[derive(Debug, Clone)]
pub enum PrecondSpec {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) preconditioning on the assembled diagonal.
    Jacobi,
    /// GLS polynomial of the given degree; `theta` defaults to the
    /// post-scaling `(ε, 1)`.
    Gls {
        /// Polynomial degree `m`.
        degree: usize,
        /// Spectrum estimate; `None` means `(ε, 1)`.
        theta: Option<IntervalUnion>,
    },
    /// Neumann series of the given degree (`ω = 1` after scaling).
    Neumann {
        /// Polynomial degree `m`.
        degree: usize,
    },
    /// Chebyshev (min-max) polynomial on the post-scaling interval.
    Chebyshev {
        /// Polynomial degree `m`.
        degree: usize,
    },
    /// Degree-escalating GLS (1→3→7→10) switching every `period`
    /// applications — the flexible-GMRES showcase. Each rank holds its own
    /// schedule state; since every rank performs the same sequence of
    /// applications, the schedules stay in lock step.
    GlsEscalating {
        /// Applications per schedule stage.
        period: usize,
    },
}

impl PrecondSpec {
    /// Display name matching the paper's curve labels.
    pub fn name(&self) -> String {
        match self {
            PrecondSpec::None => "none".into(),
            PrecondSpec::Jacobi => "jacobi".into(),
            PrecondSpec::Gls { degree, .. } => format!("gls({degree})"),
            PrecondSpec::Neumann { degree } => format!("neumann({degree})"),
            PrecondSpec::Chebyshev { degree } => format!("chebyshev({degree})"),
            PrecondSpec::GlsEscalating { period } => format!("gls-escalating(x{period})"),
        }
    }
}

/// Full configuration of a distributed solve.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// GMRES restart/tolerance settings (paper: `m̃ = 25`, `tol = 1e-6`).
    pub gmres: GmresConfig,
    /// Preconditioner choice.
    pub precond: PrecondSpec,
    /// EDD algorithm variant (ignored by RDD).
    pub variant: EddVariant,
    /// Overlap interface communication with interior computation: every
    /// matvec posts its exchange nonblocking and computes the rows that do
    /// not depend on the in-flight messages while they travel. Results are
    /// bit-identical to the blocking schedule; the modeled virtual time
    /// credits `max(compute, comm)` instead of their sum.
    pub overlap: bool,
    /// Deterministic fault-injection plan for the message layer. `None`
    /// (the default) runs fault-free on the raw [`ThreadComm`]; `Some`
    /// wraps every rank's endpoint in a [`FaultyComm`] driven by the plan,
    /// so chaos runs reproduce bit for bit from the seed alone.
    pub faults: Option<FaultPlan>,
    /// Wall-clock watchdog for every blocking communicator wait (receives
    /// and collectives). A peer that never shows up within this budget
    /// surfaces as a typed [`parfem_msg::CommError::Timeout`] instead of a
    /// hang.
    pub comm_timeout: Duration,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            gmres: GmresConfig::default(),
            precond: PrecondSpec::Gls {
                degree: 7,
                theta: None,
            },
            variant: EddVariant::Enhanced,
            overlap: false,
            faults: None,
            comm_timeout: Duration::from_secs(30),
        }
    }
}

/// Output of a distributed solve.
#[derive(Debug, Clone)]
pub struct DdSolveOutput {
    /// The physical (unscaled) global solution.
    pub u: Vec<f64>,
    /// Convergence history (identical on every rank; rank 0's copy).
    pub history: ConvergenceHistory,
    /// Per-rank virtual time and communication statistics.
    pub reports: Vec<RankReport>,
    /// Modeled parallel time (max over rank clocks), in seconds.
    pub modeled_time: f64,
}

/// Everything a failed distributed solve still knows.
///
/// Returned by [`try_solve_edd_systems_traced`] / [`try_solve_rdd_traced`]
/// when at least one rank hit a typed [`SolveError`]. Ranks that completed
/// normally are not listed in `errors`; the per-rank [`RankReport`]s cover
/// every rank up to the point its thread returned, so a post-mortem can
/// still see who spent what before the failure.
#[derive(Debug, Clone)]
pub struct SolveFailures {
    /// `(rank, error)` for every rank that failed, in rank order.
    pub errors: Vec<(usize, SolveError)>,
    /// Per-rank virtual time and communication statistics at teardown.
    pub reports: Vec<RankReport>,
    /// Modeled parallel time when the run tore down, in seconds.
    pub modeled_time: f64,
}

impl fmt::Display for SolveFailures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (rank, first) = match self.errors.first() {
            Some((r, e)) => (*r, e),
            None => return write!(f, "distributed solve failed (no rank error recorded)"),
        };
        write!(
            f,
            "{} of {} ranks failed; first: rank {}: {}",
            self.errors.len(),
            self.reports.len(),
            rank,
            first
        )
    }
}

impl std::error::Error for SolveFailures {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.errors
            .first()
            .map(|(_, e)| e as &(dyn std::error::Error + 'static))
    }
}

/// Stamps the end-of-solve summary (consumed by `parfem report` and the
/// convergence renderer) onto the trace as a host-side `solve_summary`
/// instant event.
///
/// `alloc_start` is the allocation-counter snapshot taken when the solve
/// began; when the process runs under a
/// [`parfem_trace::alloc::CountingAlloc`] (the `parfem` binary's
/// `count-allocs` feature, or an instrumented test harness), the summary
/// additionally carries `alloc_count` / `alloc_bytes` for the whole solve,
/// so workspace regressions surface directly in `parfem report`.
fn emit_solve_summary(
    sink: &TraceSink,
    variant: &str,
    spec: &PrecondSpec,
    overlap: bool,
    out: &DdSolveOutput,
    alloc_start: alloc::AllocStats,
) {
    if let Some(tracer) = sink.host_tracer() {
        let mut fields = vec![
            (
                "converged".to_string(),
                Value::U64(out.history.converged() as u64),
            ),
            (
                "iterations".to_string(),
                Value::U64(out.history.iterations() as u64),
            ),
            (
                "restarts".to_string(),
                Value::U64(out.history.restarts as u64),
            ),
            (
                "final_rel_res".to_string(),
                Value::F64(
                    out.history
                        .relative_residuals
                        .last()
                        .copied()
                        .unwrap_or(f64::NAN),
                ),
            ),
            ("modeled_time".to_string(), Value::F64(out.modeled_time)),
            ("precond".to_string(), Value::Str(spec.name())),
            ("variant".to_string(), Value::Str(variant.to_string())),
            ("overlap".to_string(), Value::U64(overlap as u64)),
        ];
        if alloc::is_counting() {
            let d = alloc::stats().since(alloc_start);
            fields.push(("alloc_count".to_string(), Value::U64(d.count)));
            fields.push(("alloc_bytes".to_string(), Value::U64(d.bytes)));
        }
        tracer.instant("solve_summary", 0.0, fields);
    }
}

/// Runs `f` under a named host-side (wall-clock) span.
fn host_span<R>(sink: &TraceSink, name: &str, f: impl FnOnce() -> R) -> R {
    let tracer = sink.host_tracer();
    if let Some(t) = &tracer {
        t.span_begin(name, 0.0);
    }
    let r = f();
    if let Some(t) = &tracer {
        t.span_end(name, 0.0);
    }
    r
}

/// Dispatches a closure with the concrete preconditioner for `spec`.
fn with_precond<Op, R>(
    spec: &PrecondSpec,
    diag: impl FnOnce() -> Vec<f64>,
    run: impl FnOnce(&dyn Preconditioner<Op>) -> R,
) -> R
where
    Op: LinearOperator,
{
    match spec {
        PrecondSpec::None => run(&IdentityPrecond),
        PrecondSpec::Jacobi => run(&JacobiPrecond::from_diagonal(&diag())),
        PrecondSpec::Gls { degree, theta } => {
            let t = theta.clone().unwrap_or_else(IntervalUnion::unit);
            run(&GlsPrecond::new(*degree, t))
        }
        PrecondSpec::Neumann { degree } => run(&NeumannPrecond::for_scaled_system(*degree)),
        PrecondSpec::Chebyshev { degree } => run(&ChebyshevPrecond::for_scaled_system(*degree)),
        PrecondSpec::GlsEscalating { period } => {
            run(&EscalatingGls::default_for_scaled_system(*period))
        }
    }
}

/// Solves the static system with element-based domain decomposition over
/// `part.n_parts()` ranks.
///
/// `loads` is the global load vector (`dm.n_dofs()` long). Returns the
/// gathered physical solution plus performance reports.
///
/// ```
/// use parfem_dd::{solve_edd, SolverConfig};
/// use parfem_fem::{assembly, Material};
/// use parfem_mesh::{DofMap, Edge, ElementPartition, QuadMesh};
/// use parfem_msg::MachineModel;
///
/// let mesh = QuadMesh::cantilever(8, 2);
/// let mut dm = DofMap::new(mesh.n_nodes());
/// dm.clamp_edge(&mesh, Edge::Left);
/// let mut loads = vec![0.0; dm.n_dofs()];
/// assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
///
/// let out = solve_edd(
///     &mesh, &dm, &Material::unit(), &loads,
///     &ElementPartition::strips_x(&mesh, 4),
///     MachineModel::sgi_origin(), &SolverConfig::default(),
/// );
/// assert!(out.history.converged());
/// assert_eq!(out.u.len(), dm.n_dofs());
/// ```
pub fn solve_edd(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    solve_edd_traced(
        mesh,
        dm,
        material,
        loads,
        part,
        model,
        cfg,
        &TraceSink::disabled(),
    )
}

/// [`solve_edd`], recording structured events into `sink`: host-side
/// `partition`/`assembly` spans plus everything
/// [`solve_edd_systems_traced`] records.
#[allow(clippy::too_many_arguments)] // the traced twin of solve_edd
pub fn solve_edd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> DdSolveOutput {
    let subdomains = host_span(sink, "partition", || part.subdomains(mesh));
    let systems: Vec<SubdomainSystem> = host_span(sink, "assembly", || {
        subdomains
            .iter()
            .map(|s| SubdomainSystem::build(mesh, dm, material, s, loads, None))
            .collect()
    });
    solve_edd_systems_traced(&systems, dm.n_dofs(), model, cfg, sink)
}

/// Fallible twin of [`solve_edd_traced`]: partitions and assembles on the
/// host, then delegates to [`try_solve_edd_systems_traced`].
///
/// # Errors
///
/// Returns [`SolveFailures`] listing every rank whose solve failed with a
/// typed [`SolveError`].
#[allow(clippy::too_many_arguments)] // the fallible twin of solve_edd_traced
pub fn try_solve_edd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    part: &ElementPartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    let subdomains = host_span(sink, "partition", || part.subdomains(mesh));
    let systems: Vec<SubdomainSystem> = host_span(sink, "assembly", || {
        subdomains
            .iter()
            .map(|s| SubdomainSystem::build(mesh, dm, material, s, loads, None))
            .collect()
    });
    try_solve_edd_systems_traced(&systems, dm.n_dofs(), model, cfg, sink)
}

/// Runs the EDD pipeline (distributed scaling → preconditioner → FGMRES →
/// gather) over *prebuilt* subdomain systems — one rank per system.
///
/// This is the element-agnostic entry point: build the systems with
/// [`SubdomainSystem::build`] (Q4), [`SubdomainSystem::build_tri`] (T3) or
/// [`SubdomainSystem::build_quad8`] (Q8) and hand them over.
pub fn solve_edd_systems(
    systems: &[SubdomainSystem],
    n_dofs: usize,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    solve_edd_systems_traced(systems, n_dofs, model, cfg, &TraceSink::disabled())
}

/// [`solve_edd_systems`] with tracing: per-rank `scaling`/`precond-build`
/// spans, the `fgmres` span with per-iteration events, every message and
/// collective from the communicator, and a final host-side `gather` span
/// plus `solve_summary` instant.
///
/// # Panics
///
/// Panics if any rank returns a [`SolveError`] — use
/// [`try_solve_edd_systems_traced`] to handle degraded communication
/// (fault injection, killed ranks) without unwinding.
pub fn solve_edd_systems_traced(
    systems: &[SubdomainSystem],
    n_dofs: usize,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> DdSolveOutput {
    match try_solve_edd_systems_traced(systems, n_dofs, model, cfg, sink) {
        Ok(out) => out,
        Err(failures) => panic!("distributed solve failed: {failures}"),
    }
}

/// The per-rank EDD pipeline: distributed scaling, preconditioner build,
/// and the flexible GMRES, over any [`Communicator`] — the raw
/// [`ThreadComm`] in fault-free runs, a [`FaultyComm`] under chaos.
fn edd_rank_body<C: Communicator>(
    comm: &C,
    sys: &SubdomainSystem,
    cfg: &SolverConfig,
) -> Result<(Vec<f64>, ConvergenceHistory), SolveError> {
    if let Some(t) = comm.tracer() {
        t.span_begin("scaling", comm.virtual_time());
    }
    let mut layout = EddLayout::from_system(sys);
    layout.set_overlap(cfg.overlap);
    let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
    let mut b = sys.f_local.clone();
    let a = sc.apply(&sys.k_local, &mut b);
    if let Some(t) = comm.tracer() {
        t.span_end("scaling", comm.virtual_time());
        t.span_begin("precond-build", comm.virtual_time());
    }
    let x0 = vec![0.0; b.len()];
    let res = with_precond(
        &cfg.precond,
        || {
            // Assembled diagonal of the scaled operator for Jacobi.
            let mut d = a.diagonal();
            let mut bufs = crate::dist_vec::ExchangeBuffers::new();
            layout.interface_sum_buffered(comm, &mut d, &mut bufs);
            d
        },
        |pc| {
            if let Some(t) = comm.tracer() {
                t.span_end("precond-build", comm.virtual_time());
            }
            edd_fgmres(comm, &layout, &a, pc, &b, &x0, &cfg.gmres, cfg.variant)
        },
    )?;
    let mut u = res.x;
    sc.unscale(&mut u);
    Ok((u, res.history))
}

/// Splits the per-rank outcomes of a fallible run. A rank *panic* is a bug
/// (not an injected fault) and propagates as a panic; typed [`SolveError`]s
/// collect into [`SolveFailures`]; a clean run yields the per-rank values.
fn collect_rank_results<R>(
    results: Vec<Result<Result<R, SolveError>, parfem_msg::RankPanic>>,
    reports: Vec<RankReport>,
    modeled_time: f64,
) -> Result<(Vec<R>, Vec<RankReport>, f64), SolveFailures> {
    let mut values = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for (rank, res) in results.into_iter().enumerate() {
        match res {
            Ok(Ok(v)) => values.push(v),
            Ok(Err(e)) => errors.push((rank, e)),
            Err(p) => panic!("rank panicked: {}", p.message),
        }
    }
    if errors.is_empty() {
        Ok((values, reports, modeled_time))
    } else {
        Err(SolveFailures {
            errors,
            reports,
            modeled_time,
        })
    }
}

/// Fallible twin of [`solve_edd_systems_traced`]: returns
/// [`SolveFailures`] instead of panicking when ranks hit typed errors.
///
/// When `cfg.faults` is set, every rank's communicator is wrapped in a
/// [`FaultyComm`] driven by the shared [`FaultPlan`], and `cfg.comm_timeout`
/// bounds every blocking wait, so even a killed rank tears the run down
/// with errors on every survivor instead of a hang.
///
/// # Errors
///
/// Returns [`SolveFailures`] listing every rank whose solve failed with a
/// typed [`SolveError`], alongside the per-rank reports and modeled time at
/// teardown.
pub fn try_solve_edd_systems_traced(
    systems: &[SubdomainSystem],
    n_dofs: usize,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    let p = systems.len();
    assert!(p > 0, "need at least one subdomain system");
    let alloc_start = alloc::stats();
    let opts = RunOptions {
        comm_timeout: cfg.comm_timeout,
    };
    let out = try_run_ranks(p, model, opts, sink, |comm: &ThreadComm| {
        let sys = &systems[comm.rank()];
        match &cfg.faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                edd_rank_body(&faulty, sys, cfg)
            }
            None => edd_rank_body(comm, sys, cfg),
        }
    });
    let (results, reports, modeled_time) =
        collect_rank_results(out.results, out.reports, out.modeled_time)?;

    let mut u = vec![0.0; n_dofs];
    host_span(sink, "gather", || {
        for (rank, (ul, _)) in results.iter().enumerate() {
            for (l, &g) in systems[rank].global_dofs.iter().enumerate() {
                u[g] = ul[l];
            }
        }
    });
    let solved = DdSolveOutput {
        u,
        history: results[0].1.clone(),
        reports,
        modeled_time,
    };
    let variant = match cfg.variant {
        EddVariant::Basic => "edd-basic",
        EddVariant::Enhanced => "edd-enhanced",
    };
    emit_solve_summary(
        sink,
        variant,
        &cfg.precond,
        cfg.overlap,
        &solved,
        alloc_start,
    );
    Ok(solved)
}

/// Solves the static system with the row-based (block-row) decomposition
/// over `node_part.n_parts()` ranks — the Section 4 baseline.
///
/// Assembly and scaling happen at setup (the RDD strategy requires the
/// assembled matrix — one of the overheads the paper's EDD avoids).
pub fn solve_rdd(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    node_part: &NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    solve_rdd_traced(
        mesh,
        dm,
        material,
        loads,
        node_part,
        model,
        cfg,
        &TraceSink::disabled(),
    )
}

/// [`solve_rdd`], recording structured events into `sink`: host-side
/// `assembly`/`scaling`/`gather` spans (RDD assembles and scales the global
/// matrix up front), per-rank `precond-build` spans, the `fgmres` span with
/// per-iteration events, and the final `solve_summary` instant.
///
/// # Panics
///
/// Panics if any rank returns a [`SolveError`] — use
/// [`try_solve_rdd_traced`] to handle degraded communication without
/// unwinding.
#[allow(clippy::too_many_arguments)] // the traced twin of solve_rdd
pub fn solve_rdd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    node_part: &NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> DdSolveOutput {
    match try_solve_rdd_traced(mesh, dm, material, loads, node_part, model, cfg, sink) {
        Ok(out) => out,
        Err(failures) => panic!("distributed solve failed: {failures}"),
    }
}

/// The per-rank RDD pipeline: preconditioner build plus the block-row
/// FGMRES, over any [`Communicator`].
fn rdd_rank_body<C: Communicator>(
    comm: &C,
    sys: &RddSystem,
    a: &CsrMatrix,
    cfg: &SolverConfig,
) -> Result<(Vec<f64>, ConvergenceHistory), SolveError> {
    if let Some(t) = comm.tracer() {
        t.span_begin("precond-build", comm.virtual_time());
    }
    let x0 = vec![0.0; sys.n_local()];
    let res = with_precond(
        &cfg.precond,
        || sys.rows.iter().map(|&d| a.get(d, d)).collect(),
        |pc| {
            if let Some(t) = comm.tracer() {
                t.span_end("precond-build", comm.virtual_time());
            }
            rdd_fgmres(comm, sys, pc, &x0, &cfg.gmres)
        },
    )?;
    Ok((res.x, res.history))
}

/// Fallible twin of [`solve_rdd_traced`]: returns [`SolveFailures`]
/// instead of panicking when ranks hit typed errors. `cfg.faults` and
/// `cfg.comm_timeout` behave exactly as in
/// [`try_solve_edd_systems_traced`].
///
/// # Errors
///
/// Returns [`SolveFailures`] listing every rank whose solve failed with a
/// typed [`SolveError`], alongside the per-rank reports and modeled time at
/// teardown.
#[allow(clippy::too_many_arguments)] // the fallible twin of solve_rdd_traced
pub fn try_solve_rdd_traced(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
    node_part: &NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
    sink: &TraceSink,
) -> Result<DdSolveOutput, SolveFailures> {
    let alloc_start = alloc::stats();
    let assembled = host_span(sink, "assembly", || {
        parfem_fem::assembly::build_static(mesh, dm, material, loads)
    });
    let (a, b, sc) = host_span(sink, "scaling", || {
        scale_system(&assembled.stiffness, &assembled.rhs).expect("square assembled system")
    });
    let mut systems = RddSystem::build_all(&a, &b, node_part);
    for sys in &mut systems {
        sys.overlap = cfg.overlap;
    }
    let p = node_part.n_parts();
    let opts = RunOptions {
        comm_timeout: cfg.comm_timeout,
    };

    let out = try_run_ranks(p, model, opts, sink, |comm: &ThreadComm| {
        let sys = &systems[comm.rank()];
        match &cfg.faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                rdd_rank_body(&faulty, sys, &a, cfg)
            }
            None => rdd_rank_body(comm, sys, &a, cfg),
        }
    });
    let (results, reports, modeled_time) =
        collect_rank_results(out.results, out.reports, out.modeled_time)?;

    let mut x = vec![0.0; dm.n_dofs()];
    let solved = host_span(sink, "gather", || {
        for (rank, (xl, _)) in results.iter().enumerate() {
            systems[rank].scatter(xl, &mut x);
        }
        DdSolveOutput {
            u: sc.unscale_solution(&x),
            history: results[0].1.clone(),
            reports,
            modeled_time,
        }
    });
    emit_solve_summary(sink, "rdd", &cfg.precond, cfg.overlap, &solved, alloc_start);
    Ok(solved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_fem::assembly;
    use parfem_mesh::Edge;

    fn problem(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material, Vec<f64>) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
        (mesh, dm, mat, loads)
    }

    fn residual(mesh: &QuadMesh, dm: &DofMap, mat: &Material, loads: &[f64], u: &[f64]) -> f64 {
        let sys = assembly::build_static(mesh, dm, mat, loads);
        let r = sys.stiffness.spmv(u);
        r.iter()
            .zip(&sys.rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn edd_driver_solves_cantilever() {
        let (mesh, dm, mat, loads) = problem(8, 3);
        let part = ElementPartition::strips_x(&mesh, 4);
        let out = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        assert!(residual(&mesh, &dm, &mat, &loads, &out.u) < 1e-4);
        assert_eq!(out.reports.len(), 4);
        assert!(out.modeled_time > 0.0);
    }

    #[test]
    fn rdd_driver_solves_cantilever() {
        let (mesh, dm, mat, loads) = problem(8, 3);
        let part = NodePartition::contiguous(mesh.n_nodes(), 4);
        let out = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        assert!(residual(&mesh, &dm, &mat, &loads, &out.u) < 1e-4);
    }

    #[test]
    fn edd_and_rdd_agree_on_the_solution() {
        let (mesh, dm, mat, loads) = problem(6, 3);
        let epart = ElementPartition::strips_x(&mesh, 3);
        let npart = NodePartition::contiguous(mesh.n_nodes(), 3);
        let cfg = SolverConfig {
            gmres: GmresConfig {
                tol: 1e-10,
                ..Default::default()
            },
            ..Default::default()
        };
        let ue = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &epart,
            MachineModel::ideal(),
            &cfg,
        );
        let ur = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &npart,
            MachineModel::ideal(),
            &cfg,
        );
        let scale = ue.u.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-12);
        for (a, b) in ue.u.iter().zip(&ur.u) {
            assert!((a - b).abs() < 1e-5 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn all_precond_specs_run_edd() {
        let (mesh, dm, mat, loads) = problem(6, 2);
        let part = ElementPartition::strips_x(&mesh, 2);
        for spec in [
            PrecondSpec::None,
            PrecondSpec::Jacobi,
            PrecondSpec::Gls {
                degree: 5,
                theta: None,
            },
            PrecondSpec::Neumann { degree: 8 },
            PrecondSpec::Chebyshev { degree: 8 },
            PrecondSpec::GlsEscalating { period: 3 },
        ] {
            let cfg = SolverConfig {
                gmres: GmresConfig {
                    max_iters: 5000,
                    ..Default::default()
                },
                precond: spec.clone(),
                ..Default::default()
            };
            let out = solve_edd(&mesh, &dm, &mat, &loads, &part, MachineModel::ideal(), &cfg);
            assert!(
                out.history.converged(),
                "{} failed to converge",
                spec.name()
            );
        }
    }

    #[test]
    fn modeled_time_shrinks_with_more_ranks_on_ideal_machine() {
        let (mesh, dm, mat, loads) = problem(32, 8);
        let cfg = SolverConfig::default();
        let t1 = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 1),
            MachineModel::ideal(),
            &cfg,
        )
        .modeled_time;
        let t4 = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &ElementPartition::strips_x(&mesh, 4),
            MachineModel::ideal(),
            &cfg,
        )
        .modeled_time;
        let speedup = t1 / t4;
        assert!(
            speedup > 2.5,
            "ideal-machine speedup on 4 ranks too low: {speedup}"
        );
    }

    #[test]
    fn edd_runs_on_triangle_meshes() {
        // The element-agnostic pipeline: T3 subdomains through the same
        // distributed solver, checked against the assembled T3 system.
        let tmesh = parfem_mesh::TriMesh::cantilever(8, 3);
        let mut dm = DofMap::new(tmesh.n_nodes());
        for n in tmesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        loads[dm.dof(tmesh.node_at(8, 3), 1)] = -1.0;
        let part = parfem_mesh::ElementPartition::strips_x_tri(&tmesh, 3);
        let systems: Vec<parfem_fem::SubdomainSystem> = part
            .subdomains_of(&tmesh)
            .iter()
            .map(|s| parfem_fem::SubdomainSystem::build_tri(&tmesh, &dm, &mat, s, &loads, None))
            .collect();
        let out = crate::driver::solve_edd_systems(
            &systems,
            dm.n_dofs(),
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        // Residual against the assembled T3 system.
        let k_raw = parfem_fem::tri3::assemble_stiffness(&tmesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = parfem_fem::assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let r = k_bc.spmv(&out.u);
        let err: f64 = r
            .iter()
            .zip(&rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5, "T3 residual {err}");
    }

    #[test]
    fn edd_runs_on_quad8_meshes() {
        let emesh = parfem_mesh::Quad8Mesh::cantilever(6, 2);
        let mut dm = DofMap::new(emesh.n_nodes());
        for n in emesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        for n in emesh.edge_nodes(Edge::Right) {
            loads[dm.dof(n, 0)] = 0.2;
        }
        let part = parfem_mesh::ElementPartition::strips_x_quad8(&emesh, 3);
        let systems: Vec<parfem_fem::SubdomainSystem> = part
            .subdomains_of(&emesh)
            .iter()
            .map(|s| parfem_fem::SubdomainSystem::build_quad8(&emesh, &dm, &mat, s, &loads, None))
            .collect();
        let out = crate::driver::solve_edd_systems(
            &systems,
            dm.n_dofs(),
            MachineModel::ideal(),
            &SolverConfig::default(),
        );
        assert!(out.history.converged());
        let k_raw = parfem_fem::quad8s::assemble_stiffness(&emesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = parfem_fem::assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let r = k_bc.spmv(&out.u);
        let err: f64 = r
            .iter()
            .zip(&rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-5 * scale.max(1.0), "Q8 residual {err}");
    }

    #[test]
    fn trace_comm_counts_match_live_stats_for_edd_solve() {
        // The trace reconstructs communication by *counting events*, so
        // agreement with the live CommStats is a real integrity check of
        // the whole instrumentation path (ISSUE acceptance criterion).
        let (mesh, dm, mat, loads) = problem(10, 4);
        let part = ElementPartition::strips_x(&mesh, 4);
        let sink = parfem_trace::TraceSink::recording();
        let out = solve_edd_traced(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::sgi_origin(),
            &SolverConfig::default(),
            &sink,
        );
        assert!(out.history.converged());
        let events = sink.take_events();
        let report = parfem_trace::TraceReport::from_events(&events);
        assert_eq!(report.nranks(), 4);
        for rank in &report.ranks {
            let live = &out.reports[rank.rank].stats;
            assert_eq!(rank.comm.sends, live.sends, "rank {} sends", rank.rank);
            assert_eq!(rank.comm.recvs, live.recvs, "rank {} recvs", rank.rank);
            assert_eq!(rank.comm.bytes_sent, live.bytes_sent);
            assert_eq!(rank.comm.bytes_received, live.bytes_received);
            assert_eq!(rank.comm.allreduces, live.allreduces);
            assert_eq!(rank.comm.allreduce_bytes, live.allreduce_bytes);
            assert_eq!(rank.comm.barriers, live.barriers);
            assert_eq!(rank.comm.neighbor_exchanges, live.neighbor_exchanges);
            assert!((rank.final_virt - out.reports[rank.rank].virtual_time).abs() < 1e-12);
        }
        // The solve summary instant reached the trace intact.
        let s = report.solve.as_ref().expect("solve summary");
        assert!(s.converged);
        assert_eq!(s.iterations, out.history.iterations() as u64);
        assert_eq!(s.variant, "edd-enhanced");
    }

    #[test]
    fn trace_round_trips_through_jsonl() {
        // emit → encode → parse → aggregate must equal in-memory aggregate.
        let (mesh, dm, mat, loads) = problem(6, 3);
        let part = ElementPartition::strips_x(&mesh, 3);
        let sink = parfem_trace::TraceSink::recording();
        let _ = solve_edd_traced(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &SolverConfig::default(),
            &sink,
        );
        let events = sink.take_events();
        let text = parfem_trace::jsonl::encode_all(&events);
        let parsed = parfem_trace::jsonl::decode_all(&text).expect("parseable JSONL");
        assert_eq!(events.len(), parsed.len());
        let direct = parfem_trace::TraceReport::from_events(&events);
        let round = parfem_trace::TraceReport::from_events(&parsed);
        assert_eq!(direct.comm_totals(), round.comm_totals());
        assert_eq!(direct.iters.len(), round.iters.len());
        for (a, b) in direct.ranks.iter().zip(&round.ranks) {
            assert_eq!(a.comm.sends, b.comm.sends);
            assert_eq!(a.comm.flops, b.comm.flops);
        }
    }

    #[test]
    fn untraced_solve_is_unaffected_by_instrumentation() {
        // The disabled sink must leave results bit-identical to the traced
        // run (tracing reads state; it never perturbs the solve).
        let (mesh, dm, mat, loads) = problem(8, 3);
        let part = ElementPartition::strips_x(&mesh, 4);
        let cfg = SolverConfig::default();
        let plain = solve_edd(&mesh, &dm, &mat, &loads, &part, MachineModel::ideal(), &cfg);
        let sink = parfem_trace::TraceSink::recording();
        let traced = solve_edd_traced(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ideal(),
            &cfg,
            &sink,
        );
        assert_eq!(plain.u, traced.u);
        assert_eq!(
            plain.history.relative_residuals,
            traced.history.relative_residuals
        );
        assert_eq!(plain.modeled_time, traced.modeled_time);
    }

    #[test]
    fn overlap_is_bit_identical_and_faster_on_latency_bound_machines() {
        // The overlapped schedule reorders only *when* rows are computed
        // relative to the in-flight exchange, never the arithmetic — so the
        // solution and residual history must be bit-identical — while the
        // modeled time strictly improves on a high-latency machine where
        // the interface exchange dominates.
        let (mesh, dm, mat, loads) = problem(16, 6);
        let part = ElementPartition::strips_x(&mesh, 4);
        let blocking = SolverConfig::default();
        let overlapped = SolverConfig {
            overlap: true,
            ..Default::default()
        };
        let b = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &blocking,
        );
        let o = solve_edd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &overlapped,
        );
        assert_eq!(b.u, o.u, "overlap must not change the solution bits");
        assert_eq!(
            b.history.relative_residuals, o.history.relative_residuals,
            "overlap must not change the residual history bits"
        );
        assert!(
            o.modeled_time < b.modeled_time,
            "overlap must strictly improve modeled time: {} vs {}",
            o.modeled_time,
            b.modeled_time
        );
        // Same communication volume either way: only the schedule differs.
        for (rb, ro) in b.reports.iter().zip(&o.reports) {
            assert_eq!(rb.stats.sends, ro.stats.sends);
            assert_eq!(rb.stats.bytes_sent, ro.stats.bytes_sent);
            assert_eq!(rb.stats.neighbor_exchanges, ro.stats.neighbor_exchanges);
        }
    }

    #[test]
    fn rdd_overlap_is_bit_identical_and_faster_on_latency_bound_machines() {
        let (mesh, dm, mat, loads) = problem(16, 6);
        let part = NodePartition::contiguous(mesh.n_nodes(), 4);
        let blocking = SolverConfig::default();
        let overlapped = SolverConfig {
            overlap: true,
            ..Default::default()
        };
        let b = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &blocking,
        );
        let o = solve_rdd(
            &mesh,
            &dm,
            &mat,
            &loads,
            &part,
            MachineModel::ibm_sp2(),
            &overlapped,
        );
        assert_eq!(b.u, o.u, "overlap must not change the solution bits");
        assert_eq!(
            b.history.relative_residuals, o.history.relative_residuals,
            "overlap must not change the residual history bits"
        );
        assert!(
            o.modeled_time < b.modeled_time,
            "overlap must strictly improve modeled time: {} vs {}",
            o.modeled_time,
            b.modeled_time
        );
    }

    #[test]
    fn precond_spec_names_match_paper_labels() {
        assert_eq!(PrecondSpec::None.name(), "none");
        assert_eq!(
            PrecondSpec::Gls {
                degree: 10,
                theta: None
            }
            .name(),
            "gls(10)"
        );
        assert_eq!(PrecondSpec::Neumann { degree: 20 }.name(), "neumann(20)");
        assert_eq!(PrecondSpec::Jacobi.name(), "jacobi");
    }
}
