//! Typed solve failures.
//!
//! A distributed solve can fail for two structural reasons: the
//! communication substrate degraded (a peer died, a message was
//! undeliverable, a collective timed out — [`parfem_msg::CommError`]), or a
//! local factorization hit a numerical wall (a singular floating subdomain
//! under ILU(0) — [`parfem_sparse::SparseError`]). [`SolveError`] unifies
//! both so drivers and callers can match on *what* went wrong instead of
//! unwinding a panic. Non-convergence is **not** an error: the solver
//! returns its [`parfem_krylov::ConvergenceHistory`] with a stop reason for
//! that.

use parfem_msg::CommError;
use parfem_sparse::SparseError;
use std::fmt;

/// A typed failure of a distributed solve on one rank.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The communication layer failed (peer death, timeout, exhausted
    /// retransmissions). Carries the first [`CommError`] the rank's
    /// endpoint latched.
    Comm(CommError),
    /// A preconditioner factorization failed (e.g. ILU(0) on a singular
    /// floating subdomain, the paper's Sec. 5 EDD failure mode).
    Precond(SparseError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Comm(e) => write!(f, "communication failure: {e}"),
            SolveError::Precond(e) => write!(f, "preconditioner failure: {e}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Comm(e) => Some(e),
            SolveError::Precond(e) => Some(e),
        }
    }
}

impl From<CommError> for SolveError {
    fn from(e: CommError) -> Self {
        SolveError::Comm(e)
    }
}

impl From<SparseError> for SolveError {
    fn from(e: SparseError) -> Self {
        SolveError::Precond(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let c: SolveError = CommError::Poisoned.into();
        assert!(matches!(c, SolveError::Comm(CommError::Poisoned)));
        assert!(c.to_string().contains("communication failure"));
        let p: SolveError = SparseError::ZeroPivot { row: 3, value: 0.0 }.into();
        assert!(p.to_string().contains("preconditioner failure"));
        assert!(std::error::Error::source(&p).is_some());
    }
}
