//! Row-based (block-row) domain decomposition — the paper's Section 4
//! baseline (Algorithm 8), the strategy of PSPARSLIB/Aztec/pARMS.
//!
//! A node partition induces a block-row partition of the *assembled* matrix:
//! rank `s` owns the rows of its nodes' DOFs. Each local row block is split
//! into `A_loc` (columns owned by this rank, renumbered locally) and `A_ext`
//! (columns owned by neighbours). The matrix–vector product (Eq. 48)
//!
//! ```text
//! scatter x_bnd to neighbours;  gather x_ext from neighbours;
//! y = A_loc x_loc + A_ext x_ext
//! ```
//!
//! needs one halo exchange per product — like EDD — but the exchanged
//! values are *matrix-coupled* rows rather than interface sums, the
//! assembled matrix must exist (assembly cost + interface communication at
//! setup), and a local DOF reordering is required for the split. Inner
//! products are trivially deduplicated (rows are disjoint): one local dot
//! plus an all-reduce.

use crate::error::SolveError;
use crate::solver::{dd_fgmres, DdResult, DistributedOperator};
use parfem_krylov::gmres::GmresConfig;
use parfem_krylov::KrylovWorkspace;
use parfem_mesh::NodePartition;
use parfem_msg::Communicator;
use parfem_precond::{InterfaceConsistency, Preconditioner};
use parfem_sparse::{kernels, CooMatrix, CsrMatrix, LinearOperator};
use parfem_trace::MetricsRegistry;
use std::cell::RefCell;

/// One rank's block-row system.
#[derive(Debug, Clone)]
pub struct RddSystem {
    /// This block's rank.
    pub rank: usize,
    /// Global DOFs of the owned rows, ascending.
    pub rows: Vec<usize>,
    /// Coupling among owned DOFs (`n_loc × n_loc`, locally renumbered).
    pub a_loc: CsrMatrix,
    /// Coupling to external DOFs (`n_loc × n_ext`).
    pub a_ext: CsrMatrix,
    /// Global DOFs of the external columns, ascending.
    pub ext_dofs: Vec<usize>,
    /// Local right-hand side (owned rows of the global RHS).
    pub b_loc: Vec<f64>,
    /// Per neighbour `(rank, local row indices to send)`, sorted by rank;
    /// the indices are in the neighbour's expected (global-DOF) order.
    pub send_to: Vec<(usize, Vec<usize>)>,
    /// Per neighbour `(rank, external-column positions to fill)`, sorted by
    /// rank, in the same canonical order as the sender's list.
    pub recv_from: Vec<(usize, Vec<usize>)>,
    /// When set, the operator posts the halo exchange nonblocking and
    /// computes the `A_loc` product while the messages are in flight
    /// (bit-identical results; only the modeled time changes).
    pub overlap: bool,
}

impl RddSystem {
    /// Number of owned DOFs.
    pub fn n_local(&self) -> usize {
        self.rows.len()
    }

    /// Builds all `P` block-row systems from the assembled system.
    ///
    /// # Panics
    /// Panics if shapes are inconsistent.
    pub fn build_all(a: &CsrMatrix, b: &[f64], part: &NodePartition) -> Vec<RddSystem> {
        let n = a.n_rows();
        assert_eq!(b.len(), n, "rdd: rhs length mismatch");
        let n_nodes = part.owners().len();
        assert!(
            n_nodes > 0 && n.is_multiple_of(n_nodes),
            "rdd: node partition does not match matrix"
        );
        // DOFs per node follows from the matrix itself, so the same block
        // split serves every physics (1 scalar, 2 plane, 3 solid DOFs).
        let dofs_per_node = n / n_nodes;
        let p = part.n_parts();
        let dof_owner = |d: usize| part.owner(d / dofs_per_node);

        // Owned rows per rank, ascending, and global -> local row maps.
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); p];
        for d in 0..n {
            rows[dof_owner(d)].push(d);
        }
        let mut local_of = vec![usize::MAX; n];
        for r in rows.iter() {
            for (l, &d) in r.iter().enumerate() {
                local_of[d] = l;
            }
        }

        // External column sets per rank.
        let mut ext: Vec<Vec<usize>> = vec![Vec::new(); p];
        for s in 0..p {
            let mut set: Vec<usize> = Vec::new();
            for &row in &rows[s] {
                let (cols, _) = a.row(row);
                for &c in cols {
                    if dof_owner(c) != s && !set.contains(&c) {
                        set.push(c);
                    }
                }
            }
            set.sort_unstable();
            ext[s] = set;
        }

        let mut out = Vec::with_capacity(p);
        for s in 0..p {
            let n_loc = rows[s].len();
            let mut loc_coo = CooMatrix::new(n_loc, n_loc);
            let mut ext_coo = CooMatrix::new(n_loc, ext[s].len().max(1));
            for (lr, &row) in rows[s].iter().enumerate() {
                let (cols, vals) = a.row(row);
                for (&c, &v) in cols.iter().zip(vals) {
                    if dof_owner(c) == s {
                        loc_coo.push(lr, local_of[c], v).expect("in bounds");
                    } else {
                        let pos = ext[s].binary_search(&c).expect("ext col present");
                        ext_coo.push(lr, pos, v).expect("in bounds");
                    }
                }
            }
            // Communication lists: I receive ext dofs grouped by owner; the
            // owner sends its matching rows in the same ascending-dof order.
            let mut recv_from: Vec<(usize, Vec<usize>)> = Vec::new();
            for (pos, &d) in ext[s].iter().enumerate() {
                let o = dof_owner(d);
                match recv_from.iter_mut().find(|(r, _)| *r == o) {
                    Some((_, list)) => list.push(pos),
                    None => recv_from.push((o, vec![pos])),
                }
            }
            recv_from.sort_by_key(|(r, _)| *r);
            out.push(RddSystem {
                rank: s,
                rows: rows[s].clone(),
                a_loc: loc_coo.to_csr(),
                a_ext: ext_coo.to_csr(),
                ext_dofs: ext[s].clone(),
                b_loc: rows[s].iter().map(|&d| b[d]).collect(),
                send_to: Vec::new(), // filled below
                recv_from,
                overlap: false,
            });
        }
        // Fill send lists from the receivers' needs.
        for s in 0..p {
            let needs: Vec<(usize, Vec<usize>)> = out[s]
                .recv_from
                .iter()
                .map(|(o, positions)| {
                    (
                        *o,
                        positions.iter().map(|&pos| out[s].ext_dofs[pos]).collect(),
                    )
                })
                .collect();
            for (o, dofs) in needs {
                let send_rows: Vec<usize> = dofs.iter().map(|&d| local_of[d]).collect();
                out[o].send_to.push((s, send_rows));
            }
        }
        for sys in &mut out {
            sys.send_to.sort_by_key(|(r, _)| *r);
        }
        out
    }

    /// Restriction of a global vector to the owned rows.
    pub fn restrict(&self, global: &[f64]) -> Vec<f64> {
        self.rows.iter().map(|&d| global[d]).collect()
    }

    /// Scatters local values into a global vector.
    pub fn scatter(&self, local: &[f64], global: &mut [f64]) {
        for (&d, &v) in self.rows.iter().zip(local) {
            global[d] = v;
        }
    }
}

/// Persistent halo-exchange staging for [`RddOperator`]: neighbour ranks,
/// per-neighbour send/receive buffers, and the gathered external vector.
/// Reused across matvecs so the Eq. 48 product allocates nothing once warm.
#[derive(Debug, Clone, Default)]
struct RddHaloBuffers {
    ranks: Vec<usize>,
    send: Vec<Vec<f64>>,
    recv: Vec<Vec<f64>>,
    x_ext: Vec<f64>,
}

impl RddHaloBuffers {
    /// Sizes the per-neighbour buffers for `sys` (idempotent).
    fn ensure(&mut self, sys: &RddSystem) {
        if self.ranks.len() != sys.send_to.len()
            || self
                .ranks
                .iter()
                .zip(&sys.send_to)
                .any(|(&r, (nr, _))| r != *nr)
        {
            self.ranks.clear();
            self.ranks.extend(sys.send_to.iter().map(|(r, _)| *r));
            self.send.resize(sys.send_to.len(), Vec::new());
            self.recv.resize(sys.send_to.len(), Vec::new());
        }
    }
}

/// The row-based distributed operator.
pub struct RddOperator<'a, C: Communicator> {
    /// The local block-row system.
    pub sys: &'a RddSystem,
    /// Communicator endpoint.
    pub comm: &'a C,
    /// Halo staging, behind interior mutability because
    /// [`LinearOperator::apply_into`] takes `&self`.
    halo: RefCell<RddHaloBuffers>,
    /// Solver-level metrics sink (disabled by default).
    metrics: MetricsRegistry,
}

impl<'a, C: Communicator> RddOperator<'a, C> {
    /// Wraps a block-row system as the distributed operator.
    pub fn new(sys: &'a RddSystem, comm: &'a C) -> Self {
        RddOperator {
            sys,
            comm,
            halo: RefCell::new(RddHaloBuffers::default()),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Attaches a [`MetricsRegistry`] so [`dd_fgmres`] records solver
    /// counters (rank 0 only, to avoid double counting in SPMD runs).
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Performs the halo exchange for `x_loc`, leaving the external values
    /// in `halo.x_ext` (in `ext_dofs` order).
    fn gather_ext(&self, x: &[f64], halo: &mut RddHaloBuffers) {
        let sys = self.sys;
        // One merged neighbour set: FEM matrices are structurally symmetric,
        // so senders and receivers pair up.
        halo.ensure(sys);
        for ((_, idx), out) in sys.send_to.iter().zip(halo.send.iter_mut()) {
            out.clear();
            out.extend(idx.iter().map(|&l| x[l]));
        }
        self.comm
            .exchange_into(&halo.ranks, &halo.send, &mut halo.recv);
        halo.x_ext.clear();
        halo.x_ext.resize(sys.ext_dofs.len().max(1), 0.0);
        for ((rank, positions), buf) in sys.recv_from.iter().zip(&halo.recv) {
            debug_assert_eq!(
                *rank,
                sys.send_to[sys.recv_from.iter().position(|(r, _)| r == rank).unwrap()].0
            );
            for (&pos, &v) in positions.iter().zip(buf) {
                halo.x_ext[pos] = v;
            }
        }
    }
}

impl<C: Communicator> LinearOperator for RddOperator<'_, C> {
    fn dim(&self) -> usize {
        self.sys.n_local()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        let sys = self.sys;
        assert_eq!(x.len(), sys.n_local(), "rdd apply: x length mismatch");
        let mut halo = self.halo.borrow_mut();
        if sys.overlap && !sys.send_to.is_empty() {
            // Overlapped schedule: stage and post the halo sends, compute
            // the (dominant) A_loc product while the messages fly, then
            // complete the exchange and apply A_ext. The arithmetic and its
            // order are identical to the blocking path — A_loc rows never
            // read external values — so the result is bit-identical; only
            // the modeled time changes (max instead of sum).
            let halo = &mut *halo;
            halo.ensure(sys);
            for ((_, idx), out) in sys.send_to.iter().zip(halo.send.iter_mut()) {
                out.clear();
                out.extend(idx.iter().map(|&l| x[l]));
            }
            let handle = self.comm.start_exchange(&halo.ranks, &halo.send);
            sys.a_loc.spmv_into(x, y);
            self.comm.work(sys.a_loc.spmv_flops());
            self.comm
                .finish_exchange(handle, &halo.ranks, &mut halo.recv);
            halo.x_ext.clear();
            halo.x_ext.resize(sys.ext_dofs.len().max(1), 0.0);
            for ((_, positions), buf) in sys.recv_from.iter().zip(&halo.recv) {
                for (&pos, &v) in positions.iter().zip(buf) {
                    halo.x_ext[pos] = v;
                }
            }
            if !sys.ext_dofs.is_empty() {
                sys.a_ext.spmv_add_into(&halo.x_ext, y);
            }
            self.comm.work(sys.a_ext.spmv_flops());
        } else {
            self.gather_ext(x, &mut halo);
            sys.a_loc.spmv_into(x, y);
            if !sys.ext_dofs.is_empty() {
                sys.a_ext.spmv_add_into(&halo.x_ext, y);
            }
            self.comm
                .work(sys.a_loc.spmv_flops() + sys.a_ext.spmv_flops());
        }
        if let Some(tracer) = self.comm.tracer() {
            tracer.add_count("spmv_calls", 1);
            tracer.add_count("spmv_rows", sys.n_local() as u64);
            tracer.add_count(
                "spmv_flops",
                sys.a_loc.spmv_flops() + sys.a_ext.spmv_flops(),
            );
        }
    }

    fn apply_flops(&self) -> u64 {
        self.sys.a_loc.spmv_flops() + self.sys.a_ext.spmv_flops()
    }
}

/// RDD block rows are disjoint — nothing is replicated, so rank-local
/// solves are already globally consistent and the hook is the default
/// no-op.
impl<C: Communicator> InterfaceConsistency for RddOperator<'_, C> {}

impl<C: Communicator> DistributedOperator for RddOperator<'_, C> {
    type Comm = C;

    fn comm(&self) -> &C {
        self.comm
    }

    fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// `r ← b_loc − A x` over the owned rows (one halo exchange).
    fn residual_into(&self, x: &[f64], r: &mut [f64]) {
        self.apply_into(x, r);
        for (ri, bi) in r.iter_mut().zip(&self.sys.b_loc) {
            *ri = bi - *ri;
        }
        self.comm.work(r.len() as u64);
    }

    /// Rows are disjoint across ranks, so the local partial is a plain dot.
    fn dot_partial(&self, x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(p, q)| p * q).sum()
    }

    fn dot_flops_factor(&self) -> u64 {
        2 // multiply, accumulate — no multiplicity weighting
    }

    fn gs_dots(&self, w: &[f64], basis: &[Vec<f64>], reduce: &mut [f64]) {
        kernels::dot_sweep(w, basis, reduce);
        reduce[basis.len()] = self.dot_partial(w, w);
    }
}

/// Rank-local ILU(0) preconditioning for the row-based solver — the
/// non-overlapping additive Schwarz / block-Jacobi scheme the paper's
/// Section 4 attributes to pARMS/PSPARSLIB ("additive Schwartz, Schur
/// complement and ILU methods ... extensions of the block Jacobi method
/// whose kernel is to solve the local system `K_loc z = v`").
///
/// Application is communication-free: each rank back-solves its own
/// diagonal block. Construction fails on a singular local block, mirroring
/// the floating-subdomain failure of EDD-local ILU.
#[derive(Debug, Clone)]
pub struct RddLocalIlu {
    ilu: parfem_sparse::Ilu0,
}

impl RddLocalIlu {
    /// Factorizes this rank's local block `A_loc`.
    ///
    /// # Errors
    /// Propagates [`parfem_sparse::SparseError::ZeroPivot`] for singular
    /// blocks.
    pub fn factorize(sys: &RddSystem) -> Result<Self, parfem_sparse::SparseError> {
        Ok(RddLocalIlu {
            ilu: parfem_sparse::Ilu0::factorize(&sys.a_loc)?,
        })
    }
}

impl<C: Communicator> Preconditioner<RddOperator<'_, C>> for RddLocalIlu {
    fn apply_into(&self, _op: &RddOperator<'_, C>, v: &[f64], z: &mut [f64]) {
        self.ilu.solve_into(v, z);
    }

    fn name(&self) -> String {
        "local-ilu0".to_string()
    }
}

/// Result of the RDD solve on one rank (`x` is over the owned rows; the
/// history is identical on all ranks).
pub type RddResult = DdResult;

/// Restarted flexible GMRES on the block-row operator (Algorithm 8).
///
/// Allocates a throwaway [`KrylovWorkspace`]; callers solving repeatedly
/// should hold one and use [`rdd_fgmres_with`].
///
/// # Errors
/// [`SolveError::Comm`] when the communication substrate degrades mid-solve
/// (see [`dd_fgmres`]).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn rdd_fgmres<'a, C, P>(
    comm: &'a C,
    sys: &'a RddSystem,
    precond: &P,
    x0: &[f64],
    cfg: &GmresConfig,
) -> Result<RddResult, SolveError>
where
    C: Communicator,
    P: Preconditioner<RddOperator<'a, C>> + ?Sized,
{
    let mut ws = KrylovWorkspace::new();
    rdd_fgmres_with(comm, sys, precond, x0, cfg, &mut ws)
}

/// [`rdd_fgmres`] through a caller-owned [`KrylovWorkspace`]: once the
/// workspace (and the operator's halo buffers) are warm, restarts and
/// iterations perform no heap allocation on this rank, and the iterates are
/// bit-identical to the allocating entry point.
///
/// # Errors
/// [`SolveError::Comm`] when the communication substrate degrades mid-solve
/// (see [`dd_fgmres`]).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn rdd_fgmres_with<'a, C, P>(
    comm: &'a C,
    sys: &'a RddSystem,
    precond: &P,
    x0: &[f64],
    cfg: &GmresConfig,
    ws: &mut KrylovWorkspace,
) -> Result<RddResult, SolveError>
where
    C: Communicator,
    P: Preconditioner<RddOperator<'a, C>> + ?Sized,
{
    rdd_fgmres_metered(
        comm,
        sys,
        precond,
        x0,
        cfg,
        ws,
        &MetricsRegistry::disabled(),
    )
}

/// [`rdd_fgmres_with`] plus a [`MetricsRegistry`]: solver counters
/// (iterations, restarts, preconditioner applies, convergence outcome)
/// are recorded on rank 0. A disabled registry makes this identical to
/// [`rdd_fgmres_with`].
///
/// # Errors
/// [`SolveError::Comm`] when the communication substrate degrades mid-solve
/// (see [`dd_fgmres`]).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn rdd_fgmres_metered<'a, C, P>(
    comm: &'a C,
    sys: &'a RddSystem,
    precond: &P,
    x0: &[f64],
    cfg: &GmresConfig,
    ws: &mut KrylovWorkspace,
    metrics: &MetricsRegistry,
) -> Result<RddResult, SolveError>
where
    C: Communicator,
    P: Preconditioner<RddOperator<'a, C>> + ?Sized,
{
    if let Some(tracer) = comm.tracer() {
        tracer.span_begin("fgmres", comm.virtual_time());
    }
    let op = RddOperator::new(sys, comm).with_metrics(metrics.clone());
    let res = dd_fgmres(&op, precond, x0, cfg, ws);
    if let Some(tracer) = comm.tracer() {
        tracer.span_end("fgmres", comm.virtual_time());
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_fem::{assembly, Material};
    use parfem_krylov::gmres::fgmres;
    use parfem_mesh::{DofMap, Edge, QuadMesh};
    use parfem_msg::{run_ranks, MachineModel};
    use parfem_precond::{GlsPrecond, IdentityPrecond};
    use parfem_sparse::scaling::scale_system;

    fn assembled(nx: usize, ny: usize) -> (CsrMatrix, Vec<f64>, usize) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let n_nodes = mesh.n_nodes();
        (sys.stiffness, sys.rhs, n_nodes)
    }

    #[test]
    fn block_row_split_reconstructs_matrix() {
        let (a, b, n_nodes) = assembled(5, 2);
        let part = NodePartition::contiguous(n_nodes, 3);
        let systems = RddSystem::build_all(&a, &b, &part);
        // Every row of A must be fully represented between a_loc and a_ext.
        for sys in &systems {
            for (lr, &row) in sys.rows.iter().enumerate() {
                let (cols, vals) = a.row(row);
                for (&c, &v) in cols.iter().zip(vals) {
                    let got = if part.owner(c / 2) == sys.rank {
                        let lc = sys.rows.binary_search(&c).expect("owned col");
                        sys.a_loc.get(lr, lc)
                    } else {
                        let pos = sys.ext_dofs.binary_search(&c).expect("ext col");
                        sys.a_ext.get(lr, pos)
                    };
                    assert_eq!(got, v, "row {row} col {c}");
                }
            }
        }
    }

    #[test]
    fn distributed_matvec_matches_sequential() {
        let (a, b, n_nodes) = assembled(6, 3);
        let part = NodePartition::contiguous(n_nodes, 4);
        let systems = RddSystem::build_all(&a, &b, &part);
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 5 % 13) as f64) - 6.0).collect();
        let want = a.spmv(&x);
        let out = run_ranks(4, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let op = RddOperator::new(sys, comm);
            let xl = sys.restrict(&x);
            let y = op.apply(&xl);
            let wl = sys.restrict(&want);
            y.iter()
                .zip(&wl)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0_f64, f64::max)
        });
        for err in out.results {
            assert!(err < 1e-10, "max deviation {err}");
        }
    }

    #[test]
    fn rdd_solve_matches_sequential_solution() {
        let (k, f, n_nodes) = assembled(8, 2);
        let (a, b, sc) = scale_system(&k, &f).unwrap();
        let cfg = GmresConfig {
            tol: 1e-9,
            ..Default::default()
        };
        // Sequential reference.
        let seq = fgmres(
            &a,
            &GlsPrecond::for_scaled_system(5),
            &b,
            &vec![0.0; a.n_rows()],
            &cfg,
        );
        let u_seq = sc.unscale_solution(&seq.x);
        // Parallel.
        let part = NodePartition::contiguous(n_nodes, 4);
        let systems = RddSystem::build_all(&a, &b, &part);
        let gls = GlsPrecond::for_scaled_system(5);
        let out = run_ranks(4, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let res = rdd_fgmres(comm, sys, &gls, &vec![0.0; sys.n_local()], &cfg)
                .expect("fault-free solve must not error");
            (res.x, res.history)
        });
        let mut x = vec![0.0; a.n_rows()];
        for (rank, (xl, _)) in out.results.iter().enumerate() {
            systems[rank].scatter(xl, &mut x);
        }
        let u_par = sc.unscale_solution(&x);
        let h_par = &out.results[0].1;
        assert!(h_par.converged());
        assert_eq!(h_par.iterations(), seq.history.iterations());
        for (p, s) in u_par.iter().zip(&u_seq) {
            assert!((p - s).abs() < 1e-6 * (1.0 + s.abs()), "{p} vs {s}");
        }
    }

    #[test]
    fn rdd_unpreconditioned_converges() {
        let (k, f, n_nodes) = assembled(5, 2);
        let (a, b, _) = scale_system(&k, &f).unwrap();
        let part = NodePartition::contiguous(n_nodes, 2);
        let systems = RddSystem::build_all(&a, &b, &part);
        let cfg = GmresConfig {
            tol: 1e-7,
            max_iters: 2000,
            ..Default::default()
        };
        let out = run_ranks(2, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let res = rdd_fgmres(comm, sys, &IdentityPrecond, &vec![0.0; sys.n_local()], &cfg)
                .expect("fault-free solve must not error");
            res.history.converged()
        });
        assert!(out.results.iter().all(|&c| c));
    }

    #[test]
    fn single_rank_rdd_is_sequential() {
        let (k, f, n_nodes) = assembled(4, 2);
        let (a, b, _) = scale_system(&k, &f).unwrap();
        let part = NodePartition::contiguous(n_nodes, 1);
        let systems = RddSystem::build_all(&a, &b, &part);
        assert!(systems[0].ext_dofs.is_empty());
        assert!(systems[0].send_to.is_empty());
        let cfg = GmresConfig::default();
        let seq = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; a.n_rows()], &cfg);
        let out = run_ranks(1, MachineModel::ideal(), |comm| {
            let res = rdd_fgmres(
                comm,
                &systems[0],
                &IdentityPrecond,
                &vec![0.0; systems[0].n_local()],
                &cfg,
            )
            .expect("fault-free solve must not error");
            (res.x, res.history.iterations())
        });
        assert_eq!(out.results[0].1, seq.history.iterations());
        for (p, s) in out.results[0].0.iter().zip(&seq.x) {
            assert!((p - s).abs() < 1e-9 * (1.0 + s.abs()));
        }
    }

    #[test]
    fn local_ilu_preconditioning_accelerates_rdd() {
        // The additive Schwarz scheme of Section 4: local ILU(0) per rank.
        let (k, f, n_nodes) = assembled(10, 4);
        let (a, b, _) = scale_system(&k, &f).unwrap();
        let part = NodePartition::contiguous(n_nodes, 3);
        let systems = RddSystem::build_all(&a, &b, &part);
        let cfg = GmresConfig {
            tol: 1e-8,
            max_iters: 5000,
            ..Default::default()
        };
        let out = run_ranks(3, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let ilu = RddLocalIlu::factorize(sys).expect("clamped blocks factorize");
            let pre = rdd_fgmres(comm, sys, &ilu, &vec![0.0; sys.n_local()], &cfg)
                .expect("fault-free solve must not error");
            let plain = rdd_fgmres(comm, sys, &IdentityPrecond, &vec![0.0; sys.n_local()], &cfg)
                .expect("fault-free solve must not error");
            (
                pre.history.iterations(),
                plain.history.iterations(),
                pre.history.converged() && plain.history.converged(),
            )
        });
        for (pre, plain, both) in out.results {
            assert!(both);
            assert!(
                pre < plain,
                "local ILU must accelerate RDD: {pre} vs {plain}"
            );
        }
    }

    #[test]
    fn local_ilu_application_is_communication_free() {
        let (k, f, n_nodes) = assembled(6, 2);
        let (a, b, _) = scale_system(&k, &f).unwrap();
        let part = NodePartition::contiguous(n_nodes, 2);
        let systems = RddSystem::build_all(&a, &b, &part);
        let out = run_ranks(2, MachineModel::ideal(), |comm| {
            let sys = &systems[comm.rank()];
            let ilu = RddLocalIlu::factorize(sys).unwrap();
            let before = comm.stats().sends;
            let op = RddOperator::new(sys, comm);
            let v = vec![1.0; sys.n_local()];
            let _ = ilu.apply(&op, &v);
            comm.stats().sends - before
        });
        assert_eq!(
            out.results,
            vec![0, 0],
            "preconditioner must not communicate"
        );
    }

    #[test]
    fn communication_lists_are_symmetric() {
        let (a, b, n_nodes) = assembled(6, 2);
        let part = NodePartition::contiguous(n_nodes, 3);
        let systems = RddSystem::build_all(&a, &b, &part);
        for sys in &systems {
            assert_eq!(sys.send_to.len(), sys.recv_from.len());
            for ((sr, sl), (rr, rl)) in sys.send_to.iter().zip(&sys.recv_from) {
                assert_eq!(sr, rr, "send/recv neighbour sets must pair");
                // My send list to neighbour matches what that neighbour
                // expects to receive from me, entry for entry.
                let other = &systems[*sr];
                let (_, their_recv) = other
                    .recv_from
                    .iter()
                    .find(|(r, _)| *r == sys.rank)
                    .expect("symmetric link");
                assert_eq!(sl.len(), their_recv.len());
                let _ = rl;
            }
        }
    }
}
