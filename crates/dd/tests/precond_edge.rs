//! Degenerate-geometry edge cases for the preconditioner stack: the
//! smallest subdomains a partitioner can hand a rank (one element, a
//! handful of DOFs) and the singular local blocks of floating subdomains.
//!
//! Two contracts:
//!
//! - the scratch-buffer application paths (`apply_scratch`) stay finite and
//!   bit-identical to the allocating paths on a 1-element subdomain, where
//!   every buffer-length corner case (tiny `n`, clamped rows) is live;
//! - ILU(0) on a singular floating-subdomain block reports a typed
//!   [`SparseError::ZeroPivot`] — never a factorization full of NaNs.

use parfem_fem::{assembly, Material, SubdomainSystem};
use parfem_mesh::{DofMap, Edge, ElementPartition, NodePartition, QuadMesh};
use parfem_precond::{GlsPrecond, NeumannPrecond, Preconditioner};
use parfem_sparse::{scaling::scale_system, CsrMatrix, Ilu0, SparseError};

/// The smallest legal problem: one quad element, left edge clamped.
/// Two free nodes -> four DOFs after boundary elimination.
fn one_element_system() -> SubdomainSystem {
    let mesh = QuadMesh::cantilever(1, 1);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, -1.0, &mut loads);
    let part = ElementPartition::strips_x(&mesh, 1);
    let subs = part.subdomains(&mesh);
    SubdomainSystem::build(&mesh, &dm, &mat, &subs[0], &loads, None)
}

/// Runs `precond` through both application paths on `a` and checks the
/// scratch path is finite and bit-identical to the allocating path.
fn assert_scratch_matches_apply<P: Preconditioner<CsrMatrix>>(precond: &P, a: &CsrMatrix) {
    let n = a.n_rows();
    let v: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    let z_alloc = precond.apply(a, &v);

    let mut z_scratch = vec![0.0; n];
    let mut scratch = vec![vec![0.0; n]; precond.scratch_vectors()];
    precond.apply_scratch(a, &v, &mut z_scratch, &mut scratch);

    assert!(
        z_scratch.iter().all(|x| x.is_finite()),
        "{}: non-finite output on n={} system: {:?}",
        precond.name(),
        n,
        z_scratch
    );
    assert_eq!(
        z_alloc,
        z_scratch,
        "{}: scratch path diverged from allocating path",
        precond.name()
    );
}

#[test]
fn gls_apply_scratch_is_finite_and_exact_on_one_element_subdomain() {
    let sys = one_element_system();
    let (scaled, _rhs, _sc) = scale_system(&sys.k_local, &sys.f_local).unwrap();
    for degree in [0, 1, 5, 9] {
        assert_scratch_matches_apply(&GlsPrecond::for_scaled_system(degree), &scaled);
    }
}

#[test]
fn neumann_apply_scratch_is_finite_and_exact_on_one_element_subdomain() {
    let sys = one_element_system();
    let (scaled, _rhs, _sc) = scale_system(&sys.k_local, &sys.f_local).unwrap();
    for degree in [0, 1, 5, 9] {
        assert_scratch_matches_apply(&NeumannPrecond::for_scaled_system(degree), &scaled);
    }
}

#[test]
fn polynomial_apply_scratch_handles_a_one_dof_operator() {
    // The absolute floor: a 1x1 operator, as a one-DOF subdomain would
    // produce. Every recurrence in GLS degenerates to scalars here.
    let a = CsrMatrix::from_diagonal(&[0.5]);
    assert_scratch_matches_apply(&GlsPrecond::for_scaled_system(7), &a);
    assert_scratch_matches_apply(&NeumannPrecond::for_scaled_system(7), &a);
}

/// An interior strip of a clamped-left cantilever has no Dirichlet rows:
/// its local stiffness admits rigid-body motions and is exactly singular.
fn floating_subdomain_block() -> CsrMatrix {
    let mesh = QuadMesh::cantilever(4, 2);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let loads = vec![0.0; dm.n_dofs()];
    let part = ElementPartition::strips_x(&mesh, 4);
    let subs = part.subdomains(&mesh);
    // Strip 2 touches neither the clamped left edge nor the loaded right
    // edge: a textbook floating subdomain.
    SubdomainSystem::build(&mesh, &dm, &mat, &subs[2], &loads, None).k_local
}

#[test]
fn ilu0_on_singular_floating_subdomain_returns_zero_pivot_not_nans() {
    let k = floating_subdomain_block();
    match Ilu0::factorize(&k) {
        Err(SparseError::ZeroPivot { row, value }) => {
            assert!(row < k.n_rows());
            assert!(
                value.abs() < 1e-10,
                "pivot {value} at row {row} should be numerically zero"
            );
        }
        Err(other) => panic!("expected ZeroPivot, got {other:?}"),
        Ok(_) => panic!("factorizing a singular floating block must fail"),
    }
}

#[test]
fn rdd_local_ilu_on_floating_block_propagates_the_typed_error() {
    // Same contract one layer up: the RDD local-ILU wrapper must surface
    // the ZeroPivot rather than hand the solver a NaN factorization. Feed
    // the demonstrably singular floating-strip stiffness in as the global
    // matrix of a one-rank RDD system: its local block is then that same
    // singular matrix.
    let k = floating_subdomain_block();
    let rhs = vec![1.0; k.n_rows()];
    // Pair DOFs into pseudo-"nodes" so the node partition covers all rows.
    let part = NodePartition::contiguous(k.n_rows() / 2, 1);
    let systems = parfem_dd::RddSystem::build_all(&k, &rhs, &part);
    match parfem_dd::RddLocalIlu::factorize(&systems[0]) {
        Err(SparseError::ZeroPivot { .. }) => {}
        Err(other) => panic!("expected ZeroPivot, got {other:?}"),
        Ok(_) => panic!("the singular floating block must fail to factorize"),
    }
}
