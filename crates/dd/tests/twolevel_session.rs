//! Orthogonality and edge-case contracts for the two-level preconditioner
//! inside [`SolveSession`].
//!
//! The two-level coarse correction must be just another value of the
//! preconditioner axis: every other session option — overlapped exchange,
//! recoverable fault injection, tracing, multi-RHS reuse, the graph
//! partitioner, prebuilt systems — composes with it **bit-identically** to
//! its own baseline. On top of that, the constructions the paper's Eq. 45
//! flags as fatal for local factorizations (floating subdomains with no
//! Dirichlet rows, one-element parts with rank-deficient mode blocks) must
//! produce well-posed coarse solves through the pivoting skyline LDLᵀ.

use parfem_dd::{
    DdSolveOutput, EddVariant, PrecondSpec, Problem, SolveSession, SolverConfig, Strategy,
};
use parfem_fem::{assembly, Material, NewmarkParams, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_mesh::{DofMap, Edge, ElementPartition, NodePartition, PartitionerSpec, QuadMesh};
use parfem_msg::{FaultPlan, MachineModel};
use parfem_trace::TraceSink;
use std::time::Duration;

fn problem(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material, Vec<f64>) {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    (mesh, dm, mat, loads)
}

fn cfg(spec: &str) -> SolverConfig {
    SolverConfig {
        gmres: GmresConfig {
            tol: 1e-8,
            ..Default::default()
        },
        precond: PrecondSpec::parse(spec).expect("test spec parses"),
        variant: EddVariant::Enhanced,
        overlap: false,
        faults: None,
        comm_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

fn assert_bit_identical(a: &DdSolveOutput, b: &DdSolveOutput, what: &str) {
    assert_eq!(a.u, b.u, "{what}: solution bits differ");
    assert_eq!(
        a.history.relative_residuals, b.history.relative_residuals,
        "{what}: residual histories differ"
    );
}

/// Overlapped interface exchange changes scheduling only: the two-level
/// EDD solve is bit-identical to the blocking run, coarse correction
/// included.
#[test]
fn twolevel_overlap_matches_blocking() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let blocking = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg("twolevel:rbm:gls-3"))
        .run()
        .expect("blocking two-level run");
    assert!(blocking.history.converged());
    let overlapped = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg("twolevel:rbm:gls-3"))
        .overlap(true)
        .run()
        .expect("overlapped two-level run");
    assert_bit_identical(&blocking, &overlapped, "two-level overlap vs blocking");
}

/// Recoverable fault injection (drops + retry) and tracing leave the
/// two-level numbers untouched — the coarse all-reduce rides the same
/// latched retransmission machinery as every other collective.
#[test]
fn twolevel_faulted_traced_matches_plain_run() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let plain = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg("twolevel:rbm:neumann-2"))
        .machine(MachineModel::ibm_sp2())
        .run()
        .expect("plain two-level run");

    let sink = TraceSink::recording();
    let fancy = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg("twolevel:rbm:neumann-2"))
        .machine(MachineModel::ibm_sp2())
        .faults(
            FaultPlan::new(42)
                .with_drops(0.2)
                .with_retry_policy(30, 1e-3, 2.0),
        )
        .comm_timeout(Duration::from_secs(10))
        .trace(&sink)
        .run()
        .expect("recoverable faults must not fail the two-level solve");

    assert!(fancy.history.converged());
    assert_bit_identical(&plain, &fancy, "two-level plain vs faulted+traced");
    assert!(
        !sink.take_events().is_empty(),
        "a traced run must record events"
    );
}

/// `run_multi` with a two-level spec shares one coarse basis across
/// right-hand sides and still matches independent single-RHS sessions.
#[test]
fn twolevel_run_multi_matches_single_runs() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let mut loads2 = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads2);

    let multi = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg("twolevel:rbm:gls-3"))
        .run_multi(&[loads.clone(), loads2.clone()])
        .expect("two-level multi-RHS session");
    assert!(multi.all_converged());

    for (i, rhs) in [loads.clone(), loads2].into_iter().enumerate() {
        let single = SolveSession::new(Problem::new(&mesh, &dm, &mat, &rhs))
            .strategy(Strategy::Edd(part.clone()))
            .config(cfg("twolevel:rbm:gls-3"))
            .run()
            .unwrap();
        assert_eq!(
            multi.solutions[i], single.u,
            "RHS {i}: two-level multi-solve bits differ from the single run"
        );
        assert_eq!(
            multi.histories[i].relative_residuals, single.history.relative_residuals,
            "RHS {i}: residual histories differ"
        );
    }
}

/// The graph partitioner composes with two-level preconditioning and is
/// deterministic: the same seed reproduces the solve bit for bit.
#[test]
fn twolevel_graph_partitioner_is_deterministic() {
    let (mesh, dm, mat, loads) = problem(8, 4);
    let run = || {
        SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
            .partitioned(PartitionerSpec::Graph { seed: 3 }, 4)
            .config(cfg("twolevel:rbm:gls-3"))
            .run()
            .expect("graph-partitioned two-level run")
    };
    let a = run();
    assert!(a.history.converged());
    assert_bit_identical(&a, &run(), "two-level graph partition, same seed");
}

/// Prebuilt subdomain systems reproduce the mesh-level two-level session
/// exactly, for the geometry-free coarse spaces that raw systems support.
#[test]
fn twolevel_from_systems_matches_mesh_level() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let systems: Vec<SubdomainSystem> = part
        .subdomains(&mesh)
        .iter()
        .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
        .collect();
    for spec in ["twolevel:const:gls-3", "twolevel:lowrank-2:gls-3"] {
        let mesh_level = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
            .strategy(Strategy::Edd(part.clone()))
            .config(cfg(spec))
            .run()
            .unwrap();
        let prebuilt = SolveSession::from_systems(&systems, dm.n_dofs())
            .config(cfg(spec))
            .run()
            .unwrap();
        assert_bit_identical(&mesh_level, &prebuilt, spec);
    }
}

/// Rigid-body modes need node coordinates, which prebuilt raw systems do
/// not carry — the session fails fast with an actionable message.
#[test]
#[should_panic(expected = "rigid-body coarse modes need node coordinates")]
fn twolevel_rbm_from_systems_panics() {
    let (mesh, dm, mat, loads) = problem(6, 2);
    let part = ElementPartition::strips_x(&mesh, 2);
    let systems: Vec<SubdomainSystem> = part
        .subdomains(&mesh)
        .iter()
        .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
        .collect();
    let _ = SolveSession::from_systems(&systems, dm.n_dofs())
        .config(cfg("twolevel:rbm:gls-3"))
        .run();
}

/// The transient driver has no coarse plumbing and must reject two-level
/// specs instead of silently solving one-level.
#[test]
#[should_panic(expected = "transient driver does not support two-level")]
fn twolevel_run_dynamic_panics() {
    let (mesh, dm, mat, loads) = problem(6, 2);
    let part = ElementPartition::strips_x(&mesh, 2);
    let _ = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg("twolevel:rbm:gls-3"))
        .run_dynamic(NewmarkParams::average_acceleration(1.0), 1, &[0]);
}

/// Two-level works under the RDD (block-row) operator too, in both
/// composition modes, and overlapped exchange stays bit-identical.
#[test]
fn twolevel_rdd_converges_in_both_compositions() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    for spec in ["twolevel:rbm:gls-3", "twolevel:rbm:gls-3:add"] {
        let run = |overlap: bool| {
            SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
                .strategy(Strategy::Rdd(NodePartition::strips_x(&mesh, 3)))
                .config(cfg(spec))
                .overlap(overlap)
                .run()
                .expect("RDD two-level run")
        };
        let blocking = run(false);
        assert!(blocking.history.converged(), "{spec}: RDD must converge");
        assert_bit_identical(&blocking, &run(true), spec);
    }
}

/// RDD multi-RHS with two-level matches the independent single runs.
#[test]
fn twolevel_rdd_run_multi_matches_single_runs() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let mut loads2 = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads2);
    let multi = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Rdd(NodePartition::strips_x(&mesh, 3)))
        .config(cfg("twolevel:rbm:neumann-2"))
        .run_multi(&[loads.clone(), loads2.clone()])
        .expect("RDD two-level multi-RHS session");
    assert!(multi.all_converged());
    for (i, rhs) in [loads, loads2].into_iter().enumerate() {
        let single = SolveSession::new(Problem::new(&mesh, &dm, &mat, &rhs))
            .strategy(Strategy::Rdd(NodePartition::strips_x(&mesh, 3)))
            .config(cfg("twolevel:rbm:neumann-2"))
            .run()
            .unwrap();
        assert_eq!(multi.solutions[i], single.u, "RHS {i}: bits differ");
    }
}

/// **Floating subdomains** (paper Eq. 45): in a cantilever strip partition
/// only the first part touches the clamped edge — every other part has no
/// Dirichlet row, which made local factorizations singular. The coarse
/// Galerkin operator stays well-posed (the global matrix is SPD on the
/// constrained space) and the two-level solve converges in no more
/// iterations than the one-level smoother alone.
#[test]
fn floating_subdomains_coarse_solve_is_well_posed() {
    let (mesh, dm, mat, loads) = problem(16, 2);
    let part = ElementPartition::strips_x(&mesh, 8); // parts 1..8 are floating
    let one_level = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg("gls:3"))
        .run()
        .expect("one-level run");
    let two_level = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg("twolevel:rbm:gls-3"))
        .run()
        .expect("two-level run over floating parts");
    assert!(two_level.history.converged());
    assert!(
        two_level.history.iterations() <= one_level.history.iterations(),
        "two-level ({}) must not iterate more than one-level ({}) over floating parts",
        two_level.history.iterations(),
        one_level.history.iterations()
    );
}

/// **One-element subdomains**: every part is a single element, so each
/// rigid-body mode block is maximally rank-deficient relative to its
/// neighbours (shared interface dofs, duplicated constants). The pivoting
/// skyline factorization drops the dependent modes and the solve still
/// converges to the true solution.
#[test]
fn one_element_subdomains_produce_valid_coarse_blocks() {
    let (mesh, dm, mat, loads) = problem(6, 1);
    let part = ElementPartition::strips_x(&mesh, 6); // one element per part
    for spec in ["twolevel:rbm:gls-3", "twolevel:const:jacobi"] {
        let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
            .strategy(Strategy::Edd(part.clone()))
            .config(cfg(spec))
            .run()
            .expect("one-element-part two-level run");
        assert!(out.history.converged(), "{spec}: must converge");
    }
}

/// Rigid-body modes are (numerically) exact null vectors of the
/// unconstrained stiffness: on a fully floating mesh treated as one part,
/// `A Ẑ = D K D (D⁻¹ z) = D (K z) ≈ 0` for each of the three modes — the
/// two translations analytically, the infinitesimal rotation because the
/// small-strain operator annihilates `(−y, x)` exactly.
#[test]
fn rigid_body_modes_span_the_null_space_of_unconstrained_stiffness() {
    use parfem_dd::{edd_coarse_basis, edd_scaled_matrix};
    use parfem_precond::CoarseSpec;
    use parfem_sparse::skyline::DEFAULT_PIVOT_TOL;
    use parfem_sparse::LinearOperator;

    let mesh = QuadMesh::cantilever(6, 3);
    let dm = DofMap::new(mesh.n_nodes()); // no Dirichlet constraints at all
    let mat = Material::unit();
    let loads = vec![0.0; dm.n_dofs()];
    let part = ElementPartition::strips_x(&mesh, 1);
    let systems: Vec<SubdomainSystem> = part
        .subdomains(&mesh)
        .iter()
        .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
        .collect();

    let coords3: Vec<[f64; 3]> = mesh.coords().iter().map(|c| [c[0], c[1], 0.0]).collect();
    let basis = edd_coarse_basis(
        &CoarseSpec::Rbm,
        &systems,
        dm.n_dofs(),
        Some(&coords3),
        dm.dofs_per_node(),
        DEFAULT_PIVOT_TOL,
    );
    assert_eq!(basis.n_modes(), 3, "2 translations + 1 rotation");
    let (a, _d) = edd_scaled_matrix(&systems, dm.n_dofs());

    for (m, col) in basis.modes.iter().enumerate() {
        assert!(!col.is_empty(), "mode {m} must have support");
        let mut zhat = vec![0.0; dm.n_dofs()];
        for &(g, v) in col {
            zhat[g] = v;
        }
        let mut y = vec![0.0; dm.n_dofs()];
        a.apply_into(&zhat, &mut y);
        let z_inf = zhat.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        let y_inf = y.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        assert!(
            y_inf <= 1e-10 * z_inf,
            "mode {m}: ‖A ẑ‖∞ = {y_inf:e} not ≈ 0 (‖ẑ‖∞ = {z_inf:e})"
        );
    }
}

/// Additive and multiplicative composition are genuinely different
/// preconditioners (different residual histories) that converge to the
/// same physical solution.
#[test]
fn additive_and_multiplicative_compositions_both_converge() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 4);
    let run = |spec: &str| {
        SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
            .strategy(Strategy::Edd(part.clone()))
            .config(cfg(spec))
            .run()
            .expect("two-level run")
    };
    let mult = run("twolevel:rbm:gls-3");
    let add = run("twolevel:rbm:gls-3:add");
    assert!(mult.history.converged() && add.history.converged());
    assert_ne!(
        mult.history.relative_residuals, add.history.relative_residuals,
        "compositions must actually differ"
    );
    for (a, b) in mult.u.iter().zip(&add.u) {
        assert!(
            (a - b).abs() <= 1e-6 * a.abs().max(1.0),
            "both compositions must reach the same physical solution"
        );
    }
}
