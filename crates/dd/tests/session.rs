//! Contract tests for the [`SolveSession`] builder: the single pipeline
//! behind every legacy `solve_*` entry point.
//!
//! Three layers of guarantee:
//!
//! - **shim equivalence** — each deprecated entry point is a thin delegate,
//!   so the session path reproduces its solution bits and residual history
//!   exactly (the golden digests in `golden.rs` pin the absolute values;
//!   here we pin the *relative* identity between the two call forms);
//! - **option orthogonality** — tracing, fault injection and overlapped
//!   exchange compose on one builder without changing the numbers;
//! - **multi-RHS reuse** — `run_multi` shares scaling/layout/workspace
//!   across right-hand sides yet stays bit-identical to independent
//!   single-RHS runs.

#![allow(deprecated)] // exercising the frozen legacy shims on purpose

use parfem_dd::{
    solve_edd, solve_rdd, DdSolveOutput, EddVariant, PrecondSpec, Problem, SolveSession,
    SolverConfig, Strategy,
};
use parfem_fem::{assembly, Material, NewmarkParams, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_mesh::{DofMap, Edge, ElementPartition, NodePartition, PartitionerSpec, QuadMesh};
use parfem_msg::{FaultPlan, MachineModel};
use parfem_trace::TraceSink;
use std::time::Duration;

fn problem(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material, Vec<f64>) {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    (mesh, dm, mat, loads)
}

fn cfg() -> SolverConfig {
    SolverConfig {
        gmres: GmresConfig {
            tol: 1e-8,
            ..Default::default()
        },
        precond: PrecondSpec::Gls {
            degree: 5,
            theta: None,
        },
        variant: EddVariant::Enhanced,
        overlap: false,
        faults: None,
        comm_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

fn assert_bit_identical(a: &DdSolveOutput, b: &DdSolveOutput, what: &str) {
    assert_eq!(a.u, b.u, "{what}: solution bits differ");
    assert_eq!(
        a.history.relative_residuals, b.history.relative_residuals,
        "{what}: residual histories differ"
    );
}

/// The deprecated EDD shim and the session builder produce bit-identical
/// output — the shim really is a delegate, not a fork.
#[test]
fn edd_shim_delegates_to_session() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let legacy = solve_edd(
        &mesh,
        &dm,
        &mat,
        &loads,
        &part,
        MachineModel::ibm_sp2(),
        &cfg(),
    );
    let session = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .machine(MachineModel::ibm_sp2())
        .run()
        .expect("fault-free session must not fail");
    assert!(session.history.converged());
    assert_bit_identical(&legacy, &session, "EDD shim vs session");
}

/// `.partitioned(spec, p)` is sugar for `.strategy(Strategy::Edd(..))`
/// with the partition the spec produces — bit-identical for strips, and a
/// converging solve for the seeded graph partitioner whose solution agrees
/// with the strips run to solver tolerance.
#[test]
fn partitioned_builder_selects_edd_partitions() {
    let (mesh, dm, mat, loads) = problem(12, 4);
    let explicit = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(ElementPartition::strips_x(&mesh, 4)))
        .config(cfg())
        .run()
        .expect("strips run");
    let sugar = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .partitioned(PartitionerSpec::Strips, 4)
        .config(cfg())
        .run()
        .expect("partitioned(strips) run");
    assert_bit_identical(&explicit, &sugar, "partitioned(strips) vs explicit");

    let graph = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .partitioned(PartitionerSpec::Graph { seed: 1 }, 4)
        .config(cfg())
        .run()
        .expect("partitioned(graph) run");
    assert!(graph.history.converged());
    // Different partitions, same assembled operator: solutions agree to
    // the (tighter-than-tol) discretization-free limit.
    let norm: f64 = explicit.u.iter().map(|v| v * v).sum::<f64>().sqrt();
    let diff: f64 = explicit
        .u
        .iter()
        .zip(&graph.u)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    assert!(diff <= 1e-5 * norm.max(1.0), "diff {diff} vs norm {norm}");
}

/// Same for the RDD shim.
#[test]
fn rdd_shim_delegates_to_session() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = NodePartition::strips_x(&mesh, 3);
    let legacy = solve_rdd(
        &mesh,
        &dm,
        &mat,
        &loads,
        &part,
        MachineModel::sgi_origin(),
        &cfg(),
    );
    let session = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Rdd(part))
        .config(cfg())
        .machine(MachineModel::sgi_origin())
        .run()
        .expect("fault-free session must not fail");
    assert!(session.history.converged());
    assert_bit_identical(&legacy, &session, "RDD shim vs session");
}

/// Tracing + recoverable fault injection + overlapped exchange compose on
/// one builder: the run converges, records trace events, and the numbers
/// match the plain (untraced, unfaulted, blocking) run bit for bit.
#[test]
fn traced_faulted_overlapped_session_matches_plain_run() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let base = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg())
        .machine(MachineModel::ibm_sp2());
    let plain = base.run().expect("plain run");

    let sink = TraceSink::recording();
    let fancy = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .machine(MachineModel::ibm_sp2())
        .overlap(true)
        .faults(
            FaultPlan::new(42)
                .with_drops(0.2)
                .with_retry_policy(30, 1e-3, 2.0),
        )
        .comm_timeout(Duration::from_secs(10))
        .trace(&sink)
        .run()
        .expect("recoverable faults must not fail the solve");

    assert!(fancy.history.converged());
    assert_bit_identical(&plain, &fancy, "plain vs traced+faulted+overlapped");
    assert!(
        fancy.modeled_time >= plain.modeled_time,
        "retransmission can only add virtual time"
    );
    let events = sink.take_events();
    assert!(!events.is_empty(), "a traced run must record events");
}

/// Builder setters are views onto one `SolverConfig`: setting the options
/// one by one equals passing the assembled config wholesale.
#[test]
fn granular_setters_equal_wholesale_config() {
    let (mesh, dm, mat, loads) = problem(6, 3);
    let part = ElementPartition::strips_x(&mesh, 2);
    let c = cfg();
    let wholesale = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(c.clone())
        .run()
        .unwrap();
    let granular = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .gmres(c.gmres)
        .precond(c.precond.clone())
        .variant(c.variant)
        .overlap(c.overlap)
        .faults(c.faults.clone())
        .comm_timeout(c.comm_timeout)
        .run()
        .unwrap();
    assert_bit_identical(&wholesale, &granular, "wholesale vs granular");
}

/// `run_multi` shares one scaling/layout/preconditioner across right-hand
/// sides and still matches independent single-RHS sessions bit for bit.
#[test]
fn run_multi_matches_independent_single_runs() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);

    // A second, different load case: x-direction traction.
    let mut loads2 = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads2);

    let multi = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg())
        .run_multi(&[loads.clone(), loads2.clone()])
        .expect("multi-RHS session");
    assert!(multi.all_converged());
    assert_eq!(multi.solutions.len(), 2);

    for (i, rhs) in [loads.clone(), loads2].into_iter().enumerate() {
        let single = SolveSession::new(Problem::new(&mesh, &dm, &mat, &rhs))
            .strategy(Strategy::Edd(part.clone()))
            .config(cfg())
            .run()
            .unwrap();
        assert_eq!(
            multi.solutions[i], single.u,
            "RHS {i}: multi-solve bits differ from the single-RHS session"
        );
        assert_eq!(
            multi.histories[i].relative_residuals, single.history.relative_residuals,
            "RHS {i}: residual histories differ"
        );
    }
}

/// `from_systems` (prebuilt subdomain systems) equals the mesh-level path
/// for the same partition.
#[test]
fn from_systems_matches_mesh_level_session() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let systems: Vec<SubdomainSystem> = part
        .subdomains(&mesh)
        .iter()
        .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
        .collect();

    let mesh_level = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .run()
        .unwrap();
    let prebuilt = SolveSession::from_systems(&systems, dm.n_dofs())
        .config(cfg())
        .run()
        .unwrap();
    assert_bit_identical(&mesh_level, &prebuilt, "mesh-level vs from_systems");
}

/// The transient driver runs through the session builder and converges at
/// every step.
#[test]
fn run_dynamic_smoke() {
    let (mesh, dm, mat, loads) = problem(6, 3);
    let part = ElementPartition::strips_x(&mesh, 2);
    let tip = dm.dof(mesh.node_at(mesh.nx(), mesh.ny()), 0);
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .run_dynamic(NewmarkParams::average_acceleration(1.0), 3, &[tip]);
    assert!(out.all_converged, "every Newmark step must converge");
    assert_eq!(out.watch_histories.len(), 1);
    assert_eq!(out.watch_histories[0].len(), 3);
}

/// A killed rank surfaces as a typed failure through the session path —
/// the `Result` arm of `run` is real, not vestigial.
#[test]
fn unrecoverable_fault_returns_solve_failures() {
    let (mesh, dm, mat, loads) = problem(6, 3);
    let part = ElementPartition::strips_x(&mesh, 3);
    let err = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .faults(FaultPlan::new(7).with_kill(1, 3))
        .comm_timeout(Duration::from_millis(500))
        .run()
        .expect_err("a killed rank must fail the session");
    assert!(
        !err.errors.is_empty(),
        "failure must name the failing ranks"
    );
}
