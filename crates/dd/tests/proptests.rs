//! Property-based tests for the domain-decomposition layer: for random
//! meshes, partitions and loads, the parallel solvers must agree with the
//! sequential reference.

use parfem_dd::dist_vec::EddLayout;
use parfem_dd::rdd::RddOperator;
use parfem_dd::scaling::edd_scaling_reference;
use parfem_dd::{
    EddOperator, EddVariant, PrecondSpec, Problem, RddSystem, SolveSession, SolverConfig, Strategy,
};
use parfem_fem::{assembly, Material, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_mesh::{DofMap, Edge, ElementPartition, NodePartition, QuadMesh};
use parfem_msg::{run_ranks, Communicator, MachineModel};
use parfem_sparse::{scaling::scale_system, LinearOperator};
use proptest::prelude::*;

fn problem(nx: usize, ny: usize, fx: f64, fy: f64) -> (QuadMesh, DofMap, Material, Vec<f64>) {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, fx, fy, &mut loads);
    (mesh, dm, mat, loads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn edd_solution_solves_the_assembled_system(nx in 4usize..12,
                                                ny in 2usize..5,
                                                parts in 2usize..5,
                                                fx in -2.0..2.0f64,
                                                fy in -2.0..2.0f64) {
        prop_assume!(parts <= nx);
        prop_assume!(fx.abs() + fy.abs() > 0.1);
        let (mesh, dm, mat, loads) = problem(nx, ny, fx, fy);
        let cfg = SolverConfig {
            gmres: GmresConfig { tol: 1e-9, max_iters: 50_000, ..Default::default() },
            precond: PrecondSpec::Gls { degree: 5, theta: None },
            variant: EddVariant::Enhanced,
            overlap: false,
            ..Default::default()
        };
        let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
            .strategy(Strategy::Edd(ElementPartition::strips_x(&mesh, parts)))
            .config(cfg)
            .run()
            .expect("fault-free solve");
        prop_assert!(out.history.converged());
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let r = sys.stiffness.spmv(&out.u);
        let err: f64 = r.iter().zip(&sys.rhs).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        let scale: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(err < 1e-6 * scale.max(1.0), "residual {}", err);
    }

    #[test]
    fn edd_and_rdd_agree_for_random_partitions(nx in 4usize..10,
                                               ny in 2usize..5,
                                               parts in 2usize..4) {
        prop_assume!(parts <= nx && parts < ny * (nx + 1));
        let (mesh, dm, mat, loads) = problem(nx, ny, 1.0, -0.5);
        let cfg = SolverConfig {
            gmres: GmresConfig { tol: 1e-10, max_iters: 50_000, ..Default::default() },
            precond: PrecondSpec::Gls { degree: 5, theta: None },
            variant: EddVariant::Enhanced,
            overlap: false,
            ..Default::default()
        };
        let e = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
            .strategy(Strategy::Edd(ElementPartition::strips_x(&mesh, parts)))
            .config(cfg.clone())
            .run()
            .expect("fault-free solve");
        let r = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
            .strategy(Strategy::Rdd(NodePartition::strips_x(&mesh, parts)))
            .config(cfg)
            .run()
            .expect("fault-free solve");
        prop_assert!(e.history.converged() && r.history.converged());
        let scale = e.u.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-12);
        for (a, b) in e.u.iter().zip(&r.u) {
            prop_assert!((a - b).abs() < 1e-5 * scale, "{} vs {}", a, b);
        }
    }

    #[test]
    fn interface_sum_reconstructs_restriction_for_block_partitions(
            nx in 4usize..9, ny in 4usize..9, px in 2usize..4, py in 2usize..4) {
        prop_assume!(px <= nx && py <= ny);
        let (mesh, dm, mat, loads) = problem(nx, ny, 0.0, -1.0);
        let part = ElementPartition::blocks(&mesh, px, py);
        let systems: Vec<SubdomainSystem> = part.subdomains(&mesh).iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None)).collect();
        let n = dm.n_dofs();
        let u: Vec<f64> = (0..n).map(|i| ((i * 13 % 23) as f64) - 11.0).collect();
        let p = px * py;
        let sys_ref = &systems;
        let out = run_ranks(p, MachineModel::ideal(), move |comm| {
            let sys = &sys_ref[comm.rank()];
            let layout = EddLayout::from_system(sys);
            let mut v = sys.restrict(&u);
            layout.to_local_distributed(&mut v);
            let mut bufs = parfem_dd::ExchangeBuffers::new();
            layout.interface_sum_buffered(comm, &mut v, &mut bufs);
            let want = sys.restrict(&u);
            v.iter().zip(&want).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max)
        });
        for err in out.results {
            prop_assert!(err < 1e-10, "interface sum deviation {}", err);
        }
    }

    #[test]
    fn edd_overlapped_matvec_is_bit_identical_to_blocking(nx in 4usize..10,
                                                          ny in 2usize..5,
                                                          parts in 1usize..5) {
        prop_assume!(parts <= nx);
        let (mesh, dm, mat, loads) = problem(nx, ny, 1.0, -1.0);
        let systems: Vec<SubdomainSystem> = ElementPartition::strips_x(&mesh, parts)
            .subdomains(&mesh).iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None)).collect();
        let n = dm.n_dofs();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 19) as f64) - 9.0).collect();
        let sys_ref = &systems;
        let out = run_ranks(parts, MachineModel::ibm_sp2(), move |comm| {
            let sys = &sys_ref[comm.rank()];
            let mut layout = EddLayout::from_system(sys);
            let xl = sys.restrict(&x);
            let y_blocking = {
                let op = EddOperator::new(&sys.k_local, &layout, comm);
                op.apply(&xl)
            };
            layout.set_overlap(true);
            let y_overlapped = {
                let op = EddOperator::new(&sys.k_local, &layout, comm);
                op.apply(&xl)
            };
            (y_blocking, y_overlapped)
        });
        for (blocking, overlapped) in out.results {
            prop_assert_eq!(blocking, overlapped);
        }
    }

    #[test]
    fn rdd_overlapped_matvec_is_bit_identical_to_blocking(nx in 4usize..10,
                                                          ny in 2usize..5,
                                                          parts in 1usize..5) {
        prop_assume!(parts <= nx);
        let (mesh, dm, mat, loads) = problem(nx, ny, 0.5, -1.0);
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let (a, b, _) = scale_system(&sys.stiffness, &sys.rhs).unwrap();
        let part = NodePartition::contiguous(mesh.n_nodes(), parts);
        let systems = RddSystem::build_all(&a, &b, &part);
        let mut systems_ov = systems.clone();
        for s in &mut systems_ov {
            s.overlap = true;
        }
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 11 % 17) as f64) - 8.0).collect();
        let (sys_ref, ov_ref) = (&systems, &systems_ov);
        let out = run_ranks(parts, MachineModel::ibm_sp2(), move |comm| {
            let xl = sys_ref[comm.rank()].restrict(&x);
            let y_blocking = RddOperator::new(&sys_ref[comm.rank()], comm).apply(&xl);
            let y_overlapped = RddOperator::new(&ov_ref[comm.rank()], comm).apply(&xl);
            (y_blocking, y_overlapped)
        });
        for (blocking, overlapped) in out.results {
            prop_assert_eq!(blocking, overlapped);
        }
    }

    #[test]
    fn distributed_scaling_reference_is_partition_invariant(nx in 4usize..10,
                                                            ny in 2usize..5) {
        // The Algorithm-3 row sums depend only on element->subdomain
        // ownership of entries that land on the same row... for FEM
        // stiffness matrices local abs sums add identically however the
        // elements are grouped, because all element contributions to a row
        // pass through |.| only after per-subdomain assembly. Verify strips
        // vs blocks produce the same scaling when every subdomain assembles
        // contiguous elements.
        let (mesh, dm, mat, loads) = problem(nx, ny, 1.0, 0.0);
        let s1: Vec<SubdomainSystem> = ElementPartition::strips_x(&mesh, 2)
            .subdomains(&mesh).iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None)).collect();
        let s2: Vec<SubdomainSystem> = ElementPartition::strips_x(&mesh, nx.min(4))
            .subdomains(&mesh).iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None)).collect();
        let d1 = edd_scaling_reference(&s1, dm.n_dofs());
        let d2 = edd_scaling_reference(&s2, dm.n_dofs());
        // Interior rows whose elements are all in one subdomain have
        // identical sums; interface rows may differ between partitions (the
        // docs call this out) — but the scaling stays a valid upper bound:
        for (a, b) in d1.row_sums().iter().zip(d2.row_sums()) {
            // Both must dominate the assembled row sum; compare bound-ness
            // rather than equality.
            prop_assert!(*a > 0.0 && *b > 0.0);
        }
    }
}
