//! Golden bit-identity tests for the unified distributed FGMRES core.
//!
//! The constants below were captured from the pre-refactor
//! `edd_fgmres`/`rdd_fgmres` implementations (the hand-maintained twin
//! solver loops, before both were collapsed onto `dd_fgmres`). Each case
//! pins the iteration count, restart count, and an FNV-1a hash over the
//! exact bit patterns of the per-rank solutions and the residual history —
//! so any change to the floating-point operation sequence of the shared
//! solver shows up as a hard failure, not a tolerance drift.
//!
//! Re-capture (only when a *deliberate* numerical change is made) with:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -p parfem-dd --test golden -- --nocapture
//! ```

use parfem_dd::scaling::DistributedScaling;
use parfem_dd::{
    edd_fgmres, rdd_fgmres, EddLayout, EddVariant, PrecondSpec, Problem, RddLocalIlu, RddSystem,
    SolveSession, SolverConfig, Strategy,
};
use parfem_fem::{assembly, Material, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_krylov::ConvergenceHistory;
use parfem_mesh::{DofMap, Edge, ElementPartition, NodePartition, QuadMesh};
use parfem_msg::{run_ranks, Communicator, FaultPlan, FaultyComm, MachineModel};
use parfem_precond::{GlsPrecond, IdentityPrecond};
use parfem_sparse::scaling::scale_system;

/// FNV-1a over a stream of u64 words (stable, dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn f64s(&mut self, xs: &[f64]) {
        for &x in xs {
            self.word(x.to_bits());
        }
    }
}

/// The digest one golden case pins.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    iterations: usize,
    restarts: usize,
    /// FNV-1a over the bit patterns of every rank's solution, rank order.
    x_hash: u64,
    /// FNV-1a over the bit patterns of the relative-residual history.
    res_hash: u64,
}

fn edd_digest(
    nx: usize,
    ny: usize,
    p: usize,
    degree: usize,
    variant: EddVariant,
    cfg: &GmresConfig,
) -> Digest {
    edd_digest_overlap(nx, ny, p, degree, variant, cfg, false, None)
}

/// The per-rank EDD golden body, generic over the communicator so the same
/// floating-point sequence runs on the raw [`run_ranks`] endpoint and under
/// a [`FaultyComm`] chaos wrapper.
fn edd_rank_body<C: Communicator>(
    comm: &C,
    sys: &SubdomainSystem,
    gls: Option<&GlsPrecond>,
    cfg: &GmresConfig,
    variant: EddVariant,
    overlap: bool,
) -> (Vec<f64>, ConvergenceHistory) {
    let mut layout = EddLayout::from_system(sys);
    layout.set_overlap(overlap);
    let sc = DistributedScaling::build(comm, &layout, &sys.k_local);
    let mut b = sys.f_local.clone();
    let a = sc.apply(&sys.k_local, &mut b);
    let x0 = vec![0.0; b.len()];
    let res = match gls {
        Some(g) => edd_fgmres(comm, &layout, &a, g, &b, &x0, cfg, variant),
        None => edd_fgmres(comm, &layout, &a, &IdentityPrecond, &b, &x0, cfg, variant),
    }
    .expect("recoverable golden run must solve");
    let mut u = res.x;
    sc.unscale(&mut u);
    (u, res.history)
}

#[allow(clippy::too_many_arguments)]
fn edd_digest_overlap(
    nx: usize,
    ny: usize,
    p: usize,
    degree: usize,
    variant: EddVariant,
    cfg: &GmresConfig,
    overlap: bool,
    faults: Option<FaultPlan>,
) -> Digest {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    let part = ElementPartition::strips_x(&mesh, p);
    let systems: Vec<SubdomainSystem> = part
        .subdomains(&mesh)
        .iter()
        .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
        .collect();
    let gls = (degree > 0).then(|| GlsPrecond::for_scaled_system(degree));
    let out = run_ranks(p, MachineModel::ideal(), |comm| {
        let sys = &systems[comm.rank()];
        match &faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                edd_rank_body(&faulty, sys, gls.as_ref(), cfg, variant, overlap)
            }
            None => edd_rank_body(comm, sys, gls.as_ref(), cfg, variant, overlap),
        }
    });
    let mut xh = Fnv::new();
    for (u, _) in &out.results {
        xh.f64s(u);
    }
    let mut rh = Fnv::new();
    rh.f64s(&out.results[0].1.relative_residuals);
    Digest {
        iterations: out.results[0].1.iterations(),
        restarts: out.results[0].1.restarts,
        x_hash: xh.0,
        res_hash: rh.0,
    }
}

enum RddPre {
    Identity,
    Gls(usize),
    LocalIlu,
}

fn rdd_digest(nx: usize, ny: usize, p: usize, pre: RddPre, cfg: &GmresConfig) -> Digest {
    rdd_digest_overlap(nx, ny, p, pre, cfg, false, None)
}

/// The per-rank RDD golden body, generic over the communicator (see
/// [`edd_rank_body`]).
fn rdd_rank_body<C: Communicator>(
    comm: &C,
    sys: &RddSystem,
    gls: Option<&GlsPrecond>,
    ilu: bool,
    cfg: &GmresConfig,
) -> (Vec<f64>, ConvergenceHistory) {
    let x0 = vec![0.0; sys.n_local()];
    let res = if let Some(g) = gls {
        rdd_fgmres(comm, sys, g, &x0, cfg)
    } else if ilu {
        let f = RddLocalIlu::factorize(sys).expect("factorize");
        rdd_fgmres(comm, sys, &f, &x0, cfg)
    } else {
        rdd_fgmres(comm, sys, &IdentityPrecond, &x0, cfg)
    }
    .expect("recoverable golden run must solve");
    (res.x, res.history)
}

fn rdd_digest_overlap(
    nx: usize,
    ny: usize,
    p: usize,
    pre: RddPre,
    cfg: &GmresConfig,
    overlap: bool,
    faults: Option<FaultPlan>,
) -> Digest {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
    let (a, b, _sc) = scale_system(&sys.stiffness, &sys.rhs).unwrap();
    let part = NodePartition::contiguous(mesh.n_nodes(), p);
    let mut systems = RddSystem::build_all(&a, &b, &part);
    for s in &mut systems {
        s.overlap = overlap;
    }
    let gls = match pre {
        RddPre::Gls(d) => Some(GlsPrecond::for_scaled_system(d)),
        _ => None,
    };
    let ilu = matches!(pre, RddPre::LocalIlu);
    let out = run_ranks(p, MachineModel::ideal(), |comm| {
        let sys = &systems[comm.rank()];
        match &faults {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                rdd_rank_body(&faulty, sys, gls.as_ref(), ilu, cfg)
            }
            None => rdd_rank_body(comm, sys, gls.as_ref(), ilu, cfg),
        }
    });
    let mut xh = Fnv::new();
    for (u, _) in &out.results {
        xh.f64s(u);
    }
    let mut rh = Fnv::new();
    rh.f64s(&out.results[0].1.relative_residuals);
    Digest {
        iterations: out.results[0].1.iterations(),
        restarts: out.results[0].1.restarts,
        x_hash: xh.0,
        res_hash: rh.0,
    }
}

fn check(name: &str, got: Digest, want: Digest) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "{name}: Digest {{ iterations: {}, restarts: {}, x_hash: 0x{:016x}, res_hash: 0x{:016x} }}",
            got.iterations, got.restarts, got.x_hash, got.res_hash
        );
        return;
    }
    assert_eq!(got, want, "{name}: drifted from the pre-refactor solver");
}

fn cfg(tol: f64) -> GmresConfig {
    GmresConfig {
        tol,
        ..Default::default()
    }
}

#[test]
fn edd_enhanced_gls5_matches_pre_refactor() {
    check(
        "edd_enhanced_gls5",
        edd_digest(8, 3, 4, 5, EddVariant::Enhanced, &cfg(1e-8)),
        Digest {
            iterations: 13,
            restarts: 0,
            x_hash: 0x7199b55dbcbc5141,
            res_hash: 0x04b565949448c04f,
        },
    );
}

#[test]
fn edd_basic_gls3_matches_pre_refactor() {
    check(
        "edd_basic_gls3",
        edd_digest(6, 2, 3, 3, EddVariant::Basic, &cfg(1e-8)),
        Digest {
            iterations: 12,
            restarts: 0,
            x_hash: 0x2ac0866b4c359264,
            res_hash: 0x4dba55a5e6273932,
        },
    );
}

#[test]
fn edd_enhanced_unpreconditioned_matches_pre_refactor() {
    // Unpreconditioned on a longer run: exercises restarts.
    let c = GmresConfig {
        tol: 1e-7,
        max_iters: 2000,
        ..Default::default()
    };
    check(
        "edd_enhanced_plain",
        edd_digest(6, 2, 2, 0, EddVariant::Enhanced, &c),
        Digest {
            iterations: 18,
            restarts: 0,
            x_hash: 0xa309843b860f36df,
            res_hash: 0x4cd81a782917a35e,
        },
    );
}

#[test]
fn rdd_gls5_matches_pre_refactor() {
    check(
        "rdd_gls5",
        rdd_digest(8, 2, 4, RddPre::Gls(5), &cfg(1e-9)),
        Digest {
            iterations: 13,
            restarts: 0,
            x_hash: 0x09911e4844f6b481,
            res_hash: 0xa284689e9f354307,
        },
    );
}

#[test]
fn rdd_unpreconditioned_matches_pre_refactor() {
    let c = GmresConfig {
        tol: 1e-7,
        max_iters: 2000,
        ..Default::default()
    };
    check(
        "rdd_plain",
        rdd_digest(5, 2, 2, RddPre::Identity, &c),
        Digest {
            iterations: 15,
            restarts: 0,
            x_hash: 0x5948d314a21be0e4,
            res_hash: 0xb4b4db4aff3d035a,
        },
    );
}

#[test]
fn edd_short_restart_matches_pre_refactor() {
    // Small restart length: exercises the restart/residual-recompute path.
    let c = GmresConfig {
        tol: 1e-7,
        restart: 8,
        max_iters: 2000,
        ..Default::default()
    };
    check(
        "edd_restart8",
        edd_digest(6, 2, 2, 0, EddVariant::Enhanced, &c),
        Digest {
            iterations: 1254,
            restarts: 156,
            x_hash: 0xe02f9e6f1f63cb41,
            res_hash: 0xfa73d79ce0668e0b,
        },
    );
}

#[test]
fn rdd_short_restart_matches_pre_refactor() {
    let c = GmresConfig {
        tol: 1e-7,
        restart: 8,
        max_iters: 2000,
        ..Default::default()
    };
    check(
        "rdd_restart8",
        rdd_digest(5, 2, 2, RddPre::Identity, &c),
        Digest {
            iterations: 397,
            restarts: 49,
            x_hash: 0x07f3214e42152f98,
            res_hash: 0xd122d8fdb2e7b98d,
        },
    );
}

#[test]
fn edd_overlapped_matches_pre_refactor_blocking_digest() {
    // The overlapped exchange schedule must reproduce the pre-refactor
    // *blocking* digest exactly: overlap reorders which rows compute while
    // messages fly, never the arithmetic.
    check(
        "edd_enhanced_gls5_overlap",
        edd_digest_overlap(8, 3, 4, 5, EddVariant::Enhanced, &cfg(1e-8), true, None),
        Digest {
            iterations: 13,
            restarts: 0,
            x_hash: 0x7199b55dbcbc5141,
            res_hash: 0x04b565949448c04f,
        },
    );
    check(
        "edd_basic_gls3_overlap",
        edd_digest_overlap(6, 2, 3, 3, EddVariant::Basic, &cfg(1e-8), true, None),
        Digest {
            iterations: 12,
            restarts: 0,
            x_hash: 0x2ac0866b4c359264,
            res_hash: 0x4dba55a5e6273932,
        },
    );
}

#[test]
fn rdd_overlapped_matches_pre_refactor_blocking_digest() {
    check(
        "rdd_gls5_overlap",
        rdd_digest_overlap(8, 2, 4, RddPre::Gls(5), &cfg(1e-9), true, None),
        Digest {
            iterations: 13,
            restarts: 0,
            x_hash: 0x09911e4844f6b481,
            res_hash: 0xa284689e9f354307,
        },
    );
    check(
        "rdd_local_ilu_overlap",
        rdd_digest_overlap(6, 2, 3, RddPre::LocalIlu, &cfg(1e-8), true, None),
        Digest {
            iterations: 13,
            restarts: 0,
            x_hash: 0x47a6ca904898afdd,
            res_hash: 0x6d5045eb980f57ac,
        },
    );
}

#[test]
fn rdd_local_ilu_matches_pre_refactor() {
    check(
        "rdd_local_ilu",
        rdd_digest(6, 2, 3, RddPre::LocalIlu, &cfg(1e-8)),
        Digest {
            iterations: 13,
            restarts: 0,
            x_hash: 0x47a6ca904898afdd,
            res_hash: 0x6d5045eb980f57ac,
        },
    );
}

// ---------------------------------------------------------------------------
// Fault-plan golden cases: a recoverable chaos schedule must reproduce the
// *fault-free* digests above bit for bit. Delays and duplicates perturb only
// message timing and wire traffic; the sequence-numbered delivery layer makes
// the payload stream — and hence every floating-point operation of the solve
// — identical to the clean run.
// ---------------------------------------------------------------------------

/// A delay-heavy recoverable plan (80% of frames late by up to 1 ms).
fn delay_plan() -> FaultPlan {
    FaultPlan::new(101).with_delays(0.8, 1e-3)
}

/// A duplicate-heavy recoverable plan (60% of frames sent twice).
fn duplicate_plan() -> FaultPlan {
    FaultPlan::new(202).with_duplicates(0.6)
}

#[test]
fn edd_under_delay_plan_matches_fault_free_digest() {
    let want = || Digest {
        iterations: 13,
        restarts: 0,
        x_hash: 0x7199b55dbcbc5141,
        res_hash: 0x04b565949448c04f,
    };
    for overlap in [false, true] {
        check(
            "edd_enhanced_gls5_delayed",
            edd_digest_overlap(
                8,
                3,
                4,
                5,
                EddVariant::Enhanced,
                &cfg(1e-8),
                overlap,
                Some(delay_plan()),
            ),
            want(),
        );
    }
}

#[test]
fn edd_under_duplicate_plan_matches_fault_free_digest() {
    let want = || Digest {
        iterations: 12,
        restarts: 0,
        x_hash: 0x2ac0866b4c359264,
        res_hash: 0x4dba55a5e6273932,
    };
    for overlap in [false, true] {
        check(
            "edd_basic_gls3_duplicated",
            edd_digest_overlap(
                6,
                2,
                3,
                3,
                EddVariant::Basic,
                &cfg(1e-8),
                overlap,
                Some(duplicate_plan()),
            ),
            want(),
        );
    }
}

#[test]
fn rdd_under_delay_plan_matches_fault_free_digest() {
    let want = || Digest {
        iterations: 13,
        restarts: 0,
        x_hash: 0x09911e4844f6b481,
        res_hash: 0xa284689e9f354307,
    };
    for overlap in [false, true] {
        check(
            "rdd_gls5_delayed",
            rdd_digest_overlap(
                8,
                2,
                4,
                RddPre::Gls(5),
                &cfg(1e-9),
                overlap,
                Some(delay_plan()),
            ),
            want(),
        );
    }
}

#[test]
fn rdd_under_duplicate_plan_matches_fault_free_digest() {
    let want = || Digest {
        iterations: 13,
        restarts: 0,
        x_hash: 0x47a6ca904898afdd,
        res_hash: 0x6d5045eb980f57ac,
    };
    for overlap in [false, true] {
        check(
            "rdd_local_ilu_duplicated",
            rdd_digest_overlap(
                6,
                2,
                3,
                RddPre::LocalIlu,
                &cfg(1e-8),
                overlap,
                Some(duplicate_plan()),
            ),
            want(),
        );
    }
}

// ---------------------------------------------------------------------------
// Session-path golden cases: the `SolveSession` builder must reproduce the
// pinned pre-refactor convergence bits. The per-rank `x_hash` does not apply
// (the session returns one assembled global solution), so these cases pin
// iterations, restarts and the residual-history hash of the named digests
// above — any drift in the session pipeline's floating-point sequence
// trips the same wire as the raw-solver cases.
// ---------------------------------------------------------------------------

#[test]
fn session_reproduces_edd_enhanced_gls5_history() {
    // Same case as `edd_enhanced_gls5` above, through the builder.
    let mesh = QuadMesh::cantilever(8, 3);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(ElementPartition::strips_x(&mesh, 4)))
        .config(SolverConfig {
            gmres: cfg(1e-8),
            precond: PrecondSpec::Gls {
                degree: 5,
                theta: None,
            },
            ..SolverConfig::default()
        })
        .run()
        .expect("golden session must solve");
    assert_eq!(out.history.iterations(), 13);
    assert_eq!(out.history.restarts, 0);
    let mut rh = Fnv::new();
    rh.f64s(&out.history.relative_residuals);
    assert_eq!(
        rh.0, 0x04b565949448c04f,
        "session EDD path drifted from the pinned edd_enhanced_gls5 history"
    );
}

#[test]
fn session_reproduces_rdd_gls5_history() {
    // Same case as `rdd_gls5` above, through the builder.
    let mesh = QuadMesh::cantilever(8, 2);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Rdd(NodePartition::contiguous(mesh.n_nodes(), 4)))
        .config(SolverConfig {
            gmres: cfg(1e-9),
            precond: PrecondSpec::Gls {
                degree: 5,
                theta: None,
            },
            ..SolverConfig::default()
        })
        .run()
        .expect("golden session must solve");
    assert_eq!(out.history.iterations(), 13);
    assert_eq!(out.history.restarts, 0);
    let mut rh = Fnv::new();
    rh.f64s(&out.history.relative_residuals);
    assert_eq!(
        rh.0, 0xa284689e9f354307,
        "session RDD path drifted from the pinned rdd_gls5 history"
    );
}
