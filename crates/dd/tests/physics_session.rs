//! Session-level golden tests for the physics-generic workloads: scalar
//! heat (`Problem::heat`) and 3-D hex8 elasticity (`Problem::elasticity3d`)
//! through the same [`SolveSession`] pipeline as the paper's 2-D
//! elasticity, under EDD and RDD, blocking and overlapped exchange.
//!
//! Three contracts:
//!
//! - **golden iteration counts** — pinned per (problem, P, preconditioner)
//!   so a numerical change anywhere in the physics-generic assembly or
//!   subdomain path is caught, exactly like `golden.rs` pins elasticity2d;
//! - **overlap neutrality** — overlapped exchange reorders communication
//!   only, so each overlapped run is bit-identical to its blocking twin on
//!   every physics;
//! - **Eq. 45 in session form** — a floating hex subdomain breaks ILU(0)
//!   at factorization time, while the `direct` sparse solve (pivot-shifted
//!   profile LDLᵀ) carries the same session to convergence, standalone and
//!   inside `twolevel:<coarse>:direct`.

use parfem_dd::{DdSolveOutput, PrecondSpec, Problem, SolveSession, SolverConfig, Strategy};
use parfem_fem::{assembly, Material, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_mesh::{DofMap, Edge, ElementPartition, Face, HexMesh, NodePartition, QuadMesh};
use parfem_sparse::{Ilu0, SparseError};

fn heat_fixture(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material, Vec<f64>) {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::with_dofs(mesh.n_nodes(), 1);
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_source(&mesh, &dm, Edge::Right, 1.0, &mut loads);
    (mesh, dm, mat, loads)
}

fn hex_fixture(nx: usize, ny: usize, nz: usize) -> (HexMesh, DofMap, Material, Vec<f64>) {
    let mesh = HexMesh::cantilever(nx, ny, nz);
    let mut dm = DofMap::with_dofs(mesh.n_nodes(), 3);
    for node in mesh.face_nodes(Face::XMin) {
        dm.clamp_node(node);
    }
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::face_load(&mesh, &dm, Face::XMax, [0.0, 0.0, -1.0], &mut loads);
    (mesh, dm, mat, loads)
}

fn cfg(spec: &str) -> SolverConfig {
    SolverConfig {
        gmres: GmresConfig {
            tol: 1e-8,
            ..Default::default()
        },
        precond: PrecondSpec::parse(spec).expect("test spec parses"),
        ..Default::default()
    }
}

fn run_edd(
    problem: Problem<'_>,
    part: ElementPartition,
    spec: &str,
    overlap: bool,
) -> DdSolveOutput {
    SolveSession::new(problem)
        .strategy(Strategy::Edd(part))
        .config(cfg(spec))
        .overlap(overlap)
        .run()
        .expect("fault-free session must not fail")
}

fn run_rdd(problem: Problem<'_>, part: NodePartition, spec: &str, overlap: bool) -> DdSolveOutput {
    SolveSession::new(problem)
        .strategy(Strategy::Rdd(part))
        .config(cfg(spec))
        .overlap(overlap)
        .run()
        .expect("fault-free session must not fail")
}

/// Golden iteration counts for scalar heat at P=3, each preconditioner
/// family, EDD and RDD — with the overlapped twin pinned bit-identical.
#[test]
fn heat_session_golden_iteration_counts() {
    // (spec, EDD iters, RDD iters)
    let golden = [
        ("gls:3", 9, 9),
        ("direct", 10, 5),
        ("twolevel:rbm.s3:gls-3", 6, 6),
    ];
    for (spec, want_edd, want_rdd) in golden {
        let (mesh, dm, mat, loads) = heat_fixture(9, 4);
        let edd = run_edd(
            Problem::heat(&mesh, &dm, &mat, &loads),
            ElementPartition::strips_x(&mesh, 3),
            spec,
            false,
        );
        assert!(edd.history.converged(), "heat EDD {spec} must converge");
        assert_eq!(
            edd.history.iterations(),
            want_edd,
            "heat EDD {spec} iteration drift"
        );
        let edd_overlapped = run_edd(
            Problem::heat(&mesh, &dm, &mat, &loads),
            ElementPartition::strips_x(&mesh, 3),
            spec,
            true,
        );
        assert_eq!(
            edd.u, edd_overlapped.u,
            "heat EDD {spec}: overlap changed the solution bits"
        );

        let rdd = run_rdd(
            Problem::heat(&mesh, &dm, &mat, &loads),
            NodePartition::strips_x(&mesh, 3),
            spec,
            false,
        );
        assert!(rdd.history.converged(), "heat RDD {spec} must converge");
        assert_eq!(
            rdd.history.iterations(),
            want_rdd,
            "heat RDD {spec} iteration drift"
        );
        let rdd_overlapped = run_rdd(
            Problem::heat(&mesh, &dm, &mat, &loads),
            NodePartition::strips_x(&mesh, 3),
            spec,
            true,
        );
        assert_eq!(
            rdd.u, rdd_overlapped.u,
            "heat RDD {spec}: overlap changed the solution bits"
        );
    }
}

/// Golden iteration counts for 3-D hex8 elasticity at P=3 — the same
/// matrix of preconditioners and strategies as the scalar physics.
#[test]
fn hex_session_golden_iteration_counts() {
    let golden = [
        ("gls:3", 15, 14),
        ("direct", 172, 19),
        ("twolevel:rbm.s3:gls-3", 8, 8),
    ];
    for (spec, want_edd, want_rdd) in golden {
        let (mesh, dm, mat, loads) = hex_fixture(6, 2, 2);
        let edd = run_edd(
            Problem::elasticity3d(&mesh, &dm, &mat, &loads),
            ElementPartition::blocks_of(&mesh, 3, 1),
            spec,
            false,
        );
        assert!(edd.history.converged(), "hex EDD {spec} must converge");
        assert_eq!(
            edd.history.iterations(),
            want_edd,
            "hex EDD {spec} iteration drift"
        );
        let edd_overlapped = run_edd(
            Problem::elasticity3d(&mesh, &dm, &mat, &loads),
            ElementPartition::blocks_of(&mesh, 3, 1),
            spec,
            true,
        );
        assert_eq!(
            edd.u, edd_overlapped.u,
            "hex EDD {spec}: overlap changed the solution bits"
        );

        let rdd = run_rdd(
            Problem::elasticity3d(&mesh, &dm, &mat, &loads),
            NodePartition::strips_x_hex(&mesh, 3),
            spec,
            false,
        );
        assert!(rdd.history.converged(), "hex RDD {spec} must converge");
        assert_eq!(
            rdd.history.iterations(),
            want_rdd,
            "hex RDD {spec} iteration drift"
        );
        let rdd_overlapped = run_rdd(
            Problem::elasticity3d(&mesh, &dm, &mat, &loads),
            NodePartition::strips_x_hex(&mesh, 3),
            spec,
            true,
        );
        assert_eq!(
            rdd.u, rdd_overlapped.u,
            "hex RDD {spec}: overlap changed the solution bits"
        );
    }
}

/// Satellite #2 golden case: the physics-aware coarse space (one constant
/// mode per aggregate for the scalar physics) keeps heat iteration counts
/// near-flat as subdomains multiply, where the one-level count grows.
#[test]
fn heat_twolevel_growth_is_near_flat_where_onelevel_grows() {
    let iters = |nx: usize, p: usize, spec: &str| {
        let (mesh, dm, mat, loads) = heat_fixture(nx, 4);
        let out = run_edd(
            Problem::heat(&mesh, &dm, &mat, &loads),
            ElementPartition::strips_x(&mesh, p),
            spec,
            false,
        );
        assert!(out.history.converged(), "{spec} P={p} must converge");
        out.history.iterations()
    };
    // Weak family in x: 3 elements per strip, P = 2 -> 8.
    let (two_p2, two_p8) = (
        iters(6, 2, "twolevel:rbm.s3:gls-3"),
        iters(24, 8, "twolevel:rbm.s3:gls-3"),
    );
    let (one_p2, one_p8) = (iters(6, 2, "gls:3"), iters(24, 8, "gls:3"));
    // Golden pins: the two-level count adds 3 iterations over a 4x rank
    // increase (5 -> 8) while the one-level count grows 2.7x (6 -> 16).
    assert_eq!((two_p2, two_p8), (5, 8), "two-level heat iteration drift");
    assert_eq!((one_p2, one_p8), (6, 16), "one-level heat iteration drift");
    assert!(
        two_p8 <= two_p2 + 3,
        "two-level heat growth must stay near-flat: {two_p2} -> {two_p8}"
    );
    assert!(
        (one_p8 as f64) >= 2.5 * one_p2 as f64,
        "one-level heat growth should be steep (else the contrast is moot)"
    );
}

/// Eq. 45 at session level, in 3-D: the interior blocks of a one-element
/// -thick clamped-left hex cantilever touch no Dirichlet row, so their
/// local stiffness is dense and exactly singular — ILU(0) (here a complete
/// LU, the pattern is full) hits the rigid-mode zero pivot — while the
/// same partition solves to 1e-8 through the `direct` subdomain solver
/// (pivot-shifted LDLᵀ), standalone and as the smoother of a two-level
/// spec.
#[test]
fn direct_survives_the_floating_hex_subdomain_that_breaks_ilu0() {
    let (mesh, dm, mat, loads) = hex_fixture(3, 1, 1);
    let part = ElementPartition::blocks_of(&mesh, 3, 1);

    // The floating single-element blocks: singular, ILU(0) refuses them.
    let subs = part.subdomains_of(&mesh);
    for floating in [1, 2] {
        let sys = SubdomainSystem::build_hex(&mesh, &dm, &mat, &subs[floating], &loads);
        match Ilu0::factorize(&sys.k_local) {
            Err(SparseError::ZeroPivot { value, .. }) => {
                assert!(value.abs() < 1e-10, "pivot {value} should be ~0");
            }
            Err(other) => panic!("expected ZeroPivot on the floating block, got {other:?}"),
            Ok(_) => panic!("factorizing the singular floating block must fail"),
        }
    }

    // The exact solver takes the same sessions to convergence; the coarse
    // rigid-body space collapses the one-level count 198 -> 14.
    for (spec, want) in [("direct", 198), ("twolevel:rbm.s3:direct", 14)] {
        let out = run_edd(
            Problem::elasticity3d(&mesh, &dm, &mat, &loads),
            part.clone(),
            spec,
            false,
        );
        assert!(
            out.history.converged(),
            "{spec} must converge across the floating subdomains"
        );
        assert_eq!(
            out.history.iterations(),
            want,
            "{spec} floating-subdomain iteration drift"
        );
    }
}
