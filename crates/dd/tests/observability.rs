//! End-to-end contracts for the observability stack: the critical-path
//! analyzer, the chrome exporter and the metrics registry, all driven by
//! real [`SolveSession`] runs.
//!
//! The load-bearing assertion (the PR's acceptance criterion) is
//! [`critical_path_length_equals_makespan_on_p8_overlapped_solve`]: on a
//! recorded 8-rank overlapped solve, the reconstructed cross-rank
//! dependency chain must tile `[0, makespan]` exactly — every instant of
//! the modeled parallel time is attributed to compute, a message in
//! flight, or a collective on some rank.

use parfem_dd::{Problem, SolveSession, SolverConfig, Strategy};
use parfem_fem::{assembly, Material};
use parfem_krylov::gmres::GmresConfig;
use parfem_mesh::{DofMap, Edge, ElementPartition, QuadMesh};
use parfem_msg::{CommStats, FaultPlan, MachineModel};
use parfem_trace::{
    export_chrome_trace, json, CritPath, MetricsRegistry, SegmentKind, TraceReport, TraceSink,
};
use std::time::Duration;

fn problem(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material, Vec<f64>) {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    (mesh, dm, mat, loads)
}

fn cfg() -> SolverConfig {
    SolverConfig {
        gmres: GmresConfig {
            tol: 1e-8,
            ..Default::default()
        },
        comm_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

/// Acceptance: on a P=8 overlapped solve on the virtual IBM SP2, the
/// critical path's virtual-time length equals the observed makespan, and
/// its segments tile `[0, makespan]` without gaps or overlaps.
#[test]
fn critical_path_length_equals_makespan_on_p8_overlapped_solve() {
    let (mesh, dm, mat, loads) = problem(48, 12);
    let part = ElementPartition::strips_x(&mesh, 8);
    let sink = TraceSink::recording();
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .machine(MachineModel::ibm_sp2())
        .overlap(true)
        .trace(&sink)
        .run()
        .expect("fault-free solve");
    assert!(out.history.converged());
    let events = sink.take_events();
    let cp = CritPath::from_events(&events);

    assert_eq!(cp.nranks, 8);
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
    assert!(
        rel(cp.makespan, out.modeled_time) <= 1e-12,
        "critpath makespan {} vs observed modeled time {}",
        cp.makespan,
        out.modeled_time
    );
    assert!(
        rel(cp.path_length(), cp.makespan) <= 1e-9,
        "path length {} must equal makespan {}",
        cp.path_length(),
        cp.makespan
    );

    // The segments tile [0, makespan]: start at 0, contiguous, end at the
    // makespan, each with non-negative extent.
    assert!(!cp.segments.is_empty());
    assert!(cp.segments[0].t0.abs() <= 1e-15 * cp.makespan.max(1.0));
    for w in cp.segments.windows(2) {
        assert!(
            (w[0].t1 - w[1].t0).abs() <= 1e-12 * cp.makespan,
            "gap between path segments: {} .. {}",
            w[0].t1,
            w[1].t0
        );
    }
    for s in &cp.segments {
        assert!(s.t1 >= s.t0 - 1e-15, "negative-extent segment");
        assert!(s.rank < 8);
    }
    let last = cp.segments.last().unwrap();
    assert!(rel(last.t1, cp.makespan) <= 1e-12);

    // An 8-rank GMRES run synchronizes on all-reduces every iteration: the
    // path must contain collective hops, and the bounding rank is real.
    assert!(
        cp.segments
            .iter()
            .any(|s| matches!(s.kind, SegmentKind::Collective)),
        "an FGMRES critical path without collectives is wrong"
    );
    assert!(cp.bound_rank < 8);
    assert!(cp.efficiency > 0.0 && cp.efficiency <= 1.0 + 1e-12);

    // Per-rank wait decomposition: busy + waits + idle tail == final virt.
    for r in &cp.ranks {
        let sum = r.busy + r.recv_wait + r.collective_wait + r.collective_cost + r.idle_tail;
        assert!(
            rel(sum, cp.makespan) <= 1e-9,
            "rank {} decomposition {} vs makespan {}",
            r.rank,
            sum,
            cp.makespan
        );
    }

    // The JSON export is valid JSON with the pinned schema.
    let doc = json::parse(&cp.to_json()).expect("critpath JSON parses");
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("parfem-critpath-v1")
    );

    // And the chrome export of the same trace is valid trace_event JSON.
    let chrome = json::parse(&export_chrome_trace(&events)).expect("chrome JSON parses");
    let n = chrome
        .get("traceEvents")
        .and_then(json::Json::as_array)
        .expect("traceEvents array")
        .len();
    assert!(n > events.len(), "metadata records plus one per event");
}

/// Trace-consistency under the full option stack: a traced + overlapped +
/// faulted session's aggregated comm totals equal the communicator's own
/// [`CommStats`], and each rank's top-level phase totals sum to its final
/// virtual clock (whose max is the makespan).
#[test]
fn trace_report_matches_comm_stats_under_faults_and_overlap() {
    let (mesh, dm, mat, loads) = problem(20, 6);
    let part = ElementPartition::strips_x(&mesh, 4);
    let sink = TraceSink::recording();
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .machine(MachineModel::ibm_sp2())
        .overlap(true)
        .faults(
            FaultPlan::new(7)
                .with_drops(0.15)
                .with_duplicates(0.1)
                .with_retry_policy(30, 1e-3, 2.0),
        )
        .trace(&sink)
        .run()
        .expect("recoverable faults must not fail the solve");
    assert!(out.history.converged());
    let events = sink.take_events();
    let report = TraceReport::from_events(&events);

    // Comm totals: the trace events and the CommStats counters are two
    // independent records of the same physical traffic.
    let mut stats = CommStats::default();
    for r in &out.reports {
        stats = stats.merged(&r.stats);
    }
    let totals = report.comm_totals();
    assert_eq!(totals.sends, stats.sends, "sends");
    assert_eq!(totals.bytes_sent, stats.bytes_sent, "bytes sent");
    assert_eq!(totals.recvs, stats.recvs, "recvs");
    assert_eq!(totals.bytes_received, stats.bytes_received, "bytes recvd");
    assert_eq!(totals.allreduces, stats.allreduces, "allreduces");
    assert_eq!(totals.barriers, stats.barriers, "barriers");
    assert_eq!(
        totals.neighbor_exchanges, stats.neighbor_exchanges,
        "exchanges"
    );

    // Phase coverage: scaling + precond-build + fgmres tile each rank's
    // virtual timeline, so their virtual durations sum to its final clock.
    assert_eq!(report.nranks(), 4);
    for r in &report.ranks {
        let phase_sum: f64 = r
            .phases
            .iter()
            .filter(|p| ["scaling", "precond-build", "fgmres"].contains(&p.name.as_str()))
            .map(|p| p.virt_s)
            .sum();
        assert!(
            (phase_sum - r.final_virt).abs() <= 1e-9 * r.final_virt.max(1e-300),
            "rank {}: phases sum to {} but final virt is {}",
            r.rank,
            phase_sum,
            r.final_virt
        );
    }
    let max_virt = report.ranks.iter().fold(0.0f64, |m, r| m.max(r.final_virt));
    assert!((report.makespan_virt() - max_virt).abs() <= 1e-15 * max_virt.max(1.0));

    // The critical path reconstructs even under retransmission noise.
    let cp = CritPath::from_events(&events);
    assert!(
        (cp.path_length() - cp.makespan).abs() <= 1e-9 * cp.makespan,
        "faulted path length {} vs makespan {}",
        cp.path_length(),
        cp.makespan
    );
}

/// The metrics registry observes a whole session end to end: solver
/// counters agree with the convergence history, aggregate comm counters
/// agree with [`CommStats`], fault counters fire under injection, and the
/// text exposition renders every family.
#[test]
fn metrics_registry_observes_a_faulted_session() {
    let (mesh, dm, mat, loads) = problem(16, 4);
    let part = ElementPartition::strips_x(&mesh, 4);
    let metrics = MetricsRegistry::new();
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .machine(MachineModel::sgi_origin())
        .faults(
            FaultPlan::new(5)
                .with_drops(0.2)
                .with_retry_policy(30, 1e-3, 2.0),
        )
        .metrics(&metrics)
        .run()
        .expect("recoverable faults must not fail the solve");
    assert!(out.history.converged());

    let c = |name: &str| metrics.counter_value(name).unwrap_or(0);
    // Solver counters are recorded on rank 0 only, so they match the
    // (rank-identical) history exactly — no SPMD multiplication.
    assert_eq!(
        c("parfem_solver_iterations_total"),
        out.history.iterations() as u64
    );
    assert_eq!(
        c("parfem_solver_restarts_total"),
        out.history.restarts as u64
    );
    assert_eq!(c("parfem_solver_solves_total"), 1);
    assert_eq!(c("parfem_solver_converged_total"), 1);
    assert_eq!(c("parfem_session_solves_total"), 1);
    assert_eq!(c("parfem_session_solve_failures_total"), 0);
    assert!(c("parfem_solver_precond_applies_total") > 0);

    // Aggregate comm counters equal the summed CommStats.
    let mut stats = CommStats::default();
    for r in &out.reports {
        stats = stats.merged(&r.stats);
    }
    assert_eq!(c("parfem_msg_sends_total"), stats.sends);
    assert_eq!(c("parfem_msg_sent_bytes_total"), stats.bytes_sent);
    assert_eq!(c("parfem_msg_exchanges_total"), stats.neighbor_exchanges);
    assert_eq!(c("parfem_msg_allreduces_total"), stats.allreduces);
    assert_eq!(c("parfem_compute_flops_total"), stats.flops);

    // Fault machinery: a 20% drop plan over a whole solve must drop and
    // retransmit, and every drop is answered by exactly one retransmission.
    let drops = c("parfem_fault_drops_total");
    assert!(drops > 0, "a 20% drop plan must drop frames");
    assert_eq!(drops, c("parfem_fault_retransmits_total"));

    // The gauge mirrors the output, and the exposition renders counters,
    // gauges and histograms.
    let text = metrics.render();
    assert!(text.contains("# TYPE parfem_solver_iterations_total counter"));
    assert!(text.contains("# TYPE parfem_session_last_modeled_seconds gauge"));
    assert!(text.contains("parfem_rank_virtual_microseconds_p95"));
    assert!(
        text.contains(&format!("parfem_msg_sends_total {}", stats.sends)),
        "exposition:\n{text}"
    );
}

/// A disabled registry (the default) records nothing and renders empty —
/// the zero-overhead contract.
#[test]
fn disabled_registry_stays_empty() {
    let (mesh, dm, mat, loads) = problem(8, 2);
    let part = ElementPartition::strips_x(&mesh, 2);
    let metrics = MetricsRegistry::disabled();
    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(part))
        .config(cfg())
        .metrics(&metrics)
        .run()
        .expect("fault-free solve");
    assert!(out.history.converged());
    assert!(!metrics.is_enabled());
    assert_eq!(
        metrics.counter_value("parfem_solver_iterations_total"),
        None
    );
    assert_eq!(metrics.render(), "");
}
