//! Chaos suite for the distributed solvers: full EDD/RDD solves under
//! deterministic fault injection.
//!
//! Two invariants, mirroring the message-layer chaos tests one level up the
//! stack:
//!
//! - **recoverable schedules are invisible in the numbers**: a solve under
//!   drops-with-retries, duplicates, delays and reorders produces the exact
//!   same solution bits and residual history as the fault-free run — only
//!   the modeled virtual time grows;
//! - **unrecoverable schedules fail loudly and promptly**: a killed rank
//!   surfaces as a typed [`SolveError`] on every rank within the wall-clock
//!   watchdog — no hangs, no orphaned threads, no partial "solutions".

use parfem_dd::{
    EddVariant, PrecondSpec, Problem, SolveError, SolveSession, SolverConfig, Strategy,
};
use parfem_fem::{assembly, Material, SubdomainSystem};
use parfem_krylov::gmres::GmresConfig;
use parfem_mesh::{DofMap, Edge, ElementPartition, NodePartition, QuadMesh};
use parfem_msg::{CommError, FaultPlan, MachineModel};
use parfem_trace::TraceSink;
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn problem(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material, Vec<f64>) {
    let mesh = QuadMesh::cantilever(nx, ny);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
    (mesh, dm, mat, loads)
}

fn cfg_with(faults: Option<FaultPlan>, overlap: bool) -> SolverConfig {
    SolverConfig {
        gmres: GmresConfig {
            tol: 1e-8,
            ..Default::default()
        },
        precond: PrecondSpec::Gls {
            degree: 5,
            theta: None,
        },
        variant: EddVariant::Enhanced,
        overlap,
        faults,
        comm_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

fn subdomain_systems(
    mesh: &QuadMesh,
    dm: &DofMap,
    mat: &Material,
    loads: &[f64],
    p: usize,
) -> Vec<SubdomainSystem> {
    ElementPartition::strips_x(mesh, p)
        .subdomains(mesh)
        .iter()
        .map(|s| SubdomainSystem::build(mesh, dm, mat, s, loads, None))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Drop-faulted EDD solves with a retry budget are bit-identical to the
    /// fault-free solve — the ISSUE's headline acceptance criterion.
    #[test]
    fn edd_drop_faulted_solve_is_bit_identical_to_fault_free(
        seed in 0u64..1_000_000,
        parts in 2usize..5,
        overlap_bit in 0u64..2,
    ) {
        let overlap = overlap_bit == 1;
        let (mesh, dm, mat, loads) = problem(8, 3);
        let solve = |cfg: SolverConfig| {
            SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
                .strategy(Strategy::Edd(ElementPartition::strips_x(&mesh, parts)))
                .config(cfg)
                .machine(MachineModel::ibm_sp2())
                .run()
                .expect("recoverable schedule must solve")
        };
        let clean = solve(cfg_with(None, overlap));
        prop_assert!(clean.history.converged());

        let plan = FaultPlan::new(seed)
            .with_drops(0.3)
            .with_retry_policy(30, 1e-3, 2.0);
        let faulted = solve(cfg_with(Some(plan), overlap));

        prop_assert_eq!(&clean.u, &faulted.u,
            "drops+retries must not change solution bits");
        prop_assert_eq!(&clean.history.relative_residuals,
            &faulted.history.relative_residuals,
            "drops+retries must not change the residual history");
        prop_assert!(faulted.modeled_time >= clean.modeled_time,
            "retransmission can only add virtual time: {} vs {}",
            clean.modeled_time, faulted.modeled_time);
    }

    /// The full mixed fault menu (drops, duplicates, delays, reorders) at a
    /// random intensity stays recoverable and bit-identical, EDD and RDD.
    #[test]
    fn mixed_fault_plans_recover_bit_identically(
        seed in 0u64..1_000_000,
        intensity in 0.1f64..0.7,
    ) {
        let (mesh, dm, mat, loads) = problem(6, 3);
        let plan = FaultPlan::from_seed_intensity(seed, intensity);

        let systems = subdomain_systems(&mesh, &dm, &mat, &loads, 3);
        let esolve = |cfg: SolverConfig| {
            SolveSession::from_systems(&systems, dm.n_dofs())
                .config(cfg)
                .machine(MachineModel::sgi_origin())
                .run()
        };
        let clean = esolve(cfg_with(None, false)).expect("fault-free");
        let faulted = esolve(cfg_with(Some(plan.clone()), false))
            .expect("recoverable plan must solve");
        prop_assert_eq!(&clean.u, &faulted.u);
        prop_assert_eq!(&clean.history.relative_residuals,
            &faulted.history.relative_residuals);

        let rsolve = |cfg: SolverConfig| {
            SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
                .strategy(Strategy::Rdd(NodePartition::contiguous(mesh.n_nodes(), 3)))
                .config(cfg)
                .machine(MachineModel::sgi_origin())
                .run()
        };
        let rclean = rsolve(cfg_with(None, false)).expect("fault-free");
        let rfaulted = rsolve(cfg_with(Some(plan), false))
            .expect("recoverable plan must solve");
        prop_assert_eq!(&rclean.u, &rfaulted.u);
        prop_assert_eq!(&rclean.history.relative_residuals,
            &rfaulted.history.relative_residuals);
    }
}

#[test]
fn same_seed_reproduces_the_same_faulted_solve() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let systems = subdomain_systems(&mesh, &dm, &mat, &loads, 4);
    let plan = FaultPlan::from_seed_intensity(2026, 0.5);
    let run = || {
        SolveSession::from_systems(&systems, dm.n_dofs())
            .config(cfg_with(Some(plan.clone()), false))
            .machine(MachineModel::ibm_sp2())
            .run()
            .expect("recoverable")
    };
    let a = run();
    let b = run();
    assert_eq!(a.u, b.u);
    assert_eq!(
        a.modeled_time, b.modeled_time,
        "virtual time is part of the reproducible outcome"
    );
}

#[test]
fn injected_delays_stretch_modeled_time_but_not_the_solution() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let systems = subdomain_systems(&mesh, &dm, &mat, &loads, 4);
    let run = |faults| {
        SolveSession::from_systems(&systems, dm.n_dofs())
            .config(cfg_with(faults, false))
            .machine(MachineModel::sgi_origin())
            .run()
            .expect("recoverable")
    };
    let clean = run(None);
    let slow = run(Some(FaultPlan::new(9).with_delays(1.0, 1e-3)));
    assert_eq!(clean.u, slow.u);
    assert!(
        slow.modeled_time > clean.modeled_time,
        "a certain per-message delay must show up in virtual time: {} vs {}",
        clean.modeled_time,
        slow.modeled_time
    );
}

/// A killed rank must surface as a typed error on *every* rank — the dead
/// one reports its own scheduled death, the survivors see the disconnect or
/// time out on a collective the dead rank never joins — and the whole run
/// must tear down within a small multiple of the watchdog, not hang.
#[test]
fn killed_rank_fails_the_solve_on_every_rank_within_budget() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let systems = subdomain_systems(&mesh, &dm, &mat, &loads, 4);
    let cfg = SolverConfig {
        comm_timeout: Duration::from_millis(300),
        faults: Some(FaultPlan::new(0).with_kill(2, 25)),
        ..cfg_with(None, false)
    };
    let start = Instant::now();
    let failures = SolveSession::from_systems(&systems, dm.n_dofs())
        .config(cfg)
        .machine(MachineModel::ibm_sp2())
        .run()
        .expect_err("a killed rank must fail the solve");
    let elapsed = start.elapsed();

    assert_eq!(
        failures.errors.len(),
        4,
        "every rank must observe the kill: {:?}",
        failures.errors
    );
    for (rank, err) in &failures.errors {
        match err {
            SolveError::Comm(CommError::RankKilled { rank: killed, .. }) => {
                assert_eq!((*rank, *killed), (2, 2), "only rank 2 dies by schedule")
            }
            SolveError::Comm(
                CommError::Disconnected { .. }
                | CommError::Timeout { .. }
                | CommError::RetriesExhausted { .. },
            ) => {
                assert_ne!(*rank, 2, "rank 2 must report its own death")
            }
            other => panic!("rank {rank}: unexpected error {other:?}"),
        }
    }
    assert!(
        elapsed < Duration::from_secs(20),
        "killed-rank solve must not hang: took {elapsed:?}"
    );
    // The post-mortem still carries every rank's accounting.
    assert_eq!(failures.reports.len(), 4);
    assert!(failures.to_string().contains("4 of 4 ranks failed"));
}

/// RDD under a killed rank: same contract through the other decomposition.
#[test]
fn killed_rank_fails_rdd_within_budget() {
    let (mesh, dm, mat, loads) = problem(8, 2);
    let npart = NodePartition::contiguous(mesh.n_nodes(), 3);
    let cfg = SolverConfig {
        comm_timeout: Duration::from_millis(300),
        faults: Some(FaultPlan::new(1).with_kill(0, 10)),
        ..cfg_with(None, false)
    };
    let start = Instant::now();
    let failures = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Rdd(npart))
        .config(cfg)
        .machine(MachineModel::ibm_sp2())
        .run()
        .expect_err("a killed rank must fail the solve");
    assert!(failures
        .errors
        .iter()
        .any(|(r, e)| *r == 0 && matches!(e, SolveError::Comm(CommError::RankKilled { .. }))));
    assert!(
        failures.errors.len() >= 2,
        "survivors must observe the death too: {:?}",
        failures.errors
    );
    assert!(start.elapsed() < Duration::from_secs(20));
}

/// An undeliverable interface message (certain drop, tiny retry budget)
/// fails the solve with `RetriesExhausted` rather than wedging the
/// exchange.
#[test]
fn undeliverable_messages_fail_the_solve_with_retries_exhausted() {
    let (mesh, dm, mat, loads) = problem(6, 2);
    let systems = subdomain_systems(&mesh, &dm, &mat, &loads, 2);
    let cfg = SolverConfig {
        comm_timeout: Duration::from_secs(5),
        faults: Some(
            FaultPlan::new(3)
                .with_drops(1.0)
                .with_retry_policy(2, 1e-3, 2.0),
        ),
        ..cfg_with(None, false)
    };
    let failures = SolveSession::from_systems(&systems, dm.n_dofs())
        .config(cfg)
        .run()
        .expect_err("certain drops with 2 retries are unrecoverable");
    assert!(
        failures.errors.iter().any(|(_, e)| matches!(
            e,
            SolveError::Comm(CommError::RetriesExhausted { attempts: 3, .. })
        )),
        "expected RetriesExhausted somewhere: {:?}",
        failures.errors
    );
}

/// A straggling rank slows the modeled run down without touching the
/// numbers — the paper's load-imbalance story, injected rather than meshed.
#[test]
fn straggler_rank_stretches_modeled_time_but_not_the_solution() {
    let (mesh, dm, mat, loads) = problem(8, 3);
    let systems = subdomain_systems(&mesh, &dm, &mat, &loads, 4);
    let run = |faults| {
        SolveSession::from_systems(&systems, dm.n_dofs())
            .config(cfg_with(faults, false))
            .run()
            .expect("recoverable")
    };
    let base = run(None);
    let dragged = run(Some(FaultPlan::new(0).with_straggler(1, 8.0)));
    assert_eq!(base.u, dragged.u);
    assert!(
        dragged.modeled_time > 2.0 * base.modeled_time,
        "an 8x straggler must dominate the modeled time: {} vs {}",
        base.modeled_time,
        dragged.modeled_time
    );
}

/// Fault/retry counters flow through the tracer into the aggregated
/// report, so `parfem report` can show injections next to comm volume.
#[test]
fn fault_counters_reach_the_trace_report() {
    let (mesh, dm, mat, loads) = problem(6, 2);
    let systems = subdomain_systems(&mesh, &dm, &mat, &loads, 2);
    let sink = TraceSink::recording();
    let cfg = cfg_with(
        Some(
            FaultPlan::new(11)
                .with_drops(0.3)
                .with_duplicates(0.3)
                .with_retry_policy(30, 1e-3, 2.0),
        ),
        false,
    );
    let out = SolveSession::from_systems(&systems, dm.n_dofs())
        .config(cfg)
        .trace(&sink)
        .run()
        .expect("recoverable");
    assert!(out.history.converged());
    let events = sink.take_events();
    let report = parfem_trace::TraceReport::from_events(&events);
    let count = |name: &str| -> u64 {
        report
            .ranks
            .iter()
            .flat_map(|r| r.counters.iter())
            .filter(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    };
    let drops = count("fault_drops");
    let retransmits = count("fault_retransmits");
    assert!(drops > 0, "a 30% drop plan over a solve must drop frames");
    assert_eq!(
        drops, retransmits,
        "every dropped frame is answered by exactly one retransmission"
    );
    assert!(count("fault_duplicates") > 0);
}
