//! One-stop imports mirroring `proptest::prelude`.

pub use crate::collection;
pub use crate::prop;
pub use crate::strategy::Strategy;
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
