//! The deterministic case loop behind the [`crate::proptest!`] macro.

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; carries the formatted assertion message.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs; the runner draws a
    /// replacement case without counting it against the budget.
    Reject,
}

impl TestCaseError {
    /// Builds the failure variant (used by `prop_assert!`).
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated overall.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A small, fast, deterministic PRNG (xorshift64* seeded by FNV-1a of the
/// test name), good enough for test-input generation and fully reproducible
/// across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be nonzero
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives the case loop for one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner {
            config,
            name,
            rng: TestRng::from_name(name),
        }
    }

    /// Runs `case` until `config.cases` successes; panics on the first
    /// failure with the case index and test name (generation is
    /// deterministic, so the failure reproduces on rerun).
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;
        let mut done = 0u32;
        while done < self.config.cases {
            match case(&mut self.rng) {
                Ok(()) => done += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "proptest '{}': too many prop_assume! rejections ({})",
                        self.name,
                        rejects
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case {} of '{}' failed: {}",
                        done + 1,
                        self.name,
                        msg
                    );
                }
            }
        }
    }
}
