//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for [`vec()`]: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("vec");
        assert_eq!(vec(0.0..1.0f64, 3).generate(&mut rng).len(), 3);
        for _ in 0..50 {
            let n = vec(0u64..5, 1..4).generate(&mut rng).len();
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn nested_vecs_compose() {
        let mut rng = TestRng::from_name("nested");
        let vv = vec(vec(-1.0..1.0f64, 2), 4).generate(&mut rng);
        assert_eq!(vv.len(), 4);
        assert!(vv.iter().all(|inner| inner.len() == 2));
    }
}
