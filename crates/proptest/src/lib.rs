//! A dependency-free stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `proptest` cannot be vendored. This crate re-implements exactly
//! the API surface the workspace's property tests use, on `std` alone:
//!
//! - [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   `Range`s, tuples of strategies, and [`collection::vec`];
//! - the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header) driving a
//!   deterministic xorshift-seeded case loop;
//! - [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! immediately with its case number and seed, which keeps failures
//! reproducible (the seed is derived from the test name, so reruns generate
//! the identical sequence).

#![deny(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// The `prop` facade module, mirroring `proptest::prop`-style paths used as
/// `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Rejects the current case (generating a replacement) when its inputs do
/// not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over generated inputs. `arg` may
/// be any irrefutable pattern, e.g. `(lo, hi) in interval()`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $($crate::proptest!(@one $cfg; $(#[$meta])* fn $name($($arg in $strat),+) $body);)*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $($crate::proptest!(
            @one $crate::test_runner::ProptestConfig::default();
            $(#[$meta])* fn $name($($arg in $strat),+) $body
        );)*
    };
    (@one $cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let check = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                check()
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(usize, f64)>> {
        prop::collection::vec((0..5usize, -1.0..1.0f64), 0..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5..4.0f64, z in 1u64..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&y));
            prop_assert!((1..9).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(-1.0..1.0f64, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn prop_map_applies(s in (0..10usize).prop_map(|n| n * 2)) {
            prop_assert!(s % 2 == 0 && s < 20);
        }

        #[test]
        fn composite_strategies_generate(ps in pairs()) {
            for (a, b) in ps {
                prop_assert!(a < 5);
                prop_assert!((-1.0..1.0).contains(&b));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_context() {
        let mut runner = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::with_cases(8),
            "failing_property",
        );
        runner.run(|rng| {
            let x = crate::strategy::Strategy::generate(&(0usize..10), rng);
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let gen_once = || {
            let mut rng = crate::test_runner::TestRng::from_name("determinism");
            crate::strategy::Strategy::generate(&crate::collection::vec(0.0..1.0f64, 16), &mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }
}
