//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of an associated type from a seeded RNG.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate` is the
/// only required method, and adapters compose by value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i64 => u64, i32 => u32, i16 => u16, i8 => u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_bounds_eventually() {
        let mut rng = TestRng::from_name("cover");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(5usize..10).generate(&mut rng) - 5] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn signed_ranges_handle_negatives() {
        let mut rng = TestRng::from_name("signed");
        for _ in 0..100 {
            let v = (-7i32..-2).generate(&mut rng);
            assert!((-7..-2).contains(&v));
        }
    }

    #[test]
    fn tuple_of_strategies_generates_componentwise() {
        let mut rng = TestRng::from_name("tuple");
        let (a, b, c) = (0usize..3, -1.0..1.0f64, 5u64..6).generate(&mut rng);
        assert!(a < 3);
        assert!((-1.0..1.0).contains(&b));
        assert_eq!(c, 5);
    }
}
