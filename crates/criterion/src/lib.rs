//! A dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no crates.io access, so the
//! real `criterion` cannot be vendored. This crate implements the API subset
//! the `parfem-bench` benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! measure-and-print runner: each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a short measurement window, and the mean
//! time per iteration (plus throughput, when declared) is printed.
//!
//! No statistics, plots, or baselines — the point is that `cargo bench`
//! compiles and produces honest timings offline.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group: {name}");
        BenchmarkGroup {
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Units-of-work declaration used to report a rate next to the raw time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Declares the work per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the number of measurement samples (kept for API compatibility;
    /// the runner scales its measurement window with this value).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.into(), &b);
        self
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    /// Ends the group (printing nothing extra; kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.mean_time();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.3e} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.3e} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{:<48} {:>12} /iter{}",
            id.name,
            format_time(per_iter),
            rate
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] performs the measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`: a short warm-up, then timed batches until a
    /// ~200 ms measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (and a floor of one iteration for very slow routines).
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let one = warm_start.elapsed();

        let window = Duration::from_millis(200);
        let mut total = one;
        let mut iters = 1u64;
        // Batch size chosen so each batch is ~10% of the window.
        let batch = ((window.as_secs_f64() / 10.0) / one.as_secs_f64().max(1e-9))
            .ceil()
            .clamp(1.0, 1e7) as u64;
        while total < window {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.total = total;
        self.iters = iters;
    }

    fn mean_time(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.iters as f64
        }
    }
}

/// Bundles benchmark functions under a name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (some benches import it from
/// criterion rather than `std::hint`).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.iters >= 1);
        assert!(b.mean_time() > 0.0);
    }

    #[test]
    fn ids_render_function_and_parameter() {
        let id = BenchmarkId::new("spmv", "mesh4");
        assert_eq!(id.name, "spmv/mesh4");
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
