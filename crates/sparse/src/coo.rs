//! Coordinate-format (triplet) sparse matrix accumulator.
//!
//! Finite-element assembly naturally produces duplicate `(row, col)` entries
//! (one per element touching the pair of DOFs); [`CooMatrix::to_csr`] sorts
//! and sums them, which *is* the FEM "assembly" operation `⋃` of the paper's
//! Eq. 2.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A growable sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `n_rows x n_cols` accumulator.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty accumulator with room for `cap` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn n_triplets(&self) -> usize {
        self.vals.len()
    }

    /// Adds `value` at `(row, col)`. Duplicates accumulate on conversion.
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] if the position is outside
    /// the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
        Ok(())
    }

    /// Adds a dense element block: `block` is `dofs.len() x dofs.len()` in
    /// row-major order, scattered to global positions `dofs x dofs`.
    ///
    /// This is the FEM scatter of an element stiffness matrix.
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] if any DOF is outside the
    /// matrix shape, and [`SparseError::ShapeMismatch`] if `block` is not
    /// `dofs.len()²` long.
    pub fn push_block(&mut self, dofs: &[usize], block: &[f64]) -> Result<(), SparseError> {
        let n = dofs.len();
        if block.len() != n * n {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "push_block: block has {} entries, expected {}",
                    block.len(),
                    n * n
                ),
            });
        }
        for (i, &gi) in dofs.iter().enumerate() {
            for (j, &gj) in dofs.iter().enumerate() {
                self.push(gi, gj, block[i * n + j])?;
            }
        }
        Ok(())
    }

    /// Converts to CSR, sorting triplets and summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        // Count entries per row (duplicates included) to bucket-sort by row.
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.vals.len()];
        {
            let mut next = counts.clone();
            for (k, &r) in self.rows.iter().enumerate() {
                order[next[r]] = k;
                next[r] += 1;
            }
        }

        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::with_capacity(self.vals.len());
        let mut values = Vec::with_capacity(self.vals.len());
        row_ptr.push(0);

        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.n_rows {
            scratch.clear();
            for &k in &order[counts[r]..counts[r + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }

        CsrMatrix::from_raw_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
            .expect("CooMatrix::to_csr produced invalid CSR (internal bug)")
    }

    /// Drops all stored triplets, keeping the shape and capacity.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts_to_empty_csr() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.n_rows(), 3);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn columns_are_sorted_within_rows() {
        let mut coo = CooMatrix::new(1, 4);
        coo.push(0, 3, 3.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        let csr = coo.to_csr();
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[1, 2, 3]);
        assert_eq!(vals, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_bounds_push_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            coo.push(0, 2, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn push_block_scatters_element_matrix() {
        // 2x2 element block scattered to dofs {0, 2} of a 3x3 matrix.
        let mut coo = CooMatrix::new(3, 3);
        coo.push_block(&[0, 2], &[1.0, -1.0, -1.0, 1.0]).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 2), -1.0);
        assert_eq!(csr.get(2, 0), -1.0);
        assert_eq!(csr.get(2, 2), 1.0);
        assert_eq!(csr.get(1, 1), 0.0);
    }

    #[test]
    fn push_block_validates_block_shape() {
        let mut coo = CooMatrix::new(3, 3);
        assert!(matches!(
            coo.push_block(&[0, 1], &[1.0, 2.0, 3.0]),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn overlapping_blocks_assemble_like_fem() {
        // Two 1-D "truss elements" sharing the middle node: the classic
        // tridiagonal [1 -1; -1 2 -1; -1 1] pattern of the paper's Eq. 29.
        let mut coo = CooMatrix::new(3, 3);
        let ke = [1.0, -1.0, -1.0, 1.0];
        coo.push_block(&[0, 1], &ke).unwrap();
        coo.push_block(&[1, 2], &ke).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 1), 2.0);
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.get(1, 2), -1.0);
        assert_eq!(csr.get(0, 2), 0.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.clear();
        assert_eq!(coo.n_triplets(), 0);
        assert_eq!(coo.n_rows(), 2);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
    }
}
