//! Skyline (profile) LDLᵀ factorization with pivot tolerance.
//!
//! The two-level preconditioner's Galerkin coarse operator `A_c = Zᵀ A Z`
//! is symmetric, small (modes × parts rows) and — for structured
//! partitions — tightly banded: a part's modes couple only to the modes of
//! parts it shares mesh nodes with. Skyline storage keeps each row from its
//! first structural nonzero to the diagonal, which is exactly the region
//! LDLᵀ fill can reach, so the factorization is dense-exact at banded cost:
//! `O(Σ rowᵢ²)` instead of `O(n³)`.
//!
//! Near-zero pivots are **skipped**, not fatal: a coarse mode from a
//! fully-constrained part restricts to (numerically) nothing, producing a
//! zero row/column in `A_c`. The factorization zeroes that mode's pivot and
//! the solve annihilates its component — the pseudo-inverse on the
//! orthogonal complement — so a rank-deficient coarse block (1-element
//! subdomain, fully clamped part) yields a well-posed coarse solve where
//! ILU(0) on the same geometry fails with a zero pivot (the paper's Eq. 45
//! failure mode).

use crate::csr::CsrMatrix;

/// A symmetric matrix factored as `L D Lᵀ` in skyline (profile) storage.
///
/// Build with [`SkylineLdlt::factor`] (dense row-major input) or
/// [`SkylineLdlt::factor_csr`] (symmetric sparse input). Solve in place
/// with [`SkylineLdlt::solve_in_place`].
#[derive(Debug, Clone)]
pub struct SkylineLdlt {
    n: usize,
    /// First stored column of each row (the profile).
    start: Vec<usize>,
    /// Row offsets into `vals`: row `i` is `vals[offset[i]..offset[i + 1]]`,
    /// covering columns `start[i]..=i`. After factorization the strictly
    /// lower part holds `L` and the last entry of each row holds `D`.
    offset: Vec<usize>,
    vals: Vec<f64>,
    /// Modes whose pivot fell under the tolerance (annihilated by solves).
    skipped: Vec<bool>,
    /// Largest diagonal magnitude of the input — the natural stiffness
    /// scale, recorded for [`SkylineLdlt::set_null_shift`] callers.
    diag_scale: f64,
    /// Pivot-shift fallback: when positive, solves replace each skipped
    /// pivot with this value instead of annihilating its component. Zero
    /// (the default) keeps the pseudo-inverse.
    null_shift: f64,
}

/// Relative pivot tolerance of [`SkylineLdlt::factor`]: a diagonal pivot
/// whose magnitude falls below `tol × max |a_ii|` is treated as a zero
/// mode and skipped.
pub const DEFAULT_PIVOT_TOL: f64 = 1e-12;

impl SkylineLdlt {
    /// Factors the symmetric `n × n` row-major matrix `a` (only the lower
    /// triangle is read). `pivot_tol` is relative to the largest diagonal
    /// magnitude; pivots under it are skipped (see the module docs).
    ///
    /// # Panics
    /// Panics when `a.len() != n * n`.
    pub fn factor(a: &[f64], n: usize, pivot_tol: f64) -> Self {
        assert_eq!(a.len(), n * n, "SkylineLdlt::factor: matrix shape");
        // Profile from the lower triangle; symmetry makes column profiles
        // match row profiles.
        let start: Vec<usize> = (0..n)
            .map(|i| (0..=i).find(|&j| a[i * n + j] != 0.0).unwrap_or(i))
            .collect();
        Self::factor_profile(n, start, |i, j| a[i * n + j], pivot_tol)
    }

    /// Factors a symmetric sparse matrix given in CSR form (both triangles
    /// stored, as assembly produces). Equivalent to densifying and calling
    /// [`SkylineLdlt::factor`], at profile cost.
    ///
    /// # Panics
    /// Panics on a non-square input.
    pub fn factor_csr(a: &CsrMatrix, pivot_tol: f64) -> Self {
        let n = a.n_rows();
        assert_eq!(n, a.n_cols(), "SkylineLdlt::factor_csr: square input");
        let start: Vec<usize> = (0..n)
            .map(|i| {
                let (cols, _) = a.row(i);
                cols.first().map_or(i, |&c| c.min(i))
            })
            .collect();
        Self::factor_profile(n, start, |i, j| a.get(i, j), pivot_tol)
    }

    /// The shared factorization kernel over any entry accessor. The profile
    /// is widened to be monotone (`start[i] ≤ start[i+1]` is not required,
    /// but a row cannot start left of where fill can reach, which the
    /// column-profile intersection below handles).
    pub(crate) fn factor_profile(
        n: usize,
        start: Vec<usize>,
        entry: impl Fn(usize, usize) -> f64,
        pivot_tol: f64,
    ) -> Self {
        let mut offset = Vec::with_capacity(n + 1);
        offset.push(0usize);
        for i in 0..n {
            let row_len = i - start[i] + 1;
            offset.push(offset[i] + row_len);
        }
        let mut vals = vec![0.0; offset[n]];
        for i in 0..n {
            for j in start[i]..=i {
                vals[offset[i] + (j - start[i])] = entry(i, j);
            }
        }
        let mut fact = SkylineLdlt {
            n,
            start,
            offset,
            vals,
            skipped: vec![false; n],
            diag_scale: 0.0,
            null_shift: 0.0,
        };
        fact.factor_in_place(pivot_tol);
        fact
    }

    fn row_len(&self, i: usize) -> usize {
        self.offset[i + 1] - self.offset[i]
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        if j < self.start[i] {
            0.0
        } else {
            self.vals[self.offset[i] + (j - self.start[i])]
        }
    }

    /// In-place LDLᵀ within the profile: for each row `i`,
    /// `l_ij = (a_ij − Σ_k l_ik d_k l_jk) / d_j`, `d_i = a_ii − Σ l_ik² d_k`.
    /// Skipped pivots set `d = 0` and their `L` column to zero.
    fn factor_in_place(&mut self, pivot_tol: f64) {
        let n = self.n;
        let mut diag_scale = 0.0f64;
        for i in 0..n {
            diag_scale = diag_scale.max(self.at(i, i).abs());
        }
        self.diag_scale = diag_scale;
        let threshold = pivot_tol * diag_scale.max(1e-300);
        for i in 0..n {
            let si = self.start[i];
            for j in si..i {
                // l_ij before division: a_ij − Σ_{k < j} l_ik d_k l_jk.
                let lo = si.max(self.start[j]);
                let mut sum = self.at(i, j);
                for k in lo..j {
                    let lik = self.at(i, k);
                    let ljk = self.at(j, k);
                    let dk = self.at(k, k);
                    sum -= lik * dk * ljk;
                }
                let dj = self.at(j, j);
                let lij = if self.skipped[j] || dj == 0.0 {
                    0.0
                } else {
                    sum / dj
                };
                self.vals[self.offset[i] + (j - si)] = lij;
            }
            let mut d = self.at(i, i);
            for k in si..i {
                let lik = self.at(i, k);
                d -= lik * lik * self.at(k, k);
            }
            if d.abs() <= threshold {
                self.skipped[i] = true;
                d = 0.0;
            }
            let end = self.offset[i] + self.row_len(i) - 1;
            self.vals[end] = d;
        }
    }

    /// The system size.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Indices whose pivot was skipped (rank-deficient modes).
    pub fn skipped_modes(&self) -> Vec<usize> {
        self.skipped
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of skipped (annihilated) pivots.
    pub fn n_skipped(&self) -> usize {
        self.skipped.iter().filter(|&&s| s).count()
    }

    /// Largest diagonal magnitude of the factored matrix — the natural
    /// pivot-shift scale for [`SkylineLdlt::set_null_shift`].
    pub fn diag_scale(&self) -> f64 {
        self.diag_scale
    }

    /// Enables the pivot-shift fallback: subsequent solves substitute
    /// `delta` for each skipped pivot instead of annihilating its
    /// component, turning the pseudo-inverse `A⁺` into the *nonsingular*
    /// `A⁺ + δ⁻¹ Z Zᵀ` (with `Z = L⁻ᵀ e_skipped` spanning the detected
    /// near-null space). A singular preconditioner stalls Krylov methods on
    /// floating subdomains — their rigid modes are simply erased every
    /// application — while the shifted form passes them through at the
    /// stiffness scale and restores convergence. Pass `0.0` to return to
    /// pseudo-inverse solves; the consistency tests rely on that exactness.
    ///
    /// # Panics
    /// Panics on a negative or non-finite `delta`.
    pub fn set_null_shift(&mut self, delta: f64) {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "SkylineLdlt::set_null_shift: delta must be finite and >= 0"
        );
        self.null_shift = delta;
    }

    /// Solves `L D Lᵀ x = b` in place. Components of skipped modes are
    /// zeroed (pseudo-inverse on the factorable complement) unless a
    /// pivot-shift fallback is armed via [`SkylineLdlt::set_null_shift`].
    /// Performs no heap allocation.
    ///
    /// # Panics
    /// Panics when `b.len() != dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n, "SkylineLdlt::solve_in_place: rhs length");
        // Forward: L y = b.
        for i in 0..self.n {
            let si = self.start[i];
            let mut sum = b[i];
            for j in si..i {
                sum -= self.at(i, j) * b[j];
            }
            b[i] = sum;
        }
        // Diagonal: z = D⁻¹ y. Skipped modes are annihilated
        // (pseudo-inverse) or, under the pivot-shift fallback, divided by
        // the substitute pivot.
        for i in 0..self.n {
            let d = self.at(i, i);
            b[i] = if self.skipped[i] || d == 0.0 {
                if self.null_shift > 0.0 {
                    b[i] / self.null_shift
                } else {
                    0.0
                }
            } else {
                b[i] / d
            };
        }
        // Backward: Lᵀ x = z (column sweep).
        for i in (0..self.n).rev() {
            let xi = b[i];
            let si = self.start[i];
            for j in si..i {
                b[j] -= self.at(i, j) * xi;
            }
        }
    }

    /// Flops of one [`SkylineLdlt::solve_in_place`] (forward + diagonal +
    /// backward sweeps over the profile) — used by the virtual-time model.
    pub fn solve_flops(&self) -> u64 {
        let profile: u64 = (0..self.n).map(|i| (i - self.start[i]) as u64).sum();
        4 * profile + self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::solve_dense;

    fn spd_banded(n: usize) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 4.0 + (i as f64) * 0.01;
            if i + 1 < n {
                a[i * n + i + 1] = -1.0;
                a[(i + 1) * n + i] = -1.0;
            }
        }
        a
    }

    #[test]
    fn matches_dense_lu_on_spd_tridiagonal() {
        let n = 12;
        let a = spd_banded(n);
        let f = SkylineLdlt::factor(&a, n, DEFAULT_PIVOT_TOL);
        assert_eq!(f.n_skipped(), 0);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = b.clone();
        f.solve_in_place(&mut x);
        let want = solve_dense(n, &mut a.clone(), &b);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-10, "{xi} vs {wi}");
        }
    }

    #[test]
    fn csr_and_dense_paths_agree_bit_for_bit() {
        let n = 8;
        let a = spd_banded(n);
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if a[i * n + j] != 0.0 {
                    coo.push(i, j, a[i * n + j]).unwrap();
                }
            }
        }
        let csr = coo.to_csr();
        let fd = SkylineLdlt::factor(&a, n, DEFAULT_PIVOT_TOL);
        let fs = SkylineLdlt::factor_csr(&csr, DEFAULT_PIVOT_TOL);
        let mut xd: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut xs = xd.clone();
        fd.solve_in_place(&mut xd);
        fs.solve_in_place(&mut xs);
        assert_eq!(xd, xs);
    }

    #[test]
    fn zero_row_is_skipped_not_fatal() {
        // Mode 1 is entirely zero (a fully-constrained part's coarse mode).
        let a = [2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0];
        let f = SkylineLdlt::factor(&a, 3, DEFAULT_PIVOT_TOL);
        assert_eq!(f.skipped_modes(), vec![1]);
        let mut x = vec![4.0, 5.0, 6.0];
        f.solve_in_place(&mut x);
        assert_eq!(x, vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn rank_deficient_dependent_rows_are_pivoted_out() {
        // Row 2 = row 0 (rank 2 matrix): the dependent pivot cancels to ~0
        // and must be skipped, leaving a consistent solve on the rest.
        let a = [
            2.0, 1.0, 2.0, //
            1.0, 3.0, 1.0, //
            2.0, 1.0, 2.0,
        ];
        let f = SkylineLdlt::factor(&a, 3, DEFAULT_PIVOT_TOL);
        assert_eq!(f.skipped_modes(), vec![2]);
        // b in the range: A [1, 1, 0]ᵀ = [3, 4, 3]ᵀ.
        let mut x = vec![3.0, 4.0, 3.0];
        f.solve_in_place(&mut x);
        // Check A x = b on the factorable components.
        let ax: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a[i * 3 + j] * x[j]).sum())
            .collect();
        for (got, want) in ax.iter().zip([3.0, 4.0, 3.0]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn profile_solve_is_allocation_free_shape() {
        // Structural check: solve_flops reflects the banded profile, far
        // below the dense n² count.
        let n = 64;
        let f = SkylineLdlt::factor(&spd_banded(n), n, DEFAULT_PIVOT_TOL);
        assert!(f.solve_flops() < (n * n) as u64);
    }
}
