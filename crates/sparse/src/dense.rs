//! Dense `f64` vector kernels.
//!
//! These are the DAXPY / dot-product / norm primitives that dominate the
//! vector-update cost of the Krylov solvers (paper Section 3.1.2). They are
//! deliberately written over plain slices so the same kernels serve global
//! vectors, subdomain-local vectors, and Hessenberg columns, and so the
//! compiler can vectorize them.

/// `y <- alpha * x + y` (DAXPY).
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y <- alpha * x + beta * y`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Euclidean inner product `<x, y>`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `||x||_2`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Discrete L1 norm `||x||_1 = sum |x_i|` (the norm of Theorem 1).
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Max norm `||x||_inf`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `x <- alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// `y <- alpha * x`, writing into a caller-provided buffer.
///
/// Bit-identical to `copy(x, y); scale(alpha, y)` (each element is the
/// same single product `alpha * x_i`) while touching `y` once instead of
/// twice — the fused form GMRES uses to normalize a new basis vector out
/// of the Arnoldi temporary.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn scale_into(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "scale_into: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi;
    }
}

/// `z <- x - y`, writing into a caller-provided buffer.
///
/// # Panics
/// Panics if the three slices have different lengths.
#[inline]
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    assert_eq!(x.len(), z.len(), "sub_into: output length mismatch");
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi - yi;
    }
}

/// Copies `x` into `y`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Component-wise multiplication `y_i <- d_i * x_i` (application of a diagonal
/// matrix).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn diag_mul_into(d: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(d.len(), x.len(), "diag_mul_into: length mismatch");
    assert_eq!(d.len(), y.len(), "diag_mul_into: output length mismatch");
    for ((yi, di), xi) in y.iter_mut().zip(d).zip(x) {
        *yi = di * xi;
    }
}

/// In-place component-wise multiplication `x_i <- d_i * x_i`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn diag_mul(d: &[f64], x: &mut [f64]) {
    assert_eq!(d.len(), x.len(), "diag_mul: length mismatch");
    for (xi, di) in x.iter_mut().zip(d) {
        *xi *= di;
    }
}

/// Fills `x` with zeros.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Solves the dense `n x n` system `A x = b` by LU with partial pivoting.
///
/// `a` is row-major and is consumed as scratch. Intended for small reference
/// systems (test oracles, Hessenberg least squares, polynomial construction)
/// — not a sparse-solver replacement.
///
/// # Panics
/// Panics on dimension mismatch or a numerically singular matrix.
pub fn solve_dense(n: usize, a: &mut [f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "solve_dense: matrix length mismatch");
    assert_eq!(b.len(), n, "solve_dense: rhs length mismatch");
    let mut x = b.to_vec();
    for p in 0..n {
        // Partial pivot.
        let (piv, pmax) = (p..n)
            .map(|r| (r, a[r * n + p].abs()))
            .max_by(|u, v| u.1.partial_cmp(&v.1).expect("non-NaN pivot"))
            .expect("non-empty pivot column");
        assert!(pmax > 1e-300, "solve_dense: singular matrix at column {p}");
        if piv != p {
            for c in 0..n {
                a.swap(p * n + c, piv * n + c);
            }
            x.swap(p, piv);
        }
        let d = a[p * n + p];
        for r in (p + 1)..n {
            let f = a[r * n + p] / d;
            if f == 0.0 {
                continue;
            }
            for c in p..n {
                a[r * n + c] -= f * a[p * n + c];
            }
            x[r] -= f * x[p];
        }
    }
    for p in (0..n).rev() {
        for c in (p + 1)..n {
            x[p] -= a[p * n + c] * x[c];
        }
        x[p] /= a[p * n + p];
    }
    x
}

/// Floating-point operation count of one `axpy`/`dot` of length `n`.
///
/// Used by the virtual-time machine model; kept next to the kernels so the
/// count stays in sync with the implementation (one multiply + one add per
/// element).
#[inline]
pub fn vector_op_flops(n: usize) -> u64 {
    2 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-12 * (1.0 + a.abs() + b.abs()),
            "{a} vs {b}"
        );
    }

    #[test]
    fn axpy_matches_reference() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_matches_reference() {
        let x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        axpby(2.0, &x, -1.0, &mut y);
        assert_eq!(y, [-1.0, 0.0]);
    }

    #[test]
    fn dot_and_norms() {
        let x = [3.0, -4.0];
        assert_close(dot(&x, &x), 25.0);
        assert_close(norm2(&x), 5.0);
        assert_close(norm1(&x), 7.0);
        assert_close(norm_inf(&x), 4.0);
    }

    #[test]
    fn empty_vectors_are_fine() {
        let x: [f64; 0] = [];
        assert_eq!(dot(&x, &x), 0.0);
        assert_eq!(norm2(&x), 0.0);
        assert_eq!(norm1(&x), 0.0);
        assert_eq!(norm_inf(&x), 0.0);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn sub_into_matches_reference() {
        let x = [5.0, 7.0];
        let y = [1.0, 2.0];
        let mut z = [0.0; 2];
        sub_into(&x, &y, &mut z);
        assert_eq!(z, [4.0, 5.0]);
    }

    #[test]
    fn diag_mul_variants_agree() {
        let d = [2.0, 3.0, 4.0];
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 3];
        diag_mul_into(&d, &x, &mut y);
        assert_eq!(y, [2.0, 3.0, 4.0]);

        let mut x2 = x;
        diag_mul(&d, &mut x2);
        assert_eq!(x2, y);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatched_lengths() {
        let x = [1.0];
        let mut y = [1.0, 2.0];
        axpy(1.0, &x, &mut y);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn solve_dense_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_dense(2, &mut a, &[3.0, 4.0]);
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_dense_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(2, &mut a, &[5.0, 7.0]);
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn solve_dense_random_3x3() {
        let a0 = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let xe = [1.0, -2.0, 3.0];
        // b = A * xe
        let mut b = [0.0; 3];
        for r in 0..3 {
            for c in 0..3 {
                b[r] += a0[r * 3 + c] * xe[c];
            }
        }
        let mut a = a0.to_vec();
        let x = solve_dense(3, &mut a, &b);
        for (xi, ei) in x.iter().zip(&xe) {
            assert_close(*xi, *ei);
        }
    }

    #[test]
    #[should_panic(expected = "singular matrix")]
    fn solve_dense_rejects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        solve_dense(2, &mut a, &[1.0, 2.0]);
    }

    #[test]
    fn flop_count_is_two_per_element() {
        assert_eq!(vector_op_flops(10), 20);
        assert_eq!(vector_op_flops(0), 0);
    }
}
