//! Dense `f64` vector kernels.
//!
//! These are the DAXPY / dot-product / norm primitives that dominate the
//! vector-update cost of the Krylov solvers (paper Section 3.1.2). They are
//! deliberately written over plain slices so the same kernels serve global
//! vectors, subdomain-local vectors, and Hessenberg columns, and so the
//! compiler can vectorize them.

/// `y <- alpha * x + y` (DAXPY).
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y <- alpha * x + beta * y`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Euclidean inner product `<x, y>`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `||x||_2`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Discrete L1 norm `||x||_1 = sum |x_i|` (the norm of Theorem 1).
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Max norm `||x||_inf`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `x <- alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// `y <- alpha * x`, writing into a caller-provided buffer.
///
/// Bit-identical to `copy(x, y); scale(alpha, y)` (each element is the
/// same single product `alpha * x_i`) while touching `y` once instead of
/// twice — the fused form GMRES uses to normalize a new basis vector out
/// of the Arnoldi temporary.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn scale_into(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "scale_into: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi;
    }
}

/// `z <- x - y`, writing into a caller-provided buffer.
///
/// # Panics
/// Panics if the three slices have different lengths.
#[inline]
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    assert_eq!(x.len(), z.len(), "sub_into: output length mismatch");
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi - yi;
    }
}

/// Copies `x` into `y`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Component-wise multiplication `y_i <- d_i * x_i` (application of a diagonal
/// matrix).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn diag_mul_into(d: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(d.len(), x.len(), "diag_mul_into: length mismatch");
    assert_eq!(d.len(), y.len(), "diag_mul_into: output length mismatch");
    for ((yi, di), xi) in y.iter_mut().zip(d).zip(x) {
        *yi = di * xi;
    }
}

/// In-place component-wise multiplication `x_i <- d_i * x_i`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn diag_mul(d: &[f64], x: &mut [f64]) {
    assert_eq!(d.len(), x.len(), "diag_mul: length mismatch");
    for (xi, di) in x.iter_mut().zip(d) {
        *xi *= di;
    }
}

/// Fills `x` with zeros.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Solves the dense `n x n` system `A x = b` by LU with partial pivoting.
///
/// `a` is row-major and is consumed as scratch. Intended for small reference
/// systems (test oracles, Hessenberg least squares, polynomial construction)
/// — not a sparse-solver replacement.
///
/// # Panics
/// Panics on dimension mismatch or a numerically singular matrix.
pub fn solve_dense(n: usize, a: &mut [f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "solve_dense: matrix length mismatch");
    assert_eq!(b.len(), n, "solve_dense: rhs length mismatch");
    let mut x = b.to_vec();
    for p in 0..n {
        // Partial pivot.
        let (piv, pmax) = (p..n)
            .map(|r| (r, a[r * n + p].abs()))
            .max_by(|u, v| u.1.partial_cmp(&v.1).expect("non-NaN pivot"))
            .expect("non-empty pivot column");
        assert!(pmax > 1e-300, "solve_dense: singular matrix at column {p}");
        if piv != p {
            for c in 0..n {
                a.swap(p * n + c, piv * n + c);
            }
            x.swap(p, piv);
        }
        let d = a[p * n + p];
        for r in (p + 1)..n {
            let f = a[r * n + p] / d;
            if f == 0.0 {
                continue;
            }
            for c in p..n {
                a[r * n + c] -= f * a[p * n + c];
            }
            x[r] -= f * x[p];
        }
    }
    for p in (0..n).rev() {
        for c in (p + 1)..n {
            x[p] -= a[p * n + c] * x[c];
        }
        x[p] /= a[p * n + p];
    }
    x
}

/// Eigendecomposition of a small dense symmetric matrix by the cyclic
/// Jacobi method.
///
/// `a` is row-major `n × n` (only assumed symmetric; the upper triangle is
/// trusted). Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted
/// ascending and `eigenvectors` row-major — row `k` is the unit eigenvector
/// of `eigenvalues[k]`. Deterministic: fixed sweep order, fixed rotation
/// convention, no data-dependent branching beyond the convergence test.
///
/// Intended for the small per-subdomain blocks of the two-level
/// preconditioner's `lowrank` coarse space (tens to a few hundred rows) —
/// not a large-scale eigensolver.
///
/// # Panics
/// Panics when `a.len() != n * n`.
pub fn sym_eigen_jacobi(n: usize, a: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n, "sym_eigen_jacobi: matrix length mismatch");
    let mut m = a.to_vec();
    // v starts as identity; rows accumulate Vᵀ so row k ends as eigenvector k.
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let scale: f64 = (0..n)
        .map(|i| m[i * n + i].abs())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    let tol = 1e-14 * scale;
    for _sweep in 0..64 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(m[p * n + q].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() <= tol {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                // Stable rotation (Golub & Van Loan): t = sign/(|θ|+√(θ²+1)).
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vpk = v[p * n + k];
                    let vqk = v[q * n + k];
                    v[p * n + k] = c * vpk - s * vqk;
                    v[q * n + k] = s * vpk + c * vqk;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[i * n + i]
            .partial_cmp(&m[j * n + j])
            .expect("non-NaN eigenvalue")
    });
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[i * n + i]).collect();
    let mut eigenvectors = vec![0.0; n * n];
    for (row, &i) in order.iter().enumerate() {
        eigenvectors[row * n..(row + 1) * n].copy_from_slice(&v[i * n..(i + 1) * n]);
    }
    (eigenvalues, eigenvectors)
}

/// Floating-point operation count of one `axpy`/`dot` of length `n`.
///
/// Used by the virtual-time machine model; kept next to the kernels so the
/// count stays in sync with the implementation (one multiply + one add per
/// element).
#[inline]
pub fn vector_op_flops(n: usize) -> u64 {
    2 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-12 * (1.0 + a.abs() + b.abs()),
            "{a} vs {b}"
        );
    }

    #[test]
    fn jacobi_eigen_recovers_spectrum_of_a_laplacian_stencil() {
        // 1-D Laplacian tridiag(-1, 2, -1): λ_k = 2 - 2 cos(kπ/(n+1)).
        let n = 6;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 2.0;
            if i + 1 < n {
                a[i * n + i + 1] = -1.0;
                a[(i + 1) * n + i] = -1.0;
            }
        }
        let (vals, vecs) = sym_eigen_jacobi(n, &a);
        for k in 0..n {
            let exact =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert_close(vals[k], exact);
            // Residual ‖A v − λ v‖∞ per eigenpair.
            let v = &vecs[k * n..(k + 1) * n];
            for i in 0..n {
                let av: f64 = (0..n).map(|j| a[i * n + j] * v[j]).sum();
                assert!((av - vals[k] * v[i]).abs() < 1e-10);
            }
        }
        // Determinism: same input, bit-identical output.
        let (vals2, vecs2) = sym_eigen_jacobi(n, &a);
        assert_eq!(vals, vals2);
        assert_eq!(vecs, vecs2);
    }

    #[test]
    fn axpy_matches_reference() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_matches_reference() {
        let x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        axpby(2.0, &x, -1.0, &mut y);
        assert_eq!(y, [-1.0, 0.0]);
    }

    #[test]
    fn dot_and_norms() {
        let x = [3.0, -4.0];
        assert_close(dot(&x, &x), 25.0);
        assert_close(norm2(&x), 5.0);
        assert_close(norm1(&x), 7.0);
        assert_close(norm_inf(&x), 4.0);
    }

    #[test]
    fn empty_vectors_are_fine() {
        let x: [f64; 0] = [];
        assert_eq!(dot(&x, &x), 0.0);
        assert_eq!(norm2(&x), 0.0);
        assert_eq!(norm1(&x), 0.0);
        assert_eq!(norm_inf(&x), 0.0);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn sub_into_matches_reference() {
        let x = [5.0, 7.0];
        let y = [1.0, 2.0];
        let mut z = [0.0; 2];
        sub_into(&x, &y, &mut z);
        assert_eq!(z, [4.0, 5.0]);
    }

    #[test]
    fn diag_mul_variants_agree() {
        let d = [2.0, 3.0, 4.0];
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 3];
        diag_mul_into(&d, &x, &mut y);
        assert_eq!(y, [2.0, 3.0, 4.0]);

        let mut x2 = x;
        diag_mul(&d, &mut x2);
        assert_eq!(x2, y);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatched_lengths() {
        let x = [1.0];
        let mut y = [1.0, 2.0];
        axpy(1.0, &x, &mut y);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn solve_dense_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_dense(2, &mut a, &[3.0, 4.0]);
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_dense_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(2, &mut a, &[5.0, 7.0]);
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn solve_dense_random_3x3() {
        let a0 = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let xe = [1.0, -2.0, 3.0];
        // b = A * xe
        let mut b = [0.0; 3];
        for r in 0..3 {
            for c in 0..3 {
                b[r] += a0[r * 3 + c] * xe[c];
            }
        }
        let mut a = a0.to_vec();
        let x = solve_dense(3, &mut a, &b);
        for (xi, ei) in x.iter().zip(&xe) {
            assert_close(*xi, *ei);
        }
    }

    #[test]
    #[should_panic(expected = "singular matrix")]
    fn solve_dense_rejects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        solve_dense(2, &mut a, &[1.0, 2.0]);
    }

    #[test]
    fn flop_count_is_two_per_element() {
        assert_eq!(vector_op_flops(10), 20);
        assert_eq!(vector_op_flops(0), 0);
    }
}
