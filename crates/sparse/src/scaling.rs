//! Norm-1 diagonal scaling (paper Section 2.1.1, Theorem 1).
//!
//! Given `K u = f` with `K` symmetric and irreducible, the scaling matrix
//! `D = diag(1/√d_i)` with `d_i = ‖k_i‖₁` transforms the system into
//! `A x = b`, `A = D K D`, `b = D f`, `u = D x`, and guarantees
//! `σ(A) ⊂ (0, 1)` for symmetric positive definite `K`. This is the
//! pre-processing step that lets the polynomial preconditioners be built on
//! the fixed interval `Θ = (0, 1)` without computing eigenvalues.
//!
//! Note on the bound: the Gershgorin discs of the *scaled* matrix can stick
//! out past 1 (row sums of `DKD` are not bounded by 1 in general); the bound
//! `λ_max(DKD) ≤ 1` instead follows from the quadratic form: for `y = Dx`,
//! `yᵀKy ≤ Σᵢⱼ|kᵢⱼ|·(yᵢ²+yⱼ²)/2 = Σᵢ dᵢyᵢ² = xᵀx` using the symmetry of
//! `K`, so the Rayleigh quotient of `DKD` never exceeds 1.

use crate::csr::CsrMatrix;
use crate::dense;
use crate::error::SparseError;

/// The norm-1 scaling map of Theorem 1: `d_i = 1/√s_i` for positive row
/// absolute sums, and 1 for empty rows so the transform stays well defined
/// (such systems are singular anyway and the solver reports them).
///
/// This is the **single** implementation of the map — the sequential
/// [`DiagonalScaling`] and the distributed Algorithm 3 in `parfem-dd` both
/// build their diagonals through it, so the two paths cannot drift.
pub fn inv_sqrt_scaling(row_sums: &[f64]) -> Vec<f64> {
    row_sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s.sqrt() } else { 1.0 })
        .collect()
}

/// The norm-1 diagonal scaling `D = diag(1/√‖k_i‖₁)` of a square matrix.
#[derive(Debug, Clone)]
pub struct DiagonalScaling {
    /// The diagonal entries of `D` (i.e. `1/√d_i`).
    d: Vec<f64>,
    /// The raw row sums `d_i = ‖k_i‖₁` (kept for diagnostics).
    row_sums: Vec<f64>,
}

impl DiagonalScaling {
    /// Computes the scaling for `k`.
    ///
    /// Rows with zero absolute sum (empty rows) get a scaling factor of 1 so
    /// the transform stays well defined; such systems are singular anyway and
    /// will be reported by the solver.
    ///
    /// # Errors
    /// Returns [`SparseError::NotSquare`] for rectangular input.
    pub fn from_matrix(k: &CsrMatrix) -> Result<Self, SparseError> {
        if k.n_rows() != k.n_cols() {
            return Err(SparseError::NotSquare {
                n_rows: k.n_rows(),
                n_cols: k.n_cols(),
            });
        }
        let row_sums = k.row_abs_sums();
        let d = inv_sqrt_scaling(&row_sums);
        Ok(DiagonalScaling { d, row_sums })
    }

    /// Builds the scaling directly from precomputed row absolute sums
    /// (used by the distributed Algorithm 3, where the sums are accumulated
    /// across subdomains before the square root).
    pub fn from_row_sums(row_sums: Vec<f64>) -> Self {
        let d = inv_sqrt_scaling(&row_sums);
        DiagonalScaling { d, row_sums }
    }

    /// The diagonal of `D`.
    pub fn diagonal(&self) -> &[f64] {
        &self.d
    }

    /// The row sums `d_i = ‖k_i‖₁`.
    pub fn row_sums(&self) -> &[f64] {
        &self.row_sums
    }

    /// Problem size.
    pub fn len(&self) -> usize {
        self.d.len()
    }

    /// Whether the scaling is empty (zero-dimensional system).
    pub fn is_empty(&self) -> bool {
        self.d.is_empty()
    }

    /// Returns the scaled matrix `A = D K D` (leaves `k` untouched).
    pub fn scale_matrix(&self, k: &CsrMatrix) -> CsrMatrix {
        let mut a = k.clone();
        a.scale_symmetric(&self.d);
        a
    }

    /// Scales the right-hand side: `b = D f`.
    pub fn scale_rhs(&self, f: &[f64]) -> Vec<f64> {
        let mut b = f.to_vec();
        dense::diag_mul(&self.d, &mut b);
        b
    }

    /// Recovers the original unknowns: `u = D x`.
    pub fn unscale_solution(&self, x: &[f64]) -> Vec<f64> {
        let mut u = x.to_vec();
        dense::diag_mul(&self.d, &mut u);
        u
    }

    /// In-place variants of [`DiagonalScaling::scale_rhs`] /
    /// [`DiagonalScaling::unscale_solution`] (they are the same map `v ↦ Dv`).
    pub fn apply_in_place(&self, v: &mut [f64]) {
        dense::diag_mul(&self.d, v);
    }
}

/// Convenience: scales the full system, returning `(A, b)` for `A x = b`.
///
/// ```
/// use parfem_sparse::{scaling::scale_system, CsrMatrix};
///
/// let k = CsrMatrix::from_dense(2, 2, &[4.0, -1.0, -1.0, 4.0]);
/// let (a, b, sc) = scale_system(&k, &[3.0, 3.0]).unwrap();
/// // The scaled operator's spectrum sits inside (0, 1) — here the row sums
/// // were 5, so the diagonal becomes 4/5.
/// assert!((a.get(0, 0) - 0.8).abs() < 1e-12);
/// // Solutions of A x = b map back with u = D x.
/// let u = sc.unscale_solution(&[1.0, 1.0]);
/// assert!((u[0] - 1.0 / 5.0_f64.sqrt()).abs() < 1e-12);
/// let _ = b;
/// ```
///
/// # Errors
/// Returns [`SparseError::NotSquare`] for a rectangular matrix and
/// [`SparseError::ShapeMismatch`] when `f` has the wrong length.
pub fn scale_system(
    k: &CsrMatrix,
    f: &[f64],
) -> Result<(CsrMatrix, Vec<f64>, DiagonalScaling), SparseError> {
    if f.len() != k.n_rows() {
        return Err(SparseError::ShapeMismatch {
            context: format!("rhs has length {}, matrix has {} rows", f.len(), k.n_rows()),
        });
    }
    let scaling = DiagonalScaling::from_matrix(k)?;
    let a = scaling.scale_matrix(k);
    let b = scaling.scale_rhs(f);
    Ok((a, b, scaling))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gershgorin::gershgorin_upper_bound;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn scaled_spectrum_is_inside_unit_interval() {
        // lambda_max(DKD) <= 1 (paper Eq. 12); measured by power iteration.
        // Note the Gershgorin discs of DKD itself may overshoot 1, so the
        // test checks the eigenvalue, not the row sums.
        let k = laplacian(25);
        let s = DiagonalScaling::from_matrix(&k).unwrap();
        let a = s.scale_matrix(&k);
        let lmax = crate::gershgorin::power_iteration_lambda_max(&a, 20_000, 1e-13);
        assert!(lmax <= 1.0 + 1e-10, "lambda_max {lmax}");
        assert!(lmax > 0.9, "scaling should not crush the spectrum: {lmax}");
    }

    #[test]
    fn unscaled_gershgorin_bound_is_row_sum_bound() {
        // Theorem 1 applies to the *original* matrix: lambda_max(K) <= max_i ||k_i||_1.
        let k = laplacian(25);
        let bound = k.row_abs_sums().into_iter().fold(0.0_f64, f64::max);
        let lmax = crate::gershgorin::power_iteration_lambda_max(&k, 20_000, 1e-13);
        assert!(lmax <= bound + 1e-10);
        assert_eq!(bound, gershgorin_upper_bound(&k));
    }

    #[test]
    fn scaling_preserves_solution() {
        // Solve DKD x = Df directly on a 1x1 and 2x2 case and check u = Dx
        // recovers K u = f.
        let k = CsrMatrix::from_dense(2, 2, &[4.0, 1.0, 1.0, 3.0]);
        let f = [1.0, 2.0];
        let (a, b, s) = scale_system(&k, &f).unwrap();
        // Dense solve of the 2x2 scaled system.
        let d = a.to_dense();
        let det = d[0] * d[3] - d[1] * d[2];
        let x = [
            (b[0] * d[3] - b[1] * d[1]) / det,
            (d[0] * b[1] - d[2] * b[0]) / det,
        ];
        let u = s.unscale_solution(&x);
        // Check K u = f.
        let r = k.spmv(&u);
        assert!((r[0] - f[0]).abs() < 1e-12);
        assert!((r[1] - f[1]).abs() < 1e-12);
    }

    #[test]
    fn symmetric_input_stays_symmetric() {
        let k = laplacian(8);
        let s = DiagonalScaling::from_matrix(&k).unwrap();
        let a = s.scale_matrix(&k);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn zero_row_gets_unit_scale() {
        let k = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 0.0]);
        let s = DiagonalScaling::from_matrix(&k).unwrap();
        assert_eq!(s.diagonal()[1], 1.0);
        assert_eq!(s.row_sums()[1], 0.0);
    }

    #[test]
    fn from_row_sums_matches_from_matrix() {
        let k = laplacian(5);
        let a = DiagonalScaling::from_matrix(&k).unwrap();
        let b = DiagonalScaling::from_row_sums(k.row_abs_sums());
        assert_eq!(a.diagonal(), b.diagonal());
    }

    #[test]
    fn rejects_rectangular() {
        let k = CsrMatrix::from_dense(1, 2, &[1.0, 2.0]);
        assert!(DiagonalScaling::from_matrix(&k).is_err());
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let k = laplacian(3);
        assert!(scale_system(&k, &[1.0]).is_err());
    }

    #[test]
    fn apply_in_place_matches_scale_rhs() {
        let k = laplacian(4);
        let s = DiagonalScaling::from_matrix(&k).unwrap();
        let f = [1.0, -2.0, 3.0, -4.0];
        let b = s.scale_rhs(&f);
        let mut f2 = f;
        s.apply_in_place(&mut f2);
        assert_eq!(b, f2.to_vec());
    }
}
