//! A general sparse direct subdomain solver: fill-reducing ordering plus
//! the pivot-tolerant profile LDLᵀ of [`crate::skyline`].
//!
//! This is the exact subdomain solve the domain-decomposition layer
//! registers as the `direct` preconditioner — the comparator the sparse
//! direct-solver literature (PAPERS.md) demands next to any iterative DD
//! result. Subdomain stiffness matrices are symmetric but **not**
//! necessarily definite: a floating subdomain (no Dirichlet support)
//! carries the full rigid-body null space, which kills ILU(0) with a zero
//! pivot (paper Eq. 45). Here the near-null pivots are *skipped* instead,
//! yielding the pseudo-inverse on the factorable complement — an exact
//! solve on the regular part of the operator and a well-defined
//! preconditioner everywhere.
//!
//! The ordering is a deterministic reverse Cuthill–McKee: since the
//! factorization backend stores rows by *profile*, the fill-reducing
//! objective is profile/bandwidth minimization (what AMD does for general
//! sparse backends, RCM does for skyline ones). Ties are broken by the
//! smallest node index, and disconnected components are seeded in index
//! order, so the permutation — and therefore every factor bit — is
//! reproducible across runs and platforms.

use crate::csr::CsrMatrix;
use crate::skyline::SkylineLdlt;

/// A sparse symmetric matrix factored as `P A Pᵀ = L D Lᵀ` with a
/// fill-reducing permutation `P` and profile (skyline) storage.
#[derive(Debug, Clone)]
pub struct SparseDirect {
    /// `perm[new] = old`: position `new` of the reordered matrix holds
    /// original index `old`.
    perm: Vec<usize>,
    /// `iperm[old] = new`.
    iperm: Vec<usize>,
    factor: SkylineLdlt,
}

/// Deterministic reverse Cuthill–McKee ordering of a symmetric sparsity
/// pattern. Returns `perm` with `perm[new] = old`. Components are seeded
/// from their minimum-degree node (smallest index on ties) in index order;
/// neighbours are visited in `(degree, index)` order.
pub fn rcm_ordering(a: &CsrMatrix) -> Vec<usize> {
    let n = a.n_rows();
    // Symmetrized adjacency (exclude the diagonal).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if j != i {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut nbrs: Vec<usize> = Vec::new();
    for seed0 in 0..n {
        if visited[seed0] {
            continue;
        }
        // Component seed: the minimum-degree unvisited node of the
        // component containing seed0 (found by a scouting BFS).
        let mut comp = vec![seed0];
        visited[seed0] = true;
        let mut head = 0;
        while head < comp.len() {
            let u = comp[head];
            head += 1;
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    comp.push(v);
                }
            }
        }
        let &seed = comp
            .iter()
            .min_by_key(|&&u| (degree[u], u))
            .expect("component is non-empty");
        for &u in &comp {
            visited[u] = false;
        }
        // Cuthill–McKee BFS from the seed.
        visited[seed] = true;
        let first = order.len();
        order.push(seed);
        let mut head = first;
        while head < order.len() {
            let u = order[head];
            head += 1;
            nbrs.clear();
            nbrs.extend(adj[u].iter().copied().filter(|&v| !visited[v]));
            nbrs.sort_unstable_by_key(|&v| (degree[v], v));
            for &v in &nbrs {
                visited[v] = true;
                order.push(v);
            }
        }
        // Reverse within the component (the "R" of RCM).
        order[first..].reverse();
    }
    order
}

impl SparseDirect {
    /// Orders and factors a symmetric sparse matrix. Near-zero pivots
    /// (relative to the largest diagonal magnitude, see
    /// [`crate::skyline::DEFAULT_PIVOT_TOL`]) are skipped, so singular
    /// floating-subdomain matrices factor into a pseudo-inverse instead of
    /// failing.
    ///
    /// # Panics
    /// Panics on a non-square input.
    pub fn factorize(a: &CsrMatrix, pivot_tol: f64) -> Self {
        let n = a.n_rows();
        assert_eq!(n, a.n_cols(), "SparseDirect::factorize: square input");
        let perm = rcm_ordering(a);
        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }
        // Profile of the permuted matrix: row `new` starts at the smallest
        // permuted column among its structural neighbours.
        let start: Vec<usize> = perm
            .iter()
            .enumerate()
            .map(|(new, &old)| {
                let (cols, _) = a.row(old);
                cols.iter()
                    .map(|&j| iperm[j])
                    .filter(|&pj| pj <= new)
                    .min()
                    .unwrap_or(new)
            })
            .collect();
        let factor =
            SkylineLdlt::factor_profile(n, start, |i, j| a.get(perm[i], perm[j]), pivot_tol);
        SparseDirect {
            perm,
            iperm,
            factor,
        }
    }

    /// The system size.
    pub fn dim(&self) -> usize {
        self.factor.dim()
    }

    /// Number of skipped (near-null) pivots — the detected rank deficiency.
    pub fn n_skipped(&self) -> usize {
        self.factor.n_skipped()
    }

    /// Largest diagonal magnitude of the factored matrix — the natural
    /// scale for [`SparseDirect::set_null_shift`].
    pub fn diag_scale(&self) -> f64 {
        self.factor.diag_scale()
    }

    /// Arms the pivot-shift fallback (see [`SkylineLdlt::set_null_shift`]):
    /// solves substitute `delta` for skipped pivots instead of annihilating
    /// their components, making the operator nonsingular — what a Krylov
    /// *preconditioner* over floating subdomains needs, where the exact
    /// pseudo-inverse (`delta = 0`, the default) erases the rigid modes
    /// every application and stalls.
    ///
    /// # Panics
    /// Panics on a negative or non-finite `delta`.
    pub fn set_null_shift(&mut self, delta: f64) {
        self.factor.set_null_shift(delta);
    }

    /// The fill-reducing permutation, `perm[new] = old`.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A x = b` in place (pseudo-inverse on the factorable
    /// complement when pivots were skipped), using `scratch` for the
    /// permuted right-hand side — no allocation.
    ///
    /// # Panics
    /// Panics when `b` or `scratch` does not match [`SparseDirect::dim`].
    pub fn solve_in_place_with(&self, b: &mut [f64], scratch: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "SparseDirect::solve_in_place_with: rhs length");
        assert_eq!(
            scratch.len(),
            n,
            "SparseDirect::solve_in_place_with: scratch length"
        );
        for new in 0..n {
            scratch[new] = b[self.perm[new]];
        }
        self.factor.solve_in_place(scratch);
        for old in 0..n {
            b[old] = scratch[self.iperm[old]];
        }
    }

    /// Allocating convenience wrapper around
    /// [`SparseDirect::solve_in_place_with`].
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let mut scratch = vec![0.0; self.dim()];
        self.solve_in_place_with(b, &mut scratch);
    }

    /// Flops of one solve (both permutation sweeps cost no flops).
    pub fn solve_flops(&self) -> u64 {
        self.factor.solve_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::solve_dense;
    use crate::skyline::DEFAULT_PIVOT_TOL;

    /// 5-point grid Laplacian with Dirichlet-eliminated boundary (SPD).
    fn grid_laplacian(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let r = j * nx + i;
                coo.push(r, r, 4.0).unwrap();
                if i + 1 < nx {
                    coo.push(r, r + 1, -1.0).unwrap();
                    coo.push(r + 1, r, -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, r + nx, -1.0).unwrap();
                    coo.push(r + nx, r, -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_dense_lu_on_grid_laplacian() {
        let a = grid_laplacian(5, 4);
        let n = a.n_rows();
        let f = SparseDirect::factorize(&a, DEFAULT_PIVOT_TOL);
        assert_eq!(f.n_skipped(), 0);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let mut x = b.clone();
        f.solve_in_place(&mut x);
        let want = solve_dense(n, &mut a.to_dense(), &b);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-12, "{xi} vs {wi}");
        }
    }

    #[test]
    fn rcm_is_a_permutation_and_deterministic() {
        let a = grid_laplacian(6, 3);
        let p1 = rcm_ordering(&a);
        let p2 = rcm_ordering(&a);
        assert_eq!(p1, p2);
        let mut seen = p1.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..a.n_rows()).collect::<Vec<_>>());
    }

    #[test]
    fn ordering_shrinks_the_profile_on_a_wide_grid() {
        // Natural row-major ordering of a tall-narrow grid numbered along
        // the long axis has bandwidth nx; RCM renumbers across the short
        // axis. Compare profile flops against the unpermuted skyline.
        let a = grid_laplacian(24, 3);
        let natural = SkylineLdlt::factor_csr(&a, DEFAULT_PIVOT_TOL);
        let ordered = SparseDirect::factorize(&a, DEFAULT_PIVOT_TOL);
        assert!(
            ordered.solve_flops() < natural.solve_flops(),
            "ordered {} vs natural {}",
            ordered.solve_flops(),
            natural.solve_flops()
        );
    }

    #[test]
    fn singular_matrix_gets_a_consistent_pseudo_solve() {
        // A graph Laplacian (no Dirichlet row) is singular with the
        // constant null vector; the solve must still satisfy A x = b for b
        // in the range.
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let next = (i + 1) % n;
            coo.push(i, i, 2.0).unwrap();
            coo.push(i, next, -1.0).unwrap();
            coo.push(next, i, -1.0).unwrap();
        }
        let a = coo.to_csr();
        let f = SparseDirect::factorize(&a, DEFAULT_PIVOT_TOL);
        assert_eq!(f.n_skipped(), 1);
        // b = A y for y = (0, 1, 2, 0, 1, 2) is in the range.
        let y: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let b = a.spmv(&y);
        let mut x = b.clone();
        f.solve_in_place(&mut x);
        let ax = a.spmv(&x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn disconnected_components_are_all_ordered() {
        // Two disjoint chains plus an isolated node.
        let n = 7;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for &(i, j) in &[(0, 1), (1, 2), (4, 5), (5, 6)] {
            coo.push(i, j, -1.0).unwrap();
            coo.push(j, i, -1.0).unwrap();
        }
        let a = coo.to_csr();
        let f = SparseDirect::factorize(&a, DEFAULT_PIVOT_TOL);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = b.clone();
        f.solve_in_place(&mut x);
        let want = solve_dense(n, &mut a.to_dense(), &b);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-12);
        }
    }

    #[test]
    fn scratch_solve_matches_allocating_solve() {
        let a = grid_laplacian(4, 4);
        let f = SparseDirect::factorize(&a, DEFAULT_PIVOT_TOL);
        let b: Vec<f64> = (0..a.n_rows()).map(|i| (i as f64).sin()).collect();
        let mut x1 = b.clone();
        f.solve_in_place(&mut x1);
        let mut x2 = b;
        let mut scratch = vec![0.0; f.dim()];
        f.solve_in_place_with(&mut x2, &mut scratch);
        assert_eq!(x1, x2);
    }
}
