//! Compressed-sparse-row matrices and matrix–vector products.
//!
//! The CSR SpMV is the single stiffness-matrix-related kernel of the whole
//! solver stack (paper Section 3.1.2): polynomial preconditioning, Arnoldi
//! steps and residual evaluations all reduce to it.

use crate::coo::CooMatrix;
use crate::error::SparseError;

/// A sparse matrix in compressed-sparse-row format.
///
/// Invariants (enforced by [`CsrMatrix::from_raw_parts`]):
/// - `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[n_rows] == col_idx.len() == values.len()`;
/// - within each row, column indices are strictly increasing and `< n_cols`.
///
/// ```
/// use parfem_sparse::CsrMatrix;
///
/// // [ 2 -1 ]
/// // [-1  2 ]
/// let a = CsrMatrix::from_dense(2, 2, &[2.0, -1.0, -1.0, 2.0]);
/// assert_eq!(a.nnz(), 4);
/// assert_eq!(a.spmv(&[1.0, 1.0]), vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from its raw arrays, validating all invariants.
    ///
    /// # Errors
    /// Returns [`SparseError::ShapeMismatch`] or
    /// [`SparseError::IndexOutOfBounds`] when an invariant is violated.
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != n_rows + 1 {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "row_ptr has {} entries, expected {}",
                    row_ptr.len(),
                    n_rows + 1
                ),
            });
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != col_idx.len() {
            return Err(SparseError::ShapeMismatch {
                context: "row_ptr must start at 0 and end at nnz".into(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "col_idx has {} entries but values has {}",
                    col_idx.len(),
                    values.len()
                ),
            });
        }
        for r in 0..n_rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::ShapeMismatch {
                    context: format!("row_ptr decreases at row {r}"),
                });
            }
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::ShapeMismatch {
                        context: format!("columns not strictly increasing in row {r}"),
                    });
                }
            }
            if let Some(&c) = row.last() {
                if c >= n_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        n_rows,
                        n_cols,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Debug-build check that every row's column indices are strictly
    /// increasing — the invariant [`CsrMatrix::get`]'s binary search and the
    /// SpMV kernels rely on. [`CsrMatrix::from_raw_parts`] validates this
    /// unconditionally; the internal literal constructors (`identity`,
    /// `from_diagonal`, `transpose`) assert it here in debug builds.
    #[inline]
    fn debug_assert_rows_sorted(self) -> Self {
        #[cfg(debug_assertions)]
        for r in 0..self.n_rows {
            let (cols, _) = self.row(r);
            debug_assert!(
                cols.windows(2).all(|w| w[0] < w[1]),
                "CSR row {r} columns not strictly increasing"
            );
        }
        self
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
        .debug_assert_rows_sorted()
    }

    /// A square matrix with `diag` on the diagonal and zeros elsewhere.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: diag.to_vec(),
        }
        .debug_assert_rows_sorted()
    }

    /// Builds from a dense row-major array, dropping exact zeros.
    pub fn from_dense(n_rows: usize, n_cols: usize, dense: &[f64]) -> Self {
        assert_eq!(dense.len(), n_rows * n_cols, "from_dense: length mismatch");
        let mut coo = CooMatrix::new(n_rows, n_cols);
        for r in 0..n_rows {
            for c in 0..n_cols {
                let v = dense[r * n_cols + c];
                if v != 0.0 {
                    coo.push(r, c, v).expect("in-bounds by construction");
                }
            }
        }
        coo.to_csr()
    }

    /// Converts to a dense row-major array (test/diagnostic helper).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n_rows * self.n_cols];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                d[r * self.n_cols + c] = v;
            }
        }
        d
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Mutable access to the values of row `r` (structure is immutable).
    #[inline]
    pub fn row_values_mut(&mut self, r: usize) -> &mut [f64] {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        &mut self.values[span]
    }

    /// Raw CSR arrays `(row_ptr, col_idx, values)`.
    pub fn raw_parts(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Mutable access to the full values array (structure is immutable, so
    /// all CSR invariants are preserved).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The entry at `(r, c)`, zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// The main diagonal as a dense vector (zeros where unstored).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Sparse matrix–vector product `y = A x` into a caller buffer.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv: y length mismatch");
        crate::kernels::spmv_raw(&self.row_ptr, &self.col_idx, &self.values, x, y);
    }

    /// Row-partitioned multithreaded `y = A x` (bit-identical to
    /// [`CsrMatrix::spmv_into`] for any thread count); see
    /// [`crate::kernels::par_spmv_into`].
    ///
    /// # Panics
    /// Panics if the vector lengths mismatch the matrix shape.
    pub fn par_spmv_into(&self, x: &[f64], y: &mut [f64], threads: usize) {
        crate::kernels::par_spmv_into(self, x, y, threads);
    }

    /// Fused `y = alpha * A x + beta * y` in one pass over `y`; see
    /// [`crate::kernels::spmv_axpby_raw`].
    ///
    /// # Panics
    /// Panics if the vector lengths mismatch the matrix shape.
    pub fn spmv_axpby(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv_axpby: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv_axpby: y length mismatch");
        crate::kernels::spmv_axpby_raw(
            alpha,
            &self.row_ptr,
            &self.col_idx,
            &self.values,
            x,
            beta,
            y,
        );
    }

    /// Allocating variant of [`CsrMatrix::spmv_into`].
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// `y += A x` (no zeroing of `y`).
    ///
    /// # Panics
    /// Panics if the vector lengths mismatch the matrix shape.
    pub fn spmv_add_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv_add: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "spmv_add: y length mismatch");
        crate::kernels::spmv_add_raw(&self.row_ptr, &self.col_idx, &self.values, x, y);
    }

    /// Floating-point operations of one SpMV with this matrix.
    #[inline]
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }

    /// The transpose `Aᵀ` as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let nnz = self.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        let mut next = counts.clone();
        for r in 0..self.n_rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let slot = next[c];
                col_idx[slot] = r;
                values[slot] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr: counts,
            col_idx,
            values,
        }
        .debug_assert_rows_sorted()
    }

    /// Whether the matrix is numerically symmetric to tolerance `tol`
    /// (relative to the largest absolute entry).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        let scale = self
            .values
            .iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1.0);
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Structural asymmetry: compare entry-wise through `get`.
            for r in 0..self.n_rows {
                let (cols, vals) = self.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    if (v - self.get(c, r)).abs() > tol * scale {
                        return false;
                    }
                }
            }
            return true;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol * scale)
    }

    /// Symmetric diagonal scaling `A <- D A D` with `D = diag(d)`, in place.
    ///
    /// # Panics
    /// Panics if `d.len()` differs from the (square) matrix dimension.
    pub fn scale_symmetric(&mut self, d: &[f64]) {
        assert_eq!(self.n_rows, self.n_cols, "scale_symmetric: square only");
        assert_eq!(d.len(), self.n_rows, "scale_symmetric: d length mismatch");
        for r in 0..self.n_rows {
            let dr = d[r];
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                self.values[k] *= dr * d[self.col_idx[k]];
            }
        }
    }

    /// Row-wise absolute sums `‖k_i‖₁` (the discrete L1 norms of Theorem 1).
    pub fn row_abs_sums(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| {
                let (_, vals) = self.row(r);
                vals.iter().map(|v| v.abs()).sum()
            })
            .collect()
    }

    /// `C = A + alpha * B` for structurally arbitrary CSR operands.
    ///
    /// # Errors
    /// Returns [`SparseError::ShapeMismatch`] if shapes differ.
    pub fn add_scaled(&self, alpha: f64, other: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "add_scaled: {}x{} vs {}x{}",
                    self.n_rows, self.n_cols, other.n_rows, other.n_cols
                ),
            });
        }
        let mut coo = CooMatrix::with_capacity(self.n_rows, self.n_cols, self.nnz() + other.nnz());
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r, c, v).expect("in-bounds by invariant");
            }
            let (cols, vals) = other.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r, c, alpha * v).expect("in-bounds by invariant");
            }
        }
        Ok(coo.to_csr())
    }

    /// Drops stored entries with `|value| <= threshold` (returns a new matrix).
    pub fn prune(&self, threshold: f64) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v.abs() > threshold {
                    coo.push(r, c, v).expect("in-bounds by invariant");
                }
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        CsrMatrix::from_dense(3, 3, &[2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0])
    }

    #[test]
    fn identity_spmv_is_identity() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.spmv(&x), x.to_vec());
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let y = a.spmv(&x);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_add_accumulates() {
        let a = sample();
        let x = [1.0, 0.0, 0.0];
        let mut y = vec![10.0, 10.0, 10.0];
        a.spmv_add_into(&x, &mut y);
        assert_eq!(y, vec![12.0, 9.0, 10.0]);
    }

    #[test]
    fn get_returns_zero_for_unstored() {
        let a = sample();
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let a = sample();
        assert_eq!(a.transpose(), a);
    }

    #[test]
    fn transpose_rectangular() {
        // [1 2 0]
        // [0 0 3]
        let a = CsrMatrix::from_dense(2, 3, &[1.0, 2.0, 0.0, 0.0, 0.0, 3.0]);
        let t = a.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(2, 1), 3.0);
        // Transposing twice is the identity operation.
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        let a = sample();
        assert!(a.is_symmetric(1e-14));
        let b = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 1.0]);
        assert!(!b.is_symmetric(1e-14));
        let rect = CsrMatrix::from_dense(1, 2, &[1.0, 0.0]);
        assert!(!rect.is_symmetric(1e-14));
    }

    #[test]
    fn symmetric_scaling_matches_dense() {
        let mut a = sample();
        let d = [1.0, 0.5, 2.0];
        a.scale_symmetric(&d);
        // (DAD)_{ij} = d_i a_{ij} d_j
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -0.5);
        assert_eq!(a.get(1, 0), -0.5);
        assert_eq!(a.get(1, 1), 0.5);
        assert_eq!(a.get(2, 2), 8.0);
    }

    #[test]
    fn row_abs_sums_match_theorem_1_norm() {
        let a = sample();
        assert_eq!(a.row_abs_sums(), vec![3.0, 4.0, 3.0]);
    }

    #[test]
    fn add_scaled_combines_structures() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let b = CsrMatrix::from_dense(2, 2, &[0.0, 2.0, 2.0, 0.0]);
        let c = a.add_scaled(0.5, &b).unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(1, 1), 1.0);
    }

    #[test]
    fn add_scaled_rejects_shape_mismatch() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(3);
        assert!(a.add_scaled(1.0, &b).is_err());
    }

    #[test]
    fn effective_stiffness_combination() {
        // The elastodynamics effective matrix alpha*M + beta*K (paper Eq. 52)
        // built via add_scaled.
        let k = sample();
        let m = CsrMatrix::from_diagonal(&[2.0, 2.0, 2.0]);
        let keff = m.add_scaled(0.25, &k).unwrap();
        assert_eq!(keff.get(0, 0), 2.5);
        assert_eq!(keff.get(0, 1), -0.25);
    }

    #[test]
    fn prune_drops_small_entries() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 1e-15, 1e-15, 1.0]);
        let p = a.prune(1e-12);
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(0, 1), 0.0);
    }

    #[test]
    fn from_raw_parts_validates() {
        // row_ptr wrong length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // columns out of bounds
        assert!(CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![1], vec![1.0]).is_err());
        // unsorted columns
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]).is_err());
        // duplicate columns
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // valid
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn to_dense_round_trips() {
        let dense = [2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0];
        let a = CsrMatrix::from_dense(3, 3, &dense);
        assert_eq!(a.to_dense(), dense.to_vec());
    }

    #[test]
    fn spmv_flops_counts_two_per_nnz() {
        let a = sample();
        assert_eq!(a.spmv_flops(), 2 * a.nnz() as u64);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn spmv_rejects_bad_x() {
        sample().spmv(&[1.0, 2.0]);
    }
}
