//! Error type shared by the sparse kernels.

use std::fmt;

/// Errors produced by sparse-matrix construction and factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A triplet or index referenced a row/column outside the matrix shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        n_rows: usize,
        /// Number of columns in the matrix.
        n_cols: usize,
    },
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// A factorization hit a zero (or numerically negligible) pivot.
    ///
    /// For ILU(0) on an element-based subdomain matrix this is the paper's
    /// "floating subdomain" failure mode (Section 3.2.3, Eq. 45): a subdomain
    /// without enough Dirichlet support has a singular local stiffness matrix.
    ZeroPivot {
        /// Row at which the pivot vanished.
        row: usize,
        /// The pivot value actually encountered.
        value: f64,
    },
    /// An operation required a square matrix but received a rectangular one.
    NotSquare {
        /// Number of rows.
        n_rows: usize,
        /// Number of columns.
        n_cols: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows,
                n_cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {n_rows}x{n_cols} matrix"
            ),
            SparseError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            SparseError::ZeroPivot { row, value } => write!(
                f,
                "zero pivot at row {row} (value {value:.3e}); matrix is singular or needs pivoting"
            ),
            SparseError::NotSquare { n_rows, n_cols } => {
                write!(
                    f,
                    "operation requires a square matrix, got {n_rows}x{n_cols}"
                )
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            n_rows: 3,
            n_cols: 3,
        };
        assert!(e.to_string().contains("(5, 7)"));
        assert!(e.to_string().contains("3x3"));

        let e = SparseError::ZeroPivot { row: 2, value: 0.0 };
        assert!(e.to_string().contains("row 2"));

        let e = SparseError::NotSquare {
            n_rows: 4,
            n_cols: 2,
        };
        assert!(e.to_string().contains("4x2"));

        let e = SparseError::ShapeMismatch {
            context: "spmv".into(),
        };
        assert!(e.to_string().contains("spmv"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SparseError::ZeroPivot { row: 1, value: 0.0 },
            SparseError::ZeroPivot { row: 1, value: 0.0 }
        );
        assert_ne!(
            SparseError::ZeroPivot { row: 1, value: 0.0 },
            SparseError::ZeroPivot { row: 2, value: 0.0 }
        );
    }
}
