//! Spectrum estimation: Gershgorin discs and power iteration.
//!
//! The polynomial preconditioners of the paper are built from an estimate
//! `Θ ⊇ σ(A)` of the matrix spectrum. After norm-1 diagonal scaling the
//! paper simply uses `Θ = (0, 1)` (justified by Theorem 1 / Gershgorin);
//! this module provides the general estimators used for the Figure-10
//! sensitivity study and for unscaled systems.

use crate::csr::CsrMatrix;
use crate::dense;

/// Gershgorin upper bound: `λ_max(A) ≤ max_i ‖a_i‖₁` for symmetric `A`
/// (paper Theorem 1, Eq. 8).
pub fn gershgorin_upper_bound(a: &CsrMatrix) -> f64 {
    a.row_abs_sums().iter().fold(0.0_f64, |m, &s| m.max(s))
}

/// Gershgorin lower bound for a symmetric matrix:
/// `λ_min(A) ≥ min_i (a_ii − Σ_{j≠i} |a_ij|)`.
pub fn gershgorin_lower_bound(a: &CsrMatrix) -> f64 {
    let mut lb = f64::INFINITY;
    for r in 0..a.n_rows() {
        let (cols, vals) = a.row(r);
        let mut diag = 0.0;
        let mut off = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c == r {
                diag = v;
            } else {
                off += v.abs();
            }
        }
        lb = lb.min(diag - off);
    }
    if lb.is_finite() {
        lb
    } else {
        0.0
    }
}

/// The union-of-discs interval `[lower, upper]` containing `σ(A)` for a
/// symmetric matrix.
pub fn gershgorin_interval(a: &CsrMatrix) -> (f64, f64) {
    (gershgorin_lower_bound(a), gershgorin_upper_bound(a))
}

/// Estimates `λ_max(A)` for symmetric `A` by power iteration.
///
/// Returns the Rayleigh-quotient estimate after at most `max_iters`
/// iterations or when successive estimates differ by less than `tol`
/// relatively. Deterministic: starts from a fixed pseudo-random vector (a
/// symmetric start such as all-ones can be exactly orthogonal to the top
/// eigenmode of structured matrices, which would silently converge to the
/// wrong eigenvalue).
pub fn power_iteration_lambda_max(a: &CsrMatrix, max_iters: usize, tol: f64) -> f64 {
    let n = a.n_rows();
    assert_eq!(n, a.n_cols(), "power iteration: square matrices only");
    if n == 0 {
        return 0.0;
    }
    let mut x = deterministic_start(n);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for it in 0..max_iters {
        a.spmv_into(&x, &mut y);
        let ny = dense::norm2(&y);
        if ny == 0.0 {
            // x is in the null space; perturb deterministically and retry.
            for (i, xi) in x.iter_mut().enumerate() {
                *xi += ((i % 7) as f64 + 1.0) * 1e-3;
            }
            let nx = dense::norm2(&x);
            dense::scale(1.0 / nx, &mut x);
            continue;
        }
        let new_lambda = dense::dot(&x, &y); // Rayleigh quotient (x normalized)
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        if it > 0 && (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1e-300) {
            return new_lambda;
        }
        lambda = new_lambda;
    }
    lambda
}

/// A fixed, unit-norm pseudo-random start vector (xorshift64).
fn deterministic_start(n: usize) -> Vec<f64> {
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to (-1, 1), bounded away from all-equal patterns.
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect();
    let nx = dense::norm2(&x).max(1e-300);
    dense::scale(1.0 / nx, &mut x);
    x
}

/// Estimates `λ_min(A)` for symmetric positive definite `A` by shifted power
/// iteration on `sI − A` where `s` is the Gershgorin upper bound.
pub fn power_iteration_lambda_min(a: &CsrMatrix, max_iters: usize, tol: f64) -> f64 {
    let s = gershgorin_upper_bound(a);
    // Build sI - A once; its largest eigenvalue is s - lambda_min(A).
    let ident = CsrMatrix::identity(a.n_rows());
    let shifted = ident
        .add_scaled(-1.0 / s.max(1e-300), a)
        .expect("same shape by construction");
    // shifted = I - A/s  =>  lambda_max(shifted) = 1 - lambda_min(A)/s
    let mu = power_iteration_lambda_max(&shifted, max_iters, tol);
    s * (1.0 - mu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    /// Exact extreme eigenvalues of the n-point 1-D Dirichlet Laplacian:
    /// λ_k = 2 − 2 cos(kπ/(n+1)).
    fn laplacian_eigs(n: usize) -> (f64, f64) {
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        (2.0 - 2.0 * h.cos(), 2.0 - 2.0 * ((n as f64) * h).cos())
    }

    #[test]
    fn gershgorin_bounds_bracket_spectrum() {
        let a = laplacian(12);
        let (lmin, lmax) = laplacian_eigs(12);
        assert!(gershgorin_upper_bound(&a) >= lmax);
        assert!(gershgorin_lower_bound(&a) <= lmin);
    }

    #[test]
    fn gershgorin_upper_bound_is_four_for_laplacian() {
        let a = laplacian(10);
        assert_eq!(gershgorin_upper_bound(&a), 4.0);
        assert_eq!(gershgorin_lower_bound(&a), 0.0);
        assert_eq!(gershgorin_interval(&a), (0.0, 4.0));
    }

    #[test]
    fn power_iteration_converges_to_lambda_max() {
        let a = laplacian(20);
        let (_, lmax) = laplacian_eigs(20);
        let est = power_iteration_lambda_max(&a, 5000, 1e-12);
        assert!(
            (est - lmax).abs() < 1e-6 * lmax,
            "estimate {est} vs exact {lmax}"
        );
    }

    #[test]
    fn power_iteration_lambda_min_on_spd() {
        let a = laplacian(20);
        let (lmin, _) = laplacian_eigs(20);
        let est = power_iteration_lambda_min(&a, 20000, 1e-13);
        assert!(
            (est - lmin).abs() < 1e-4 * lmin.max(1e-3),
            "estimate {est} vs exact {lmin}"
        );
    }

    #[test]
    fn diagonal_matrix_exact() {
        let a = CsrMatrix::from_diagonal(&[1.0, 5.0, 3.0]);
        assert_eq!(gershgorin_upper_bound(&a), 5.0);
        assert_eq!(gershgorin_lower_bound(&a), 1.0);
        let est = power_iteration_lambda_max(&a, 2000, 1e-14);
        assert!((est - 5.0).abs() < 1e-8);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let a = CsrMatrix::identity(0);
        assert_eq!(power_iteration_lambda_max(&a, 10, 1e-10), 0.0);
        assert_eq!(gershgorin_upper_bound(&a), 0.0);
        assert_eq!(gershgorin_lower_bound(&a), 0.0);
    }

    #[test]
    fn power_iteration_escapes_null_space_start() {
        // Matrix whose null space contains the all-ones start vector:
        // A = [1 -1; -1 1]; eigenvalues {0, 2}.
        let a = CsrMatrix::from_dense(2, 2, &[1.0, -1.0, -1.0, 1.0]);
        let est = power_iteration_lambda_max(&a, 2000, 1e-13);
        assert!((est - 2.0).abs() < 1e-8, "estimate {est}");
    }
}
