//! Sparse linear-algebra substrate for the `parfem` solver stack.
//!
//! This crate provides the serial building blocks every other crate in the
//! workspace is layered on:
//!
//! - [`dense`] — flat `f64` vector kernels (AXPY, dot products, norms) used in
//!   the hot loops of the Krylov solvers,
//! - [`coo`] — a coordinate-format accumulator used by finite-element
//!   assembly, with duplicate summation on conversion,
//! - [`csr`] — compressed sparse row matrices and matrix–vector products,
//! - [`kernels`] — the tuned hot-path kernels behind them: 4-way-unrolled
//!   and row-partitioned multithreaded SpMV, fused `spmv_axpby`, and the
//!   blocked dot/AXPY/nrm2 primitives of the Gram–Schmidt step,
//! - [`scaling`] — the paper's norm-1 diagonal scaling (Theorem 1 /
//!   Algorithms 3–4) that maps the matrix spectrum into `(0, 1)`,
//! - [`gershgorin`] — spectrum estimation (Gershgorin discs, power iteration)
//!   used to pick polynomial-preconditioner intervals,
//! - [`ilu`] — ILU(0), the sequential comparator preconditioner in the
//!   paper's Figures 11–12,
//! - [`op`] — the [`LinearOperator`] abstraction shared by the sequential
//!   and distributed solvers,
//! - [`io`] — MatrixMarket import/export for reproducibility,
//! - [`simd`] — hand-unrolled `f64x4`-style lane kernels (SpMV, dots,
//!   Gram–Schmidt sweeps) selectable via [`variant::KernelPolicy`],
//! - [`sell`] / [`bcsr`] — cache-aware SELL-C-σ and 2×2 block-CSR storage
//!   formats, convertible to and from CSR without loss,
//! - [`f32csr`] — a single-precision CSR mirror for mixed-precision
//!   preconditioning,
//! - [`skyline`] — a pivot-tolerant skyline/profile LDLᵀ direct solver for
//!   the two-level preconditioner's Galerkin coarse operator,
//! - [`direct`] — a general sparse direct solver (deterministic
//!   fill-reducing RCM ordering + the profile LDLᵀ) used as the exact
//!   `direct` subdomain preconditioner and sequential comparator,
//! - [`variant`] — the kernel-variant policy and the per-matrix
//!   (format × kernel) selector.
//!
//! All matrices are real, square-or-rectangular, `f64`-valued. Row and column
//! indices are `usize`. Nothing in this crate allocates in per-iteration hot
//! paths: every kernel has an `_into` variant writing into a caller-provided
//! buffer.

#![deny(missing_docs)]
#![warn(clippy::all)]
// Indexed `for r in 0..n` loops are the idiomatic form for the sparse/FEM
// kernels in this workspace (the index feeds several arrays and the CSR
// row spans at once); the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod bcsr;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod direct;
pub mod error;
pub mod f32csr;
pub mod gershgorin;
pub mod ilu;
pub mod io;
pub mod kernels;
pub mod op;
pub mod scaling;
pub mod sell;
pub mod simd;
pub mod skyline;
pub mod variant;

pub use bcsr::BcsrMatrix;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use direct::SparseDirect;
pub use error::SparseError;
pub use f32csr::CsrMatrixF32;
pub use ilu::Ilu0;
pub use op::LinearOperator;
pub use scaling::DiagonalScaling;
pub use sell::SellMatrix;
pub use skyline::SkylineLdlt;
pub use variant::{KernelPolicy, SelectedKernel, VariantChoice};
