//! Kernel-variant policy and the per-matrix (format × kernel) selector.
//!
//! One matrix, several ways to apply it: the scalar CSR kernels (the
//! bit-identical golden reference), the hand-unrolled lane kernels of
//! [`crate::simd`], the cache-aware [`SellMatrix`] and [`BcsrMatrix`]
//! storage formats. [`KernelPolicy`] names the choice; [`select`] resolves
//! a policy against a concrete matrix — honouring an explicit policy
//! directly, and for [`KernelPolicy::Auto`] picking the fastest applicable
//! variant by a short micro-benchmark (a few timed SpMVs per candidate,
//! run once at operator-build time).
//!
//! The result, [`SelectedKernel`], is a [`LinearOperator`] whose
//! `apply_into` dispatches to the chosen variant, plus the metadata
//! (variant label, padding/fill diagnostics) the solve session records in
//! its trace and metrics. The default policy is
//! [`KernelPolicy::Scalar`], so every existing entry point keeps its
//! golden-digest-pinned arithmetic unless a caller opts in.

use crate::bcsr::BcsrMatrix;
use crate::csr::CsrMatrix;
use crate::op::LinearOperator;
use crate::sell::SellMatrix;
use crate::simd;

/// Default SELL chunk height used by the selector.
pub const SELL_DEFAULT_C: usize = 8;
/// Default SELL sorting window used by the selector.
pub const SELL_DEFAULT_SIGMA: usize = 64;
/// Above this 2×2 fill ratio the block format pads too much to win.
const BCSR_MAX_FILL: f64 = 1.6;
/// Below this stored-entry count Auto skips the micro-benchmark (timing
/// noise beats any kernel difference) and keeps the bit-identical lanes.
const AUTO_BENCH_MIN_NNZ: usize = 16 * 1024;

/// Which kernel/storage variant to use for a matrix's hot-path operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Scalar CSR kernels — the bit-identical golden reference (default).
    #[default]
    Scalar,
    /// Hand-unrolled lane kernels on CSR (SpMV bit-identical to scalar;
    /// dot reductions lane-tree, ULP-bounded).
    Simd,
    /// SELL-C-σ storage (ULP-bounded row sums).
    SellCSigma,
    /// 2×2 block-CSR storage (ULP-bounded row sums; requires even dims).
    Bcsr2x2,
    /// Pick the fastest applicable variant per matrix by micro-benchmark.
    Auto,
}

impl KernelPolicy {
    /// Parses a CLI-style policy name.
    ///
    /// # Errors
    /// Returns the offending string when it names no policy.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(KernelPolicy::Scalar),
            "simd" => Ok(KernelPolicy::Simd),
            "sellcs" | "sell" => Ok(KernelPolicy::SellCSigma),
            "bcsr" => Ok(KernelPolicy::Bcsr2x2),
            "auto" => Ok(KernelPolicy::Auto),
            other => Err(format!(
                "unknown kernel policy '{other}' (expected scalar|simd|sellcs|bcsr|auto)"
            )),
        }
    }

    /// The canonical CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelPolicy::Scalar => "scalar",
            KernelPolicy::Simd => "simd",
            KernelPolicy::SellCSigma => "sellcs",
            KernelPolicy::Bcsr2x2 => "bcsr",
            KernelPolicy::Auto => "auto",
        }
    }
}

impl std::fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for KernelPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// The resolved variant of a [`SelectedKernel`] (never `Auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantChoice {
    /// Scalar CSR kernels.
    Scalar,
    /// Lane-unrolled CSR kernels.
    Simd,
    /// SELL-C-σ storage.
    SellCSigma,
    /// 2×2 block-CSR storage.
    Bcsr2x2,
}

impl VariantChoice {
    /// Short label for traces, metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            VariantChoice::Scalar => "scalar",
            VariantChoice::Simd => "simd",
            VariantChoice::SellCSigma => "sellcs",
            VariantChoice::Bcsr2x2 => "bcsr",
        }
    }
}

enum Form {
    Scalar,
    Simd,
    Sell(SellMatrix),
    Bcsr(BcsrMatrix),
}

/// A matrix bound to its selected kernel variant; applies through
/// [`LinearOperator`] and reports the choice for the trace/metrics layer.
pub struct SelectedKernel<'a> {
    source: &'a CsrMatrix,
    form: Form,
}

impl<'a> SelectedKernel<'a> {
    /// The source matrix (always available — residuals, diagonals and the
    /// overlapped row-split path keep using the CSR arrays).
    pub fn source(&self) -> &'a CsrMatrix {
        self.source
    }

    /// The resolved variant.
    pub fn choice(&self) -> VariantChoice {
        match &self.form {
            Form::Scalar => VariantChoice::Scalar,
            Form::Simd => VariantChoice::Simd,
            Form::Sell(_) => VariantChoice::SellCSigma,
            Form::Bcsr(_) => VariantChoice::Bcsr2x2,
        }
    }

    /// Whether this variant's SpMV is bit-identical to the scalar CSR
    /// reference (true for the scalar and lane kernels, false for the
    /// reordered-reduction storage formats).
    pub fn bit_identical(&self) -> bool {
        matches!(self.form, Form::Scalar | Form::Simd)
    }
}

impl LinearOperator for SelectedKernel<'_> {
    fn dim(&self) -> usize {
        self.source.n_rows()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        match &self.form {
            Form::Scalar => self.source.spmv_into(x, y),
            Form::Simd => {
                let (row_ptr, col_idx, values) = self.source.raw_parts();
                simd::spmv_lanes(row_ptr, col_idx, values, x, y);
            }
            Form::Sell(m) => m.spmv_into(x, y),
            Form::Bcsr(m) => m.spmv_into(x, y),
        }
    }

    fn apply_flops(&self) -> u64 {
        self.source.spmv_flops()
    }
}

/// Resolves a [`KernelPolicy`] against a matrix.
///
/// Explicit policies are honoured directly ([`KernelPolicy::Bcsr2x2`] falls
/// back to the lane kernels when the dimensions are odd). `Auto` builds the
/// applicable candidates and times a few SpMVs of each, keeping the fastest;
/// matrices too small to time reliably keep the bit-identical lane kernels.
pub fn select(a: &CsrMatrix, policy: KernelPolicy) -> SelectedKernel<'_> {
    let form = match policy {
        KernelPolicy::Scalar => Form::Scalar,
        KernelPolicy::Simd => Form::Simd,
        KernelPolicy::SellCSigma => {
            Form::Sell(SellMatrix::from_csr(a, SELL_DEFAULT_C, SELL_DEFAULT_SIGMA))
        }
        KernelPolicy::Bcsr2x2 => match BcsrMatrix::try_from_csr(a) {
            Some(b) => Form::Bcsr(b),
            None => Form::Simd,
        },
        KernelPolicy::Auto => auto_select(a),
    };
    SelectedKernel { source: a, form }
}

fn auto_select(a: &CsrMatrix) -> Form {
    if a.nnz() < AUTO_BENCH_MIN_NNZ {
        return Form::Simd;
    }
    let mut candidates: Vec<Form> = vec![Form::Simd];
    candidates.push(Form::Sell(SellMatrix::from_csr(
        a,
        SELL_DEFAULT_C,
        SELL_DEFAULT_SIGMA,
    )));
    if let Some(b) = BcsrMatrix::try_from_csr(a) {
        if b.fill_ratio() <= BCSR_MAX_FILL {
            candidates.push(Form::Bcsr(b));
        }
    }
    // Deterministic probe vector; timing decides, values do not.
    let mut s = 0x853c_49e6_748f_ea9bu64;
    let x: Vec<f64> = (0..a.n_cols())
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect();
    let mut y = vec![0.0; a.n_rows()];
    let mut best_idx = 0usize;
    let mut best_time = f64::INFINITY;
    for (i, form) in candidates.iter().enumerate() {
        let probe = SelectedKernel {
            source: a,
            form: form_ref(form),
        };
        // One warm-up, then best-of-3.
        probe.apply_into(&x, &mut y);
        let mut t_min = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            probe.apply_into(&x, &mut y);
            t_min = t_min.min(t0.elapsed().as_secs_f64());
        }
        if t_min < best_time {
            best_time = t_min;
            best_idx = i;
        }
    }
    candidates.swap_remove(best_idx)
}

/// Cheap by-reference clone of a candidate form for probing (the owned
/// formats are borrowed via a shallow rebuild-free view).
fn form_ref(form: &Form) -> Form {
    match form {
        Form::Scalar => Form::Scalar,
        Form::Simd => Form::Simd,
        Form::Sell(m) => Form::Sell(m.clone()),
        Form::Bcsr(m) => Form::Bcsr(m.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn policy_parsing_round_trips() {
        for p in [
            KernelPolicy::Scalar,
            KernelPolicy::Simd,
            KernelPolicy::SellCSigma,
            KernelPolicy::Bcsr2x2,
            KernelPolicy::Auto,
        ] {
            assert_eq!(KernelPolicy::parse(p.as_str()), Ok(p));
        }
        assert!(KernelPolicy::parse("avx1024").is_err());
    }

    #[test]
    fn scalar_and_simd_selections_are_bit_identical() {
        let a = laplacian(200);
        let x: Vec<f64> = (0..200).map(|i| (i as f64).sin()).collect();
        let want = a.spmv(&x);
        for policy in [KernelPolicy::Scalar, KernelPolicy::Simd] {
            let sel = select(&a, policy);
            assert!(sel.bit_identical());
            let mut y = vec![0.0; 200];
            sel.apply_into(&x, &mut y);
            assert_eq!(y, want, "{policy}");
        }
    }

    #[test]
    fn storage_formats_agree_closely() {
        let a = laplacian(128);
        let x: Vec<f64> = (0..128).map(|i| ((i % 11) as f64) - 5.0).collect();
        let want = a.spmv(&x);
        for policy in [KernelPolicy::SellCSigma, KernelPolicy::Bcsr2x2] {
            let sel = select(&a, policy);
            let mut y = vec![0.0; 128];
            sel.apply_into(&x, &mut y);
            for (g, w) in y.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-12 * (1.0 + w.abs()), "{policy}");
            }
        }
    }

    #[test]
    fn bcsr_policy_falls_back_on_odd_dims() {
        let a = laplacian(33);
        let sel = select(&a, KernelPolicy::Bcsr2x2);
        assert_eq!(sel.choice(), VariantChoice::Simd);
    }

    #[test]
    fn auto_on_small_matrices_keeps_bit_identity() {
        let a = laplacian(64);
        let sel = select(&a, KernelPolicy::Auto);
        assert!(sel.bit_identical());
    }
}
