//! Single-precision CSR mirror for mixed-precision preconditioning.
//!
//! Flexible GMRES tolerates a variable/inexact preconditioner, so the
//! polynomial preconditioners can run their internal matrix–vector products
//! in `f32` while the outer Krylov recurrence stays in `f64` — halving the
//! preconditioner's value *and* index bandwidth (`f32` values, `u32`
//! columns). [`CsrMatrixF32`] is that mirror: a lossy downcast of a
//! [`CsrMatrix`] with the same pattern, plus an `f32` SpMV using the same
//! four-partial reduction tree as [`crate::kernels::row_dot`] (in `f32`
//! arithmetic).
//!
//! Accuracy is pinned by the mixed-precision harness in
//! `crates/precond/tests`: final FGMRES residuals and iteration counts with
//! an `f32` preconditioner match the `f64` path within the tolerances the
//! paper's figures resolve.

use crate::csr::CsrMatrix;

/// A CSR matrix with `f32` values and `u32` column indices, downcast from a
/// [`CsrMatrix`]. Build with [`CsrMatrixF32::from_csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrixF32 {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrixF32 {
    /// Downcasts a double-precision matrix (same pattern, `f32` values).
    ///
    /// # Panics
    /// Panics if a column index does not fit in `u32`.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        assert!(a.n_cols() <= u32::MAX as usize, "column index overflow");
        let (row_ptr, col_idx, values) = a.raw_parts();
        CsrMatrixF32 {
            n_rows: a.n_rows(),
            n_cols: a.n_cols(),
            row_ptr: row_ptr.to_vec(),
            col_idx: col_idx.iter().map(|&c| c as u32).collect(),
            values: values.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Flops of one SpMV.
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }

    /// `y = A x` in single precision, with the `f32` analogue of the
    /// [`crate::kernels::row_dot`] four-partial reduction per row.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn spmv_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.n_cols, "f32 spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "f32 spmv: y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            *yr = row_dot_f32(&self.col_idx[lo..hi], &self.values[lo..hi], x);
        }
    }
}

/// One `f32` CSR row dot product, 4-way unrolled with the
/// `(a0 + a1) + (a2 + a3)` combination (the `f32` mirror of
/// [`crate::kernels::row_dot`]).
#[inline(always)]
fn row_dot_f32(cols: &[u32], vals: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(cols.len(), vals.len());
    let mut c4 = cols.chunks_exact(4);
    let mut v4 = vals.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0, 0.0, 0.0);
    for (c, v) in (&mut c4).zip(&mut v4) {
        a0 += v[0] * x[c[0] as usize];
        a1 += v[1] * x[c[1] as usize];
        a2 += v[2] * x[c[2] as usize];
        a3 += v[3] * x[c[3] as usize];
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    for (&c, &v) in c4.remainder().iter().zip(v4.remainder()) {
        acc += v * x[c as usize];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn f32_spmv_tracks_f64_within_single_precision() {
        let n = 40;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + 0.01 * i as f64).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let a32 = CsrMatrixF32::from_csr(&a);
        assert_eq!(a32.nnz(), a.nnz());
        let x: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let want = a.spmv(&x);
        let mut got = vec![0.0f32; n];
        a32.spmv_into(&x32, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (*g as f64 - w).abs() <= 1e-5 * (1.0 + w.abs()),
                "{g} vs {w}"
            );
        }
    }
}
