//! Matrix Market (`.mtx`) import/export.
//!
//! The experiment harness writes its assembled operators in the standard
//! MatrixMarket coordinate format so runs can be reproduced or
//! cross-checked against external solvers; only the subset needed for real
//! general/symmetric sparse matrices and dense vectors is implemented.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes `m` in MatrixMarket coordinate format (`general` symmetry, 1-based
/// indices).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_matrix<W: Write>(w: &mut W, m: &CsrMatrix) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.n_rows(), m.n_cols(), m.nnz())?;
    for r in 0..m.n_rows() {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
    }
    Ok(())
}

/// Writes a dense vector in MatrixMarket array format.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_vector<W: Write>(w: &mut W, v: &[f64]) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} 1", v.len())?;
    for x in v {
        writeln!(w, "{x:.17e}")?;
    }
    Ok(())
}

/// Reads a MatrixMarket coordinate-format matrix (real, `general` or
/// `symmetric`; symmetric input is expanded to both triangles).
///
/// # Errors
/// Returns [`SparseError::ShapeMismatch`] for malformed input and
/// out-of-bounds errors for bad indices.
pub fn read_matrix<R: Read>(r: R) -> Result<CsrMatrix, SparseError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty file"))?
        .map_err(|e| malformed(&format!("io error: {e}")))?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket matrix coordinate real") {
        return Err(malformed("unsupported MatrixMarket header"));
    }
    let symmetric = h.contains("symmetric");

    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| malformed(&format!("io error: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| malformed("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| malformed("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(malformed("size line must have 3 fields"));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| malformed(&format!("io error: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| malformed("missing row index"))?
            .parse()
            .map_err(|_| malformed("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| malformed("missing col index"))?
            .parse()
            .map_err(|_| malformed("bad col index"))?;
        let v: f64 = it
            .next()
            .ok_or_else(|| malformed("missing value"))?
            .parse()
            .map_err(|_| malformed("bad value"))?;
        if i == 0 || j == 0 {
            return Err(malformed("MatrixMarket indices are 1-based"));
        }
        coo.push(i - 1, j - 1, v)?;
        if symmetric && i != j {
            coo.push(j - 1, i - 1, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(malformed(&format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

fn malformed(msg: &str) -> SparseError {
    SparseError::ShapeMismatch {
        context: format!("matrix market: {msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_round_trips() {
        let a = CsrMatrix::from_dense(3, 3, &[2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &a).unwrap();
        let b = read_matrix(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn vector_format_is_standard() {
        let mut buf = Vec::new();
        write_vector(&mut buf, &[1.0, -2.5]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("%%MatrixMarket matrix array real general"));
        assert!(text.contains("2 1"));
    }

    #[test]
    fn symmetric_input_is_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % lower triangle only\n\
                    2 2 3\n\
                    1 1 4.0\n\
                    2 1 -1.0\n\
                    2 2 4.0\n";
        let a = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 4);
        assert!(a.is_symmetric(1e-15));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    \n\
                    2 2 1\n\
                    % another\n\
                    1 2 3.0\n";
        let a = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), 3.0);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(read_matrix("not a header\n1 1 1\n".as_bytes()).is_err());
        assert!(
            read_matrix("%%MatrixMarket matrix coordinate real general\n2 2\n".as_bytes()).is_err()
        );
        // 0-based index.
        assert!(read_matrix(
            "%%MatrixMarket matrix coordinate real general\n1 1 1\n0 1 2.0\n".as_bytes()
        )
        .is_err());
        // wrong count
        assert!(read_matrix(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn large_values_keep_full_precision() {
        let a = CsrMatrix::from_dense(1, 1, &[std::f64::consts::PI * 1e15]);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &a).unwrap();
        let b = read_matrix(&buf[..]).unwrap();
        assert_eq!(a.get(0, 0), b.get(0, 0));
    }
}
