//! SELL-C-σ sliced-ELLPACK storage (Kreutzer et al.), converted from CSR.
//!
//! Rows are grouped into *chunks* of `C` consecutive (sorted) rows; inside a
//! sorting window of `σ` rows, rows are ordered by descending length so the
//! rows sharing a chunk have similar lengths and the per-chunk padding stays
//! small. Each chunk is stored column-major ("lane-major"): entry `j` of
//! every row in the chunk is adjacent in memory, so the SpMV walks `C`
//! independent row accumulators through a perfectly regular access pattern —
//! the layout CPUs and wide vector units prefer for stencil-like matrices
//! whose CSR rows are short and uniform.
//!
//! Column indices are stored as `u32` (half the index bandwidth of the CSR
//! kernels); padding entries carry a value of `0.0` and a valid in-bounds
//! column, so the kernel needs no branches. The true row lengths are kept,
//! which makes [`SellMatrix::to_csr`] an **exact** inverse of
//! [`SellMatrix::from_csr`] — including explicitly stored zeros (pinned by a
//! round-trip property test in `crates/sparse/tests`).
//!
//! Reduction-order contract: each row is accumulated **sequentially** in
//! column order (one accumulator per lane), which differs from the CSR
//! kernels' four-partial tree — SELL SpMV results therefore agree with the
//! scalar reference to a pinned ULP bound, not bit-for-bit. The
//! bit-identical scalar CSR path remains the golden reference.

use crate::csr::CsrMatrix;
use crate::op::LinearOperator;

/// Maximum supported chunk height (the SpMV keeps one stack accumulator per
/// lane).
pub const MAX_CHUNK: usize = 32;

/// A sparse matrix in SELL-C-σ format. Build with [`SellMatrix::from_csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Chunk height `C`.
    c: usize,
    /// Sorting-window length `σ` (in rows).
    sigma: usize,
    /// Per-chunk offsets into `col_idx`/`values`; `chunk_ptr[k + 1] -
    /// chunk_ptr[k] == width_k * C`.
    chunk_ptr: Vec<usize>,
    /// Lane-major column indices (padding entries repeat a valid column).
    col_idx: Vec<u32>,
    /// Lane-major values (padding entries are `0.0`).
    values: Vec<f64>,
    /// `perm[p]` = original row stored at sorted position `p`.
    perm: Vec<usize>,
    /// True stored-entry count of the row at each sorted position.
    row_len: Vec<usize>,
    /// Stored entries of the source matrix (excludes padding).
    nnz: usize,
}

impl SellMatrix {
    /// Converts a CSR matrix to SELL-C-σ with chunk height `c` and sorting
    /// window `sigma` (clamped up to `c`).
    ///
    /// # Panics
    /// Panics if `c` is zero or exceeds [`MAX_CHUNK`], or if a column index
    /// does not fit in `u32`.
    pub fn from_csr(a: &CsrMatrix, c: usize, sigma: usize) -> Self {
        assert!(c > 0 && c <= MAX_CHUNK, "chunk height {c} out of range");
        assert!(a.n_cols() <= u32::MAX as usize, "column index overflow");
        let sigma = sigma.max(c);
        let (row_ptr, col_idx_csr, values_csr) = a.raw_parts();
        let n = a.n_rows();
        let len_of = |r: usize| row_ptr[r + 1] - row_ptr[r];

        // Sort rows by descending length inside each sigma window (stable,
        // so equal-length rows keep their original order).
        let mut perm: Vec<usize> = (0..n).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| std::cmp::Reverse(len_of(r)));
        }
        let row_len: Vec<usize> = perm.iter().map(|&r| len_of(r)).collect();

        let n_chunks = n.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        chunk_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for k in 0..n_chunks {
            let base = k * c;
            let width = (base..(base + c).min(n))
                .map(|p| row_len[p])
                .max()
                .unwrap_or(0);
            for j in 0..width {
                for lane in 0..c {
                    let p = base + lane;
                    if p < n && j < row_len[p] {
                        let e = row_ptr[perm[p]] + j;
                        col_idx.push(col_idx_csr[e] as u32);
                        values.push(values_csr[e]);
                    } else {
                        // Padding: zero value, and the row's own last column
                        // (or 0) so the gather stays in bounds.
                        let pad_col = if p < n && row_len[p] > 0 {
                            col_idx_csr[row_ptr[perm[p]] + row_len[p] - 1] as u32
                        } else {
                            0
                        };
                        col_idx.push(pad_col);
                        values.push(0.0);
                    }
                }
            }
            chunk_ptr.push(col_idx.len());
        }

        SellMatrix {
            n_rows: n,
            n_cols: a.n_cols(),
            c,
            sigma,
            chunk_ptr,
            col_idx,
            values,
            perm,
            row_len,
            nnz: a.nnz(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Chunk height `C`.
    pub fn chunk_height(&self) -> usize {
        self.c
    }

    /// Sorting window `σ`.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Stored entries of the source matrix (padding excluded).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Stored entries *including* padding — the actual memory footprint.
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// Flops of one SpMV (padding excluded, matching
    /// [`CsrMatrix::spmv_flops`] on the source matrix).
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz as u64
    }

    /// Exact inverse of [`SellMatrix::from_csr`]: reconstructs the source
    /// CSR matrix, explicit zeros and all.
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.n_rows;
        // Sorted position of each original row.
        let mut pos = vec![0usize; n];
        for (p, &r) in self.perm.iter().enumerate() {
            pos[r] = p;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        for r in 0..n {
            let p = pos[r];
            let (chunk, lane) = (p / self.c, p % self.c);
            let off = self.chunk_ptr[chunk];
            for j in 0..self.row_len[p] {
                let e = off + j * self.c + lane;
                col_idx.push(self.col_idx[e] as usize);
                values.push(self.values[e]);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_parts(n, self.n_cols, row_ptr, col_idx, values)
            .expect("SELL round-trip produced invalid CSR")
    }

    /// `y = A x`.
    ///
    /// Each row accumulates sequentially in column order (one accumulator
    /// per lane); see the module docs for the reduction-order contract.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "sell spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "sell spmv: y length mismatch");
        if self.c == 8 {
            // The default chunk height gets a fully unrolled kernel; the
            // generic fallback below pays a runtime-`c` inner loop.
            return self.spmv_into_c8(x, y);
        }
        let c = self.c;
        let mut acc = [0.0f64; MAX_CHUNK];
        for k in 0..self.chunk_ptr.len() - 1 {
            let base = k * c;
            let lanes = c.min(self.n_rows - base);
            let lo = self.chunk_ptr[k];
            let hi = self.chunk_ptr[k + 1];
            acc[..c].fill(0.0);
            let mut off = lo;
            while off < hi {
                let cols = &self.col_idx[off..off + c];
                let vals = &self.values[off..off + c];
                for lane in 0..c {
                    acc[lane] += vals[lane] * x[cols[lane] as usize];
                }
                off += c;
            }
            for lane in 0..lanes {
                y[self.perm[base + lane]] = acc[lane];
            }
        }
    }

    /// `C = 8` specialization of [`SellMatrix::spmv_into`]: the chunk height
    /// is a compile-time constant, so the eight lane accumulators unroll and
    /// the fixed-size slices carry no per-entry bounds checks. Per-lane
    /// accumulation order is identical to the generic path (sequential in
    /// column order), so the two are bit-identical.
    fn spmv_into_c8(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n_rows;
        for k in 0..self.chunk_ptr.len() - 1 {
            let base = k * 8;
            let lo = self.chunk_ptr[k];
            let hi = self.chunk_ptr[k + 1];
            let mut acc = [0.0f64; 8];
            let mut off = lo;
            while off < hi {
                let cols: &[u32; 8] = self.col_idx[off..off + 8].try_into().expect("chunk of 8");
                let vals: &[f64; 8] = self.values[off..off + 8].try_into().expect("chunk of 8");
                for lane in 0..8 {
                    acc[lane] += vals[lane] * x[cols[lane] as usize];
                }
                off += 8;
            }
            let lanes = 8.min(n - base);
            for lane in 0..lanes {
                y[self.perm[base + lane]] = acc[lane];
            }
        }
    }

    /// Allocating convenience wrapper for [`SellMatrix::spmv_into`].
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }
}

impl LinearOperator for SellMatrix {
    fn dim(&self) -> usize {
        self.n_rows
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    fn apply_flops(&self) -> u64 {
        self.spmv_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    fn ragged(n: usize) -> CsrMatrix {
        // Deterministically ragged row lengths to exercise sorting/padding.
        let mut coo = CooMatrix::new(n, n);
        let mut s = 0x243f_6a88_85a3_08d3u64;
        for i in 0..n {
            coo.push(i, i, 4.0 + (i % 3) as f64).unwrap();
            let extra = (i * 7) % 5;
            for k in 0..extra {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let j = (s as usize) % n;
                if j != i {
                    let _ = coo.push(i, j, ((k + 1) as f64) * 0.25 - 0.6);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn round_trip_is_exact() {
        for (c, sigma) in [(4, 4), (8, 32), (3, 7)] {
            let a = ragged(37);
            let sell = SellMatrix::from_csr(&a, c, sigma);
            let back = sell.to_csr();
            assert_eq!(a.raw_parts(), back.raw_parts(), "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn spmv_matches_csr_closely() {
        let a = ragged(53);
        let sell = SellMatrix::from_csr(&a, 8, 64);
        let x: Vec<f64> = (0..53).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let want = a.spmv(&x);
        let got = sell.spmv(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-12 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    #[test]
    fn uniform_rows_have_no_padding() {
        let a = laplacian_1d(64);
        // All interior rows have 3 entries, the two end rows 2: with sigma
        // covering everything the short rows sort to the tail.
        let sell = SellMatrix::from_csr(&a, 8, 64);
        assert!(sell.padded_len() <= sell.nnz() + 2 * 8);
        assert_eq!(sell.nnz(), a.nnz());
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooMatrix::new(6, 6);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(4, 2, -2.0).unwrap();
        let a = coo.to_csr();
        let sell = SellMatrix::from_csr(&a, 4, 4);
        assert_eq!(sell.to_csr().raw_parts(), a.raw_parts());
        let y = sell.spmv(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 0.0, -6.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "chunk height")]
    fn zero_chunk_rejected() {
        SellMatrix::from_csr(&laplacian_1d(4), 0, 4);
    }
}
