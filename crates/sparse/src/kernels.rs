//! Tuned hot-path kernels: unrolled CSR SpMV, fused SpMV/vector updates,
//! blocked Gram–Schmidt primitives, and a row-partitioned multithreaded
//! SpMV.
//!
//! Design rules (they are what the solver correctness tests rely on):
//!
//! 1. **Per-row arithmetic is fixed.** Every SpMV variant here accumulates a
//!    row as four independent partial sums over `chunks_exact(4)` combined
//!    as `(a0 + a1) + (a2 + a3)` plus a sequential remainder. Sequential,
//!    fused, and threaded SpMV therefore produce **bit-identical** results
//!    for any thread count.
//! 2. **Blocked vector kernels preserve element order.** [`dot_block`]
//!    keeps one accumulator per basis vector and walks elements in order,
//!    so it equals the corresponding sequence of individual dot products
//!    bit-for-bit; [`axpy_block`] applies its updates to each element in
//!    block order, matching a sequence of individual AXPYs bit-for-bit.
//!    The blocking only changes *memory traffic* (one pass over `w` instead
//!    of `K`), never floating-point semantics.
//! 3. No allocation anywhere; callers provide every buffer.
//!
//! The raw-slice entry points (`spmv_raw_*`) exist so kernels can run on
//! sub-ranges during row partitioning; [`crate::CsrMatrix`] forwards its
//! `spmv_into` / `spmv_add_into` / `spmv_axpby` methods here.

use crate::csr::CsrMatrix;

/// One CSR row dot product, 4-way unrolled.
///
/// The four partial accumulators are combined as `(a0 + a1) + (a2 + a3)`;
/// this is the single row-reduction order used by every SpMV variant in the
/// workspace (see the module docs).
#[inline(always)]
pub fn row_dot(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), vals.len());
    let mut c4 = cols.chunks_exact(4);
    let mut v4 = vals.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    for (c, v) in (&mut c4).zip(&mut v4) {
        a0 += v[0] * x[c[0]];
        a1 += v[1] * x[c[1]];
        a2 += v[2] * x[c[2]];
        a3 += v[3] * x[c[3]];
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    for (&c, &v) in c4.remainder().iter().zip(v4.remainder()) {
        acc += v * x[c];
    }
    acc
}

/// `y[r] = A x` over the row range `rows`, on raw CSR arrays.
///
/// `y` holds only the rows of the range (`y.len() == rows.len()`), which is
/// what lets [`par_spmv_into`] hand each thread a disjoint `&mut` chunk.
///
/// # Panics
/// Panics if the range or `y` length is inconsistent with the arrays.
pub fn spmv_raw_range(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
    rows: core::ops::Range<usize>,
) {
    assert_eq!(y.len(), rows.len(), "spmv_raw_range: y length mismatch");
    assert!(
        rows.end < row_ptr.len(),
        "spmv_raw_range: rows out of range"
    );
    let base = rows.start;
    for (i, yr) in y.iter_mut().enumerate() {
        let lo = row_ptr[base + i];
        let hi = row_ptr[base + i + 1];
        *yr = row_dot(&col_idx[lo..hi], &values[lo..hi], x);
    }
}

/// `y[r] = A x` for the listed rows only, on raw CSR arrays.
///
/// `y` is full-length (`n_rows`); only the entries named in `rows` are
/// written, each with exactly the [`row_dot`] reduction — so computing a
/// partition of the rows in any number of calls is bit-identical to one
/// full [`spmv_raw`]. This is the kernel behind the overlapped distributed
/// matvec: interface rows are computed before the halo messages are
/// posted, interior rows while they fly.
///
/// # Panics
/// Panics if `y` does not cover all rows or an index is out of range.
pub fn spmv_rows_indexed(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
    rows: &[usize],
) {
    assert_eq!(
        y.len(),
        row_ptr.len() - 1,
        "spmv_rows_indexed: y length mismatch"
    );
    for &r in rows {
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        y[r] = row_dot(&col_idx[lo..hi], &values[lo..hi], x);
    }
}

/// `y = A x` on raw CSR arrays (all rows).
pub fn spmv_raw(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
    let n_rows = row_ptr.len() - 1;
    spmv_raw_range(row_ptr, col_idx, values, x, y, 0..n_rows);
}

/// One CSR row dot product against an implicitly scaled vector:
/// `Σ vals[e] · (s[cols[e]] · x[cols[e]])`, 4-way unrolled.
///
/// Each product is computed as `v * (s[c] * x[c])` — exactly the arithmetic
/// [`row_dot`] performs on a pre-scaled vector `x'[c] = s[c] * x[c]`, with
/// the same `(a0 + a1) + (a2 + a3)` combination — so fusing the scaling into
/// the SpMV is **bit-identical** to scaling first and multiplying second,
/// while skipping the extra full pass over `x`.
#[inline(always)]
pub fn row_dot_scaled(cols: &[usize], vals: &[f64], s: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), vals.len());
    let mut c4 = cols.chunks_exact(4);
    let mut v4 = vals.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    for (c, v) in (&mut c4).zip(&mut v4) {
        a0 += v[0] * (s[c[0]] * x[c[0]]);
        a1 += v[1] * (s[c[1]] * x[c[1]]);
        a2 += v[2] * (s[c[2]] * x[c[2]]);
        a3 += v[3] * (s[c[3]] * x[c[3]]);
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    for (&c, &v) in c4.remainder().iter().zip(v4.remainder()) {
        acc += v * (s[c] * x[c]);
    }
    acc
}

/// Fused scale + SpMV over a row range: `y[r] = A (s ∘ x)` without
/// materializing the scaled vector. Bit-identical to scaling `x` first and
/// calling [`spmv_raw_range`] (see [`row_dot_scaled`]).
///
/// # Panics
/// Panics if the range or `y` length is inconsistent with the arrays.
pub fn spmv_scaled_raw_range(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    s: &[f64],
    x: &[f64],
    y: &mut [f64],
    rows: core::ops::Range<usize>,
) {
    assert_eq!(y.len(), rows.len(), "spmv_scaled_raw_range: y length");
    assert!(
        rows.end < row_ptr.len(),
        "spmv_scaled_raw_range: rows out of range"
    );
    let base = rows.start;
    for (i, yr) in y.iter_mut().enumerate() {
        let lo = row_ptr[base + i];
        let hi = row_ptr[base + i + 1];
        *yr = row_dot_scaled(&col_idx[lo..hi], &values[lo..hi], s, x);
    }
}

/// Fused scale + SpMV for the listed rows only (full-length `y`): the
/// scaled analogue of [`spmv_rows_indexed`], used by the overlapped
/// distributed matvec to fold a diagonal scaling into the interface and
/// interior row sweeps. Bit-identical to scaling first (see
/// [`row_dot_scaled`]).
///
/// # Panics
/// Panics if `y` does not cover all rows or an index is out of range.
pub fn spmv_scaled_rows_indexed(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    s: &[f64],
    x: &[f64],
    y: &mut [f64],
    rows: &[usize],
) {
    assert_eq!(
        y.len(),
        row_ptr.len() - 1,
        "spmv_scaled_rows_indexed: y length mismatch"
    );
    for &r in rows {
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        y[r] = row_dot_scaled(&col_idx[lo..hi], &values[lo..hi], s, x);
    }
}

/// `y += A x` on raw CSR arrays.
pub fn spmv_add_raw(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(
        y.len(),
        row_ptr.len() - 1,
        "spmv_add_raw: y length mismatch"
    );
    for (r, yr) in y.iter_mut().enumerate() {
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        *yr += row_dot(&col_idx[lo..hi], &values[lo..hi], x);
    }
}

/// Fused `y = alpha * A x + beta * y` in a single pass over `y`.
///
/// Row sums use exactly the [`row_dot`] reduction, so the result is
/// bit-identical to `spmv_into` followed by a manual `axpby` (asserted by a
/// property test in `crates/sparse/tests`).
pub fn spmv_axpby_raw(
    alpha: f64,
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    assert_eq!(y.len(), row_ptr.len() - 1, "spmv_axpby: y length mismatch");
    for (r, yr) in y.iter_mut().enumerate() {
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        let acc = row_dot(&col_idx[lo..hi], &values[lo..hi], x);
        *yr = alpha * acc + beta * *yr;
    }
}

/// Row-partitioned multithreaded `y = A x` over `std::thread::scope`.
///
/// Rows are split into `threads` contiguous chunks balanced by stored-entry
/// count; each thread computes its rows with the same per-row arithmetic as
/// the sequential kernel, so the result is **bit-identical** for any thread
/// count. Falls back to the sequential kernel when one thread suffices or
/// the matrix is too small to amortize thread spawns.
///
/// # Panics
/// Panics on vector/matrix dimension mismatches.
pub fn par_spmv_into(a: &CsrMatrix, x: &[f64], y: &mut [f64], threads: usize) {
    assert_eq!(x.len(), a.n_cols(), "par_spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "par_spmv: y length mismatch");
    let threads = threads.max(1).min(a.n_rows().max(1));
    // Below ~64k stored entries per extra thread the spawn/join overhead
    // dominates; stay sequential.
    if threads == 1 || a.nnz() < 64 * 1024 {
        a.spmv_into(x, y);
        return;
    }
    let (row_ptr, col_idx, values) = a.raw_parts();
    let n_rows = a.n_rows();
    let target = a.nnz().div_ceil(threads);

    std::thread::scope(|scope| {
        let mut rest = &mut y[..];
        let mut row0 = 0usize;
        while row0 < n_rows {
            // Grow the chunk until it holds ~nnz/threads stored entries.
            let mut row1 = row0 + 1;
            while row1 < n_rows && row_ptr[row1] - row_ptr[row0] < target {
                row1 += 1;
            }
            let (chunk, tail) = rest.split_at_mut(row1 - row0);
            rest = tail;
            if row1 == n_rows && row0 == 0 {
                // Single chunk: run on the caller's thread.
                spmv_raw_range(row_ptr, col_idx, values, x, chunk, row0..row1);
            } else {
                scope.spawn(move || {
                    spmv_raw_range(row_ptr, col_idx, values, x, chunk, row0..row1);
                });
            }
            row0 = row1;
        }
    });
}

/// `K` simultaneous dot products `out[j] = <w, vs[j]>` in one pass over `w`.
///
/// Each product keeps its own accumulator and walks elements in order, so
/// the results are bit-identical to `K` separate [`crate::dense::dot`]
/// calls; the fusion saves `K - 1` passes over `w` in classical
/// Gram–Schmidt.
///
/// # Panics
/// Panics if any vector length differs from `w`.
#[inline]
pub fn dot_block<const K: usize>(w: &[f64], vs: [&[f64]; K]) -> [f64; K] {
    for v in vs {
        assert_eq!(v.len(), w.len(), "dot_block: length mismatch");
    }
    let mut acc = [0.0_f64; K];
    for (k, &wk) in w.iter().enumerate() {
        for j in 0..K {
            acc[j] += wk * vs[j][k];
        }
    }
    acc
}

/// Fused block AXPY `w += Σ_j coeffs[j] * vs[j]`, returning `Σ w_k²` of the
/// updated vector.
///
/// Updates are applied to each element in block order, so the result is
/// bit-identical to `K` consecutive [`crate::dense::axpy`] calls; the
/// returned sum of squares equals a subsequent `dot(w, w)` over the updated
/// vector, letting the Arnoldi step fuse its trailing `nrm2` into the final
/// projection block.
///
/// # Panics
/// Panics if any vector length differs from `w`.
#[inline]
pub fn axpy_block<const K: usize>(coeffs: [f64; K], vs: [&[f64]; K], w: &mut [f64]) -> f64 {
    for v in vs {
        assert_eq!(v.len(), w.len(), "axpy_block: length mismatch");
    }
    let mut sq = 0.0;
    for (k, wk) in w.iter_mut().enumerate() {
        let mut t = *wk;
        for j in 0..K {
            t += coeffs[j] * vs[j][k];
        }
        *wk = t;
        sq += t * t;
    }
    sq
}

/// Sweeps `out[i] = <w, vs[i]>` over a whole basis through [`dot_block`] in
/// blocks of four (smaller blocks for the remainder).
///
/// Bit-identical to `vs.len()` separate [`crate::dense::dot`] calls — this
/// is the fused Gram–Schmidt dot pass used by the distributed FGMRES
/// solvers to fill their batched-reduction buffer.
///
/// # Panics
/// Panics if `out` is shorter than `vs` or any vector length differs from
/// `w`.
pub fn dot_sweep(w: &[f64], vs: &[Vec<f64>], out: &mut [f64]) {
    let cnt = vs.len();
    assert!(out.len() >= cnt, "dot_sweep: output too short");
    let mut i = 0;
    while i + 4 <= cnt {
        let d = dot_block(
            w,
            [
                vs[i].as_slice(),
                vs[i + 1].as_slice(),
                vs[i + 2].as_slice(),
                vs[i + 3].as_slice(),
            ],
        );
        out[i..i + 4].copy_from_slice(&d);
        i += 4;
    }
    match cnt - i {
        1 => out[i] = dot_block(w, [vs[i].as_slice()])[0],
        2 => {
            let d = dot_block(w, [vs[i].as_slice(), vs[i + 1].as_slice()]);
            out[i..i + 2].copy_from_slice(&d);
        }
        3 => {
            let d = dot_block(
                w,
                [vs[i].as_slice(), vs[i + 1].as_slice(), vs[i + 2].as_slice()],
            );
            out[i..i + 3].copy_from_slice(&d);
        }
        _ => {}
    }
}

/// Sweeps `w -= Σ_i coeffs[i] * vs[i]` over a whole basis through
/// [`axpy_block`] in blocks of four, returning `Σ w_k²` of the updated
/// vector (or `dot(w, w)` when `coeffs` is empty).
///
/// Each block receives the negated coefficients, and IEEE-754 negation is
/// exact, so the result is bit-identical to `coeffs.len()` consecutive
/// `w[k] -= c * v[k]` subtraction loops; this is the fused Gram–Schmidt
/// projection-subtraction pass of the distributed FGMRES solvers.
///
/// # Panics
/// Panics if `vs` is shorter than `coeffs` or any vector length differs
/// from `w`.
pub fn axpy_sweep_neg(coeffs: &[f64], vs: &[Vec<f64>], w: &mut [f64]) -> f64 {
    let cnt = coeffs.len();
    assert!(vs.len() >= cnt, "axpy_sweep_neg: basis too short");
    if cnt == 0 {
        let mut sq = 0.0;
        for &x in w.iter() {
            sq += x * x;
        }
        return sq;
    }
    let mut sq = 0.0;
    let mut i = 0;
    while i + 4 <= cnt {
        sq = axpy_block(
            [-coeffs[i], -coeffs[i + 1], -coeffs[i + 2], -coeffs[i + 3]],
            [
                vs[i].as_slice(),
                vs[i + 1].as_slice(),
                vs[i + 2].as_slice(),
                vs[i + 3].as_slice(),
            ],
            w,
        );
        i += 4;
    }
    match cnt - i {
        1 => sq = axpy_block([-coeffs[i]], [vs[i].as_slice()], w),
        2 => {
            sq = axpy_block(
                [-coeffs[i], -coeffs[i + 1]],
                [vs[i].as_slice(), vs[i + 1].as_slice()],
                w,
            );
        }
        3 => {
            sq = axpy_block(
                [-coeffs[i], -coeffs[i + 1], -coeffs[i + 2]],
                [vs[i].as_slice(), vs[i + 1].as_slice(), vs[i + 2].as_slice()],
                w,
            );
        }
        _ => {}
    }
    sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    /// Deterministic pseudo-random CSR matrix (xorshift) for kernel tests.
    fn random_csr(n: usize, seed: u64) -> CsrMatrix {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut coo = crate::CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, 4.0 + (rnd() % 8) as f64).unwrap();
            for _ in 0..(rnd() % 7) {
                let c = (rnd() as usize) % n;
                coo.push(r, c, ((rnd() % 1000) as f64 - 500.0) / 250.0)
                    .unwrap();
            }
        }
        coo.to_csr()
    }

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f64 - 1000.0) / 500.0
            })
            .collect()
    }

    /// The pre-optimization scalar SpMV: the reference the unrolled kernel
    /// must match to full accuracy (not bit-exactness — the unroll changes
    /// the row summation order by design).
    fn spmv_scalar(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let (row_ptr, col_idx, values) = a.raw_parts();
        let mut y = vec![0.0; a.n_rows()];
        for r in 0..a.n_rows() {
            let mut acc = 0.0;
            for k in row_ptr[r]..row_ptr[r + 1] {
                acc += values[k] * x[col_idx[k]];
            }
            y[r] = acc;
        }
        y
    }

    #[test]
    fn unrolled_spmv_matches_scalar_reference() {
        for n in [1, 2, 3, 5, 17, 64, 193] {
            let a = random_csr(n, 0x9E3779B9 + n as u64);
            let x = random_vec(n, 42 + n as u64);
            let mut y = vec![0.0; n];
            let (rp, ci, vals) = a.raw_parts();
            spmv_raw(rp, ci, vals, &x, &mut y);
            let reference = spmv_scalar(&a, &x);
            for (u, v) in y.iter().zip(&reference) {
                assert!((u - v).abs() <= 1e-12 * (1.0 + v.abs()), "{u} vs {v}");
            }
        }
    }

    #[test]
    fn spmv_axpby_is_bit_identical_to_spmv_plus_axpby() {
        for n in [1, 4, 33, 100] {
            let a = random_csr(n, 7 + n as u64);
            let x = random_vec(n, 1 + n as u64);
            let y0 = random_vec(n, 2 + n as u64);
            let (alpha, beta) = (1.75, -0.5);

            let mut fused = y0.clone();
            let (rp, ci, vals) = a.raw_parts();
            spmv_axpby_raw(alpha, rp, ci, vals, &x, beta, &mut fused);

            let mut ax = vec![0.0; n];
            spmv_raw(rp, ci, vals, &x, &mut ax);
            let manual: Vec<f64> = ax
                .iter()
                .zip(&y0)
                .map(|(a, y)| alpha * a + beta * y)
                .collect();
            assert_eq!(fused, manual, "n={n}");
        }
    }

    #[test]
    fn indexed_row_subsets_reassemble_full_spmv_bit_for_bit() {
        for n in [1, 5, 64, 193] {
            let a = random_csr(n, 0xABCD + n as u64);
            let x = random_vec(n, 17 + n as u64);
            let (rp, ci, vals) = a.raw_parts();
            let mut full = vec![0.0; n];
            spmv_raw(rp, ci, vals, &x, &mut full);
            // Split rows into an arbitrary two-way partition (every third
            // row in one set, the rest in the other) and compute each side
            // separately.
            let (odd, even): (Vec<usize>, Vec<usize>) = (0..n).partition(|r| r % 3 == 0);
            let mut split = vec![f64::NAN; n];
            spmv_rows_indexed(rp, ci, vals, &x, &mut split, &odd);
            spmv_rows_indexed(rp, ci, vals, &x, &mut split, &even);
            assert_eq!(split, full, "n={n}");
        }
    }

    #[test]
    fn spmv_add_raw_accumulates() {
        let a = random_csr(20, 3);
        let x = random_vec(20, 4);
        let y0 = random_vec(20, 5);
        let (rp, ci, vals) = a.raw_parts();
        let mut y = y0.clone();
        spmv_add_raw(rp, ci, vals, &x, &mut y);
        let mut ax = vec![0.0; 20];
        spmv_raw(rp, ci, vals, &x, &mut ax);
        let manual: Vec<f64> = ax.iter().zip(&y0).map(|(a, y)| y + a).collect();
        assert_eq!(y, manual);
    }

    #[test]
    fn threaded_spmv_is_bit_identical_for_any_thread_count() {
        // Large enough to clear the sequential-fallback threshold.
        let n = 6000;
        let a = random_csr(n, 99);
        assert!(a.nnz() >= 64 * 1024 / 3, "workload sanity");
        let x = random_vec(n, 100);
        let mut seq = vec![0.0; n];
        a.spmv_into(&x, &mut seq);
        for threads in [1, 2, 3, 7, 16] {
            let mut par = vec![0.0; n];
            par_spmv_into(&a, &x, &mut par, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn threaded_spmv_small_matrix_falls_back() {
        let a = random_csr(10, 1);
        let x = random_vec(10, 2);
        let mut y = vec![0.0; 10];
        par_spmv_into(&a, &x, &mut y, 8);
        let mut seq = vec![0.0; 10];
        a.spmv_into(&x, &mut seq);
        assert_eq!(y, seq);
    }

    #[test]
    fn dot_block_is_bit_identical_to_separate_dots() {
        let n = 257;
        let w = random_vec(n, 11);
        let v0 = random_vec(n, 12);
        let v1 = random_vec(n, 13);
        let v2 = random_vec(n, 14);
        let v3 = random_vec(n, 15);
        let block = dot_block(&w, [&v0[..], &v1, &v2, &v3]);
        // dense::dot walks elements in order with one accumulator — the
        // same arithmetic dot_block performs per vector.
        assert_eq!(block[0], dense::dot(&w, &v0));
        assert_eq!(block[1], dense::dot(&w, &v1));
        assert_eq!(block[2], dense::dot(&w, &v2));
        assert_eq!(block[3], dense::dot(&w, &v3));
    }

    #[test]
    fn axpy_block_is_bit_identical_to_separate_axpys() {
        let n = 123;
        let v0 = random_vec(n, 21);
        let v1 = random_vec(n, 22);
        let v2 = random_vec(n, 23);
        let coeffs = [0.5, -1.25, 2.0];

        let mut fused = random_vec(n, 20);
        let mut manual = fused.clone();
        let sq = axpy_block(coeffs, [&v0[..], &v1, &v2], &mut fused);

        dense::axpy(coeffs[0], &v0, &mut manual);
        dense::axpy(coeffs[1], &v1, &mut manual);
        dense::axpy(coeffs[2], &v2, &mut manual);
        assert_eq!(fused, manual);
        assert_eq!(sq, dense::dot(&fused, &fused));
    }

    #[test]
    fn axpy_block_zero_vectors_is_identity_plus_norm() {
        let mut w = vec![3.0, -4.0];
        let sq = axpy_block::<0>([], [], &mut w);
        assert_eq!(w, vec![3.0, -4.0]);
        assert_eq!(sq, 25.0);
    }

    #[test]
    fn row_dot_empty_row_is_zero() {
        assert_eq!(row_dot(&[], &[], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn dot_sweep_is_bit_identical_to_separate_dots() {
        let n = 97;
        let w = random_vec(n, 31);
        // Cover every remainder size (0..=3) against the block width.
        for cnt in 0..=9 {
            let vs: Vec<Vec<f64>> = (0..cnt).map(|i| random_vec(n, 40 + i as u64)).collect();
            let mut out = vec![f64::NAN; cnt + 2];
            dot_sweep(&w, &vs, &mut out);
            for (i, v) in vs.iter().enumerate() {
                assert_eq!(out[i], dense::dot(&w, v), "cnt={cnt} i={i}");
            }
        }
    }

    #[test]
    fn axpy_sweep_neg_is_bit_identical_to_subtraction_loops() {
        let n = 101;
        for cnt in 0..=9 {
            let vs: Vec<Vec<f64>> = (0..cnt).map(|i| random_vec(n, 60 + i as u64)).collect();
            let coeffs: Vec<f64> = (0..cnt).map(|i| (i as f64) * 0.75 - 2.0).collect();
            let mut fused = random_vec(n, 59);
            let mut manual = fused.clone();
            let sq = axpy_sweep_neg(&coeffs, &vs, &mut fused);
            for (c, v) in coeffs.iter().zip(&vs) {
                for (wk, vk) in manual.iter_mut().zip(v) {
                    *wk -= c * vk;
                }
            }
            assert_eq!(fused, manual, "cnt={cnt}");
            assert_eq!(sq, dense::dot(&fused, &fused), "cnt={cnt}");
        }
    }
}
