//! ILU(0): incomplete LU factorization with zero fill-in.
//!
//! The paper uses ILU(0) as the sequential comparator preconditioner
//! (Figures 11–12) and points out two drawbacks for element-based domain
//! decomposition: it is expensive relative to polynomial preconditioning and
//! the local factorization fails on "floating" subdomains whose local
//! stiffness matrix is singular (Section 3.2.3, Eq. 45). That failure mode
//! surfaces here as [`SparseError::ZeroPivot`].

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// An ILU(0) factorization `A ≈ L U` stored on the sparsity pattern of `A`.
///
/// `L` is unit lower triangular (unit diagonal not stored), `U` is upper
/// triangular including the diagonal; both live in one CSR structure that
/// shares the pattern of the input matrix.
#[derive(Debug, Clone)]
pub struct Ilu0 {
    lu: CsrMatrix,
    /// Position of the diagonal entry in each row of `lu`.
    diag_pos: Vec<usize>,
}

impl Ilu0 {
    /// Factorizes `a` in ILU(0) fashion (IKJ variant restricted to the
    /// pattern of `a`).
    ///
    /// # Errors
    /// - [`SparseError::NotSquare`] for a rectangular matrix;
    /// - [`SparseError::ZeroPivot`] when a diagonal entry is structurally
    ///   missing or numerically negligible — for subdomain stiffness matrices
    ///   this is the paper's floating-subdomain singularity.
    pub fn factorize(a: &CsrMatrix) -> Result<Self, SparseError> {
        let n = a.n_rows();
        if n != a.n_cols() {
            return Err(SparseError::NotSquare {
                n_rows: a.n_rows(),
                n_cols: a.n_cols(),
            });
        }
        let mut lu = a.clone();
        // Locate diagonal positions first; a missing diagonal is a structural
        // zero pivot.
        let mut diag_pos = Vec::with_capacity(n);
        {
            let (row_ptr, col_idx, _) = lu.raw_parts();
            for i in 0..n {
                let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
                match row.binary_search(&i) {
                    Ok(k) => diag_pos.push(row_ptr[i] + k),
                    Err(_) => {
                        return Err(SparseError::ZeroPivot { row: i, value: 0.0 });
                    }
                }
            }
        }

        // Scale for the negligible-pivot test.
        let max_abs = {
            let (_, _, values) = lu.raw_parts();
            values.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1.0)
        };
        let pivot_tol = 1e-14 * max_abs;

        // We need mutable access to the full values array with the immutable
        // structure; copy the structure arrays out once.
        let row_ptr: Vec<usize> = lu.raw_parts().0.to_vec();
        let col_idx: Vec<usize> = lu.raw_parts().1.to_vec();

        for i in 1..n {
            let row_start = row_ptr[i];
            let row_end = row_ptr[i + 1];
            // For each k < i present in row i (in increasing column order):
            let mut kk = row_start;
            while kk < row_end && col_idx[kk] < i {
                let k = col_idx[kk];
                let pivot = {
                    let (_, _, values) = lu.raw_parts();
                    values[diag_pos[k]]
                };
                if pivot.abs() <= pivot_tol {
                    return Err(SparseError::ZeroPivot {
                        row: k,
                        value: pivot,
                    });
                }
                let lik = {
                    let (_, _, values) = lu.raw_parts();
                    values[kk] / pivot
                };
                // Subtract lik * (row k, columns > k) from row i, restricted
                // to the pattern of row i (zero fill).
                let krow_start = diag_pos[k] + 1; // entries of row k right of diagonal
                let krow_end = row_ptr[k + 1];
                {
                    let values = lu.values_mut();
                    values[kk] = lik;
                    let mut p = kk + 1;
                    for q in krow_start..krow_end {
                        let cj = col_idx[q];
                        // advance p in row i until col >= cj
                        while p < row_end && col_idx[p] < cj {
                            p += 1;
                        }
                        if p >= row_end {
                            break;
                        }
                        if col_idx[p] == cj {
                            values[p] -= lik * values[q];
                        }
                    }
                }
                kk += 1;
            }
            // Check this row's pivot after elimination.
            let pivot = {
                let (_, _, values) = lu.raw_parts();
                values[diag_pos[i]]
            };
            if pivot.abs() <= pivot_tol {
                return Err(SparseError::ZeroPivot {
                    row: i,
                    value: pivot,
                });
            }
        }
        // Row 0 pivot check.
        if n > 0 {
            let (_, _, values) = lu.raw_parts();
            let p0 = values[diag_pos[0]];
            if p0.abs() <= pivot_tol {
                return Err(SparseError::ZeroPivot { row: 0, value: p0 });
            }
        }
        Ok(Ilu0 { lu, diag_pos })
    }

    /// Solves `L U z = v` (forward then backward substitution) into `z`.
    ///
    /// # Panics
    /// Panics if the vector lengths differ from the matrix dimension.
    pub fn solve_into(&self, v: &[f64], z: &mut [f64]) {
        let n = self.lu.n_rows();
        assert_eq!(v.len(), n, "ilu solve: v length mismatch");
        assert_eq!(z.len(), n, "ilu solve: z length mismatch");
        let (row_ptr, col_idx, values) = self.lu.raw_parts();
        // Forward: L y = v, unit diagonal.
        for i in 0..n {
            let mut acc = v[i];
            for k in row_ptr[i]..self.diag_pos[i] {
                acc -= values[k] * z[col_idx[k]];
            }
            z[i] = acc;
        }
        // Backward: U z = y.
        for i in (0..n).rev() {
            let mut acc = z[i];
            for k in (self.diag_pos[i] + 1)..row_ptr[i + 1] {
                acc -= values[k] * z[col_idx[k]];
            }
            z[i] = acc / values[self.diag_pos[i]];
        }
    }

    /// Allocating variant of [`Ilu0::solve_into`].
    pub fn solve(&self, v: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; v.len()];
        self.solve_into(v, &mut z);
        z
    }

    /// The combined LU factor matrix (for inspection/tests).
    pub fn factors(&self) -> &CsrMatrix {
        &self.lu
    }

    /// Floating-point operations of one `solve` (≈ 2 per stored entry).
    pub fn solve_flops(&self) -> u64 {
        2 * self.lu.nnz() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // A tridiagonal matrix has no fill-in, so ILU(0) equals full LU and
        // the solve is a direct solve.
        let a = laplacian(8);
        let ilu = Ilu0::factorize(&a).unwrap();
        let x_exact: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let b = a.spmv(&x_exact);
        let x = ilu.solve(&b);
        for (xi, ei) in x.iter().zip(&x_exact) {
            assert!((xi - ei).abs() < 1e-12, "{xi} vs {ei}");
        }
    }

    #[test]
    fn ilu0_is_exact_for_diagonal() {
        let a = CsrMatrix::from_diagonal(&[2.0, 4.0, 8.0]);
        let ilu = Ilu0::factorize(&a).unwrap();
        let z = ilu.solve(&[2.0, 4.0, 8.0]);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn ilu0_residual_is_on_fill_positions_only() {
        // For a 2-D-like pattern with fill, L*U - A must vanish on the
        // pattern of A (defining property of ILU(0)).
        #[rustfmt::skip]
        let a = CsrMatrix::from_dense(4, 4, &[
            4.0, -1.0, -1.0,  0.0,
           -1.0,  4.0,  0.0, -1.0,
           -1.0,  0.0,  4.0, -1.0,
            0.0, -1.0, -1.0,  4.0,
        ]);
        let ilu = Ilu0::factorize(&a).unwrap();
        // Reconstruct L*U densely.
        let lu = ilu.factors();
        let n = 4;
        let mut l = vec![0.0; n * n];
        let mut u = vec![0.0; n * n];
        for i in 0..n {
            l[i * n + i] = 1.0;
            let (cols, vals) = lu.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if c < i {
                    l[i * n + c] = v;
                } else {
                    u[i * n + c] = v;
                }
            }
        }
        let mut prod = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    prod[i * n + j] += l[i * n + k] * u[k * n + j];
                }
            }
        }
        let ad = a.to_dense();
        for i in 0..n {
            for j in 0..n {
                if a.get(i, j) != 0.0 {
                    assert!(
                        (prod[i * n + j] - ad[i * n + j]).abs() < 1e-12,
                        "mismatch on pattern at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        // The floating-subdomain case: a stiffness matrix with a rigid-body
        // null space, e.g. the unconstrained truss [1 -1; -1 1].
        let a = CsrMatrix::from_dense(2, 2, &[1.0, -1.0, -1.0, 1.0]);
        match Ilu0::factorize(&a) {
            Err(SparseError::ZeroPivot { row, .. }) => assert_eq!(row, 1),
            other => panic!("expected zero pivot, got {other:?}"),
        }
    }

    #[test]
    fn structurally_missing_diagonal_is_rejected() {
        let a = CsrMatrix::from_dense(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(matches!(
            Ilu0::factorize(&a),
            Err(SparseError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn rectangular_is_rejected() {
        let a = CsrMatrix::from_dense(2, 3, &[1.0; 6]);
        assert!(matches!(
            Ilu0::factorize(&a),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn preconditioner_reduces_residual_vs_identity() {
        // One application of ILU(0)^{-1} should bring z much closer to
        // A^{-1} v than v itself for a diagonally dominant matrix.
        let a = laplacian(30);
        let ilu = Ilu0::factorize(&a).unwrap();
        let v = vec![1.0; 30];
        let z = ilu.solve(&v);
        // Residual ||A z - v|| must be small relative to ||A v - v||.
        let az = a.spmv(&z);
        let res_precond: f64 = az.iter().zip(&v).map(|(a, b)| (a - b).powi(2)).sum();
        let av = a.spmv(&v);
        let res_plain: f64 = av.iter().zip(&v).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(res_precond < 1e-20 * res_plain.max(1.0));
    }

    #[test]
    fn solve_flops_counts_pattern() {
        let a = laplacian(5);
        let ilu = Ilu0::factorize(&a).unwrap();
        assert_eq!(ilu.solve_flops(), 2 * a.nnz() as u64);
    }
}
