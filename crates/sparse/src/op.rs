//! Abstract linear operators.
//!
//! Krylov solvers and polynomial preconditioners only ever need `y = A x`;
//! abstracting that single operation lets the identical solver code run on
//! - a plain [`CsrMatrix`] (sequential),
//! - the element-based distributed operator (local SpMV + interface sum),
//! - the row-based distributed operator (halo gather + two local SpMVs),
//!
//! which is precisely how the paper shares Algorithm 1 across Algorithms 5,
//! 6 and 8.

use crate::csr::CsrMatrix;

/// A square linear operator `A : R^n -> R^n`.
pub trait LinearOperator {
    /// The dimension `n` of the operator's domain and range.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    /// Implementations panic when `x` or `y` has length `!= dim()`.
    fn apply_into(&self, x: &[f64], y: &mut [f64]);

    /// Allocating convenience wrapper around
    /// [`LinearOperator::apply_into`].
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply_into(x, &mut y);
        y
    }

    /// Floating-point operations of one application (used by the
    /// virtual-time machine model; 0 if unknown).
    fn apply_flops(&self) -> u64 {
        0
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(
            self.n_rows(),
            self.n_cols(),
            "LinearOperator requires a square matrix"
        );
        self.n_rows()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    fn apply_flops(&self) -> u64 {
        self.spmv_flops()
    }
}

/// A [`CsrMatrix`] applied with the row-partitioned multithreaded SpMV.
///
/// Results are **bit-identical** to the plain matrix for any thread count
/// (see [`crate::kernels::par_spmv_into`]), so swapping this wrapper into a
/// solver changes wall time only — never iteration counts or solutions.
///
/// ```
/// use parfem_sparse::{op::ThreadedCsr, CsrMatrix, LinearOperator};
///
/// let a = CsrMatrix::from_dense(2, 2, &[2.0, -1.0, -1.0, 2.0]);
/// let t = ThreadedCsr::new(&a, 4);
/// assert_eq!(t.apply(&[1.0, 1.0]), a.spmv(&[1.0, 1.0]));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThreadedCsr<'a> {
    matrix: &'a CsrMatrix,
    threads: usize,
}

impl<'a> ThreadedCsr<'a> {
    /// Wraps `matrix` to apply with `threads` threads (clamped to ≥ 1).
    pub fn new(matrix: &'a CsrMatrix, threads: usize) -> Self {
        ThreadedCsr {
            matrix,
            threads: threads.max(1),
        }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        self.matrix
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl LinearOperator for ThreadedCsr<'_> {
    fn dim(&self) -> usize {
        self.matrix.dim()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.matrix.par_spmv_into(x, y, self.threads);
    }

    fn apply_flops(&self) -> u64 {
        self.matrix.spmv_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_operator_matches_spmv() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let x = [1.0, 1.0];
        assert_eq!(a.apply(&x), a.spmv(&x));
        assert_eq!(a.dim(), 2);
        assert_eq!(LinearOperator::apply_flops(&a), a.spmv_flops());
    }

    #[test]
    #[should_panic(expected = "square matrix")]
    fn rectangular_matrix_has_no_operator_dim() {
        let a = CsrMatrix::from_dense(1, 2, &[1.0, 2.0]);
        let _ = a.dim();
    }
}
