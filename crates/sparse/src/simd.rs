//! Hand-unrolled `f64x4`-style lane kernels (the `KernelPolicy::Simd`
//! variants of the hot vector primitives).
//!
//! Stable Rust has no `std::simd`, so these kernels express the lane
//! structure explicitly: four independent accumulators walked over
//! `chunks_exact(4)` of the operands. The optimizer maps each accumulator
//! to a vector lane; the explicit form guarantees the instruction-level
//! parallelism regardless of autovectorization.
//!
//! Reduction-order contract, per kernel:
//!
//! - [`dot_lanes`] / [`dot_sweep_lanes`] combine the four partial sums as
//!   `(a0 + a1) + (a2 + a3)` — the same tree as
//!   [`crate::kernels::row_dot`], but **different** from the scalar
//!   [`crate::kernels::dot_block`] (single sequential accumulator), so SIMD
//!   dots agree with the scalar reference to a pinned ULP bound.
//! - [`axpy_sweep_neg_lanes`] updates each element in exactly the scalar
//!   block order (the subtraction sequence per element is unchanged — the
//!   unrolling only regroups *elements*, never the per-element operation
//!   chain), so the updated vector is **bit-identical** to the scalar
//!   [`crate::kernels::axpy_sweep_neg`]; only the returned `Σw²` uses the
//!   lane tree and is ULP-bounded.
//! - [`spmv_lanes`] keeps the per-row [`crate::kernels::row_dot`]
//!   arithmetic verbatim (it unrolls across *rows*), so it is
//!   **bit-identical** to the scalar CSR SpMV.
//! - [`scale_lanes`] multiplies each element by the same factor in element
//!   order — bit-identical to a plain scalar loop with the same factor.

use crate::kernels::row_dot;

/// Lane-tree dot product `⟨a, b⟩`: four partial sums over
/// `chunks_exact(4)` combined as `(a0 + a1) + (a2 + a3)` plus a sequential
/// remainder.
///
/// # Panics
/// Panics on length mismatches.
pub fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_lanes: length mismatch");
    let mut a4 = a.chunks_exact(4);
    let mut b4 = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in (&mut a4).zip(&mut b4) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (x, y) in a4.remainder().iter().zip(b4.remainder()) {
        acc += x * y;
    }
    acc
}

/// Four simultaneous lane-tree dot products sharing one pass over `w`
/// (sixteen independent accumulators: four lanes for each of the four
/// vectors).
fn dot4_lanes(w: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    debug_assert_eq!(w.len(), a.len());
    debug_assert_eq!(w.len(), b.len());
    debug_assert_eq!(w.len(), c.len());
    debug_assert_eq!(w.len(), d.len());
    let mut w4 = w.chunks_exact(4);
    let mut a4 = a.chunks_exact(4);
    let mut b4 = b.chunks_exact(4);
    let mut c4 = c.chunks_exact(4);
    let mut d4 = d.chunks_exact(4);
    let mut pa = [0.0f64; 4];
    let mut pb = [0.0f64; 4];
    let mut pc = [0.0f64; 4];
    let mut pd = [0.0f64; 4];
    for ((((x, ya), yb), yc), yd) in (&mut w4)
        .zip(&mut a4)
        .zip(&mut b4)
        .zip(&mut c4)
        .zip(&mut d4)
    {
        for l in 0..4 {
            pa[l] += x[l] * ya[l];
            pb[l] += x[l] * yb[l];
            pc[l] += x[l] * yc[l];
            pd[l] += x[l] * yd[l];
        }
    }
    let mut out = [
        (pa[0] + pa[1]) + (pa[2] + pa[3]),
        (pb[0] + pb[1]) + (pb[2] + pb[3]),
        (pc[0] + pc[1]) + (pc[2] + pc[3]),
        (pd[0] + pd[1]) + (pd[2] + pd[3]),
    ];
    let off = w.len() - w4.remainder().len();
    for (l, &x) in w4.remainder().iter().enumerate() {
        let k = off + l;
        out[0] += x * a[k];
        out[1] += x * b[k];
        out[2] += x * c[k];
        out[3] += x * d[k];
    }
    out
}

/// Two simultaneous lane-tree dot products sharing one pass over `w`.
fn dot2_lanes(w: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    debug_assert_eq!(w.len(), a.len());
    debug_assert_eq!(w.len(), b.len());
    let mut w4 = w.chunks_exact(4);
    let mut a4 = a.chunks_exact(4);
    let mut b4 = b.chunks_exact(4);
    let (mut p0, mut p1, mut p2, mut p3) = (0.0, 0.0, 0.0, 0.0);
    let (mut q0, mut q1, mut q2, mut q3) = (0.0, 0.0, 0.0, 0.0);
    for ((x, y), z) in (&mut w4).zip(&mut a4).zip(&mut b4) {
        p0 += x[0] * y[0];
        p1 += x[1] * y[1];
        p2 += x[2] * y[2];
        p3 += x[3] * y[3];
        q0 += x[0] * z[0];
        q1 += x[1] * z[1];
        q2 += x[2] * z[2];
        q3 += x[3] * z[3];
    }
    let mut p = (p0 + p1) + (p2 + p3);
    let mut q = (q0 + q1) + (q2 + q3);
    for ((x, y), z) in w4
        .remainder()
        .iter()
        .zip(a4.remainder())
        .zip(b4.remainder())
    {
        p += x * y;
        q += x * z;
    }
    (p, q)
}

/// Batched Gram–Schmidt reductions with lane trees:
/// `out[i] = ⟨w, vs[i]⟩` for every basis vector plus `out[vs.len()] = ⟨w, w⟩`,
/// walking `w` once per *block of four* vectors (pairs/singles on the tail).
///
/// The SIMD counterpart of [`crate::kernels::dot_sweep`]; results are
/// ULP-bounded against it (lane tree vs sequential accumulator).
///
/// # Panics
/// Panics if `out` is shorter than `vs.len() + 1` or on length mismatches.
pub fn dot_sweep_lanes(w: &[f64], vs: &[Vec<f64>], out: &mut [f64]) {
    assert!(out.len() > vs.len(), "dot_sweep_lanes: out too short");
    dot_many_lanes(w, vs, out);
    out[vs.len()] = dot_lanes(w, w);
}

/// Lane-tree dot products of `w` against every basis vector —
/// `out[i] = ⟨w, vs[i]⟩` — walking `w` once per *block of four* vectors
/// (sixteen accumulators live per pass), without the trailing `⟨w, w⟩` of
/// [`dot_sweep_lanes`].
///
/// This is the reduction half of the SIMD classical Gram–Schmidt step,
/// where `Σw²` comes for free from [`axpy_sweep_neg_lanes`] afterwards.
///
/// # Panics
/// Panics if `out` is shorter than `vs.len()` or on length mismatches.
pub fn dot_many_lanes(w: &[f64], vs: &[Vec<f64>], out: &mut [f64]) {
    assert!(out.len() >= vs.len(), "dot_many_lanes: out too short");
    let mut i = 0;
    while i + 4 <= vs.len() {
        let d = dot4_lanes(w, &vs[i], &vs[i + 1], &vs[i + 2], &vs[i + 3]);
        out[i..i + 4].copy_from_slice(&d);
        i += 4;
    }
    if i + 2 <= vs.len() {
        let (p, q) = dot2_lanes(w, &vs[i], &vs[i + 1]);
        out[i] = p;
        out[i + 1] = q;
        i += 2;
    }
    if i < vs.len() {
        out[i] = dot_lanes(w, &vs[i]);
    }
}

/// One four-vector projection-subtraction pass: `w -= Σ c[j] · v_j`, four
/// elements per step, returning the lane-tree `Σ w²` of the values written.
fn axpy4_lanes(c: [f64; 4], v0: &[f64], v1: &[f64], v2: &[f64], v3: &[f64], w: &mut [f64]) -> f64 {
    debug_assert_eq!(w.len(), v0.len());
    debug_assert_eq!(w.len(), v1.len());
    debug_assert_eq!(w.len(), v2.len());
    debug_assert_eq!(w.len(), v3.len());
    let n = w.len();
    let mut w4 = w.chunks_exact_mut(4);
    let mut a4 = v0.chunks_exact(4);
    let mut b4 = v1.chunks_exact(4);
    let mut c4 = v2.chunks_exact(4);
    let mut d4 = v3.chunks_exact(4);
    let mut s = [0.0f64; 4];
    for ((((x, ya), yb), yc), yd) in (&mut w4)
        .zip(&mut a4)
        .zip(&mut b4)
        .zip(&mut c4)
        .zip(&mut d4)
    {
        for l in 0..4 {
            let t = ((x[l] - c[0] * ya[l]) - c[1] * yb[l]) - c[2] * yc[l] - c[3] * yd[l];
            x[l] = t;
            s[l] += t * t;
        }
    }
    let mut sq = (s[0] + s[1]) + (s[2] + s[3]);
    let rem = w4.into_remainder();
    let off = n - rem.len();
    for (l, wj) in rem.iter_mut().enumerate() {
        let k = off + l;
        let t = ((*wj - c[0] * v0[k]) - c[1] * v1[k]) - c[2] * v2[k] - c[3] * v3[k];
        *wj = t;
        sq += t * t;
    }
    sq
}

/// Tail projection-subtraction pass over one to three vectors, fused with
/// the lane-tree `Σ w²` of the updated vector.
fn axpy_tail_lanes(coeffs: &[f64], vs: &[Vec<f64>], w: &mut [f64]) -> f64 {
    let n = w.len();
    let mut s = [0.0f64; 4];
    let mut sq_tail = 0.0;
    match coeffs.len() {
        1 => {
            let (c0, v0) = (coeffs[0], vs[0].as_slice());
            let mut w4 = w.chunks_exact_mut(4);
            let mut a4 = v0.chunks_exact(4);
            for (x, ya) in (&mut w4).zip(&mut a4) {
                for l in 0..4 {
                    let t = x[l] - c0 * ya[l];
                    x[l] = t;
                    s[l] += t * t;
                }
            }
            let rem = w4.into_remainder();
            let off = n - rem.len();
            for (l, wj) in rem.iter_mut().enumerate() {
                let t = *wj - c0 * v0[off + l];
                *wj = t;
                sq_tail += t * t;
            }
        }
        2 => {
            let (c0, v0) = (coeffs[0], vs[0].as_slice());
            let (c1, v1) = (coeffs[1], vs[1].as_slice());
            let mut w4 = w.chunks_exact_mut(4);
            let mut a4 = v0.chunks_exact(4);
            let mut b4 = v1.chunks_exact(4);
            for ((x, ya), yb) in (&mut w4).zip(&mut a4).zip(&mut b4) {
                for l in 0..4 {
                    let t = (x[l] - c0 * ya[l]) - c1 * yb[l];
                    x[l] = t;
                    s[l] += t * t;
                }
            }
            let rem = w4.into_remainder();
            let off = n - rem.len();
            for (l, wj) in rem.iter_mut().enumerate() {
                let k = off + l;
                let t = (*wj - c0 * v0[k]) - c1 * v1[k];
                *wj = t;
                sq_tail += t * t;
            }
        }
        3 => {
            let (c0, v0) = (coeffs[0], vs[0].as_slice());
            let (c1, v1) = (coeffs[1], vs[1].as_slice());
            let (c2, v2) = (coeffs[2], vs[2].as_slice());
            let mut w4 = w.chunks_exact_mut(4);
            let mut a4 = v0.chunks_exact(4);
            let mut b4 = v1.chunks_exact(4);
            let mut c4 = v2.chunks_exact(4);
            for (((x, ya), yb), yc) in (&mut w4).zip(&mut a4).zip(&mut b4).zip(&mut c4) {
                for l in 0..4 {
                    let t = ((x[l] - c0 * ya[l]) - c1 * yb[l]) - c2 * yc[l];
                    x[l] = t;
                    s[l] += t * t;
                }
            }
            let rem = w4.into_remainder();
            let off = n - rem.len();
            for (l, wj) in rem.iter_mut().enumerate() {
                let k = off + l;
                let t = ((*wj - c0 * v0[k]) - c1 * v1[k]) - c2 * v2[k];
                *wj = t;
                sq_tail += t * t;
            }
        }
        k => unreachable!("axpy_tail_lanes: tail of {k} vectors"),
    }
    (s[0] + s[1]) + (s[2] + s[3]) + sq_tail
}

/// `w -= Σ coeffs[i] · vs[i]`, returning the lane-tree `Σ w²` of the
/// updated vector.
///
/// The SIMD counterpart of [`crate::kernels::axpy_sweep_neg`]: vectors are
/// grouped into the same blocks of four (plus one fused tail pass) and each
/// element sees the identical subtraction chain, so the updated `w` is
/// **bit-identical** to the scalar kernel; only the returned `Σ w²` — fused
/// into the final pass here too — uses the lane tree and is ULP-bounded.
///
/// # Panics
/// Panics on length mismatches.
pub fn axpy_sweep_neg_lanes(coeffs: &[f64], vs: &[Vec<f64>], w: &mut [f64]) -> f64 {
    assert_eq!(coeffs.len(), vs.len(), "axpy_sweep_neg_lanes: mismatch");
    let cnt = vs.len();
    if cnt == 0 {
        return dot_lanes(w, w);
    }
    let mut i = 0;
    let mut sq = 0.0;
    while i + 4 <= cnt {
        // Σw² of a non-final block is over intermediate values; the final
        // pass (full block or tail) overwrites it with the real norm.
        sq = axpy4_lanes(
            [coeffs[i], coeffs[i + 1], coeffs[i + 2], coeffs[i + 3]],
            &vs[i],
            &vs[i + 1],
            &vs[i + 2],
            &vs[i + 3],
            w,
        );
        i += 4;
    }
    if i < cnt {
        sq = axpy_tail_lanes(&coeffs[i..], &vs[i..], w);
    }
    sq
}

/// `v *= s` element-wise — the reciprocal-multiply normalization used by
/// the SIMD policy (`w / h` becomes `w · (1/h)`, trading one ULP of the
/// scalar path's per-element division for a ~4× cheaper pass).
pub fn scale_lanes(s: f64, v: &mut [f64]) {
    let mut v4 = v.chunks_exact_mut(4);
    for c in &mut v4 {
        c[0] *= s;
        c[1] *= s;
        c[2] *= s;
        c[3] *= s;
    }
    for x in v4.into_remainder() {
        *x *= s;
    }
}

/// CSR SpMV unrolled two rows at a time, each row using the verbatim
/// [`row_dot`] reduction — **bit-identical** to the scalar
/// [`crate::kernels::spmv_raw`], with better load overlap on short rows.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn spmv_lanes(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
    let n = row_ptr.len() - 1;
    assert_eq!(y.len(), n, "spmv_lanes: y length mismatch");
    let mut r = 0;
    while r + 2 <= n {
        let (lo0, mid, hi1) = (row_ptr[r], row_ptr[r + 1], row_ptr[r + 2]);
        let d0 = row_dot(&col_idx[lo0..mid], &values[lo0..mid], x);
        let d1 = row_dot(&col_idx[mid..hi1], &values[mid..hi1], x);
        y[r] = d0;
        y[r + 1] = d1;
        r += 2;
    }
    if r < n {
        let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
        y[r] = row_dot(&col_idx[lo..hi], &values[lo..hi], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn vecs(n: usize, k: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let w: Vec<f64> = (0..n).map(|_| next()).collect();
        let vs: Vec<Vec<f64>> = (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();
        (w, vs)
    }

    #[test]
    fn dot_lanes_close_to_sequential() {
        let (w, vs) = vecs(1037, 1);
        let seq: f64 = w.iter().zip(&vs[0]).map(|(a, b)| a * b).sum();
        let got = dot_lanes(&w, &vs[0]);
        assert!((got - seq).abs() <= 1e-12 * (1.0 + seq.abs()));
    }

    #[test]
    fn dot_sweep_lanes_matches_scalar_sweep_closely() {
        for k in [0usize, 1, 2, 3, 5, 8] {
            let (w, vs) = vecs(513, k);
            let mut got = vec![0.0; k + 1];
            let mut want = vec![0.0; k + 1];
            dot_sweep_lanes(&w, &vs, &mut got);
            kernels::dot_sweep(&w, &vs, &mut want);
            want[k] = w.iter().map(|x| x * x).sum();
            for (g, wv) in got.iter().zip(&want) {
                assert!((g - wv).abs() <= 1e-11 * (1.0 + wv.abs()), "{g} vs {wv}");
            }
        }
    }

    #[test]
    fn axpy_sweep_lanes_updates_bit_identically() {
        for k in [1usize, 2, 3, 4, 6, 9] {
            let (w, vs) = vecs(257, k);
            let coeffs: Vec<f64> = (0..k).map(|i| 0.25 * (i as f64 + 1.0)).collect();
            let mut w_simd = w.clone();
            let mut w_ref = w.clone();
            let ww_simd = axpy_sweep_neg_lanes(&coeffs, &vs, &mut w_simd);
            let ww_ref = kernels::axpy_sweep_neg(&coeffs, &vs, &mut w_ref);
            assert_eq!(w_simd, w_ref, "k={k}: updated vector must be bit-identical");
            assert!((ww_simd - ww_ref).abs() <= 1e-11 * (1.0 + ww_ref.abs()));
        }
    }

    #[test]
    fn scale_lanes_is_bit_identical_to_scalar_loop() {
        let (w, _) = vecs(101, 0);
        let s = 1.0 / 3.0;
        let mut a = w.clone();
        let mut b = w;
        scale_lanes(s, &mut a);
        for x in &mut b {
            *x *= s;
        }
        assert_eq!(a, b);
    }
}
