//! Block-CSR storage with fixed 2×2 blocks, converted from CSR.
//!
//! The workspace's FE discretization carries two DOFs per node (2-D
//! elasticity: `u_x`, `u_y`), so the assembled stiffness has a natural 2×2
//! block structure — any entry coupling node `a` to node `b` lands in the
//! same 2×2 block as its three companions. Storing those blocks contiguously
//! halves the index metadata (one block column index per four entries) and
//! turns the inner SpMV loop into a dense 2×2 `y += B x` update with perfect
//! register reuse of the two `x` values.
//!
//! Blocks are filled with explicit zeros where the scalar pattern is
//! incomplete; a 4-bit structural mask per block remembers which entries the
//! source matrix actually stored, which makes [`BcsrMatrix::to_csr`] an
//! **exact** inverse of [`BcsrMatrix::try_from_csr`] — including explicitly
//! stored zeros (pinned by a round-trip property test).
//!
//! Reduction-order contract: each row accumulates block-by-block as
//! `acc += b0·x0 + b1·x1`, which differs from the CSR kernels' four-partial
//! tree — block SpMV results agree with the scalar reference to a pinned
//! ULP bound, not bit-for-bit. The scalar CSR path remains the golden
//! reference.

use crate::csr::CsrMatrix;
use crate::op::LinearOperator;

/// A sparse matrix in 2×2 block-CSR format. Build with
/// [`BcsrMatrix::try_from_csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    /// Scalar row count (even).
    n_rows: usize,
    /// Scalar column count (even).
    n_cols: usize,
    /// Per-block-row offsets into `bcol_idx`/`blocks`.
    brow_ptr: Vec<usize>,
    /// Block column indices (scalar columns `2c`, `2c + 1`).
    bcol_idx: Vec<u32>,
    /// Row-major 2×2 blocks `[a00, a01, a10, a11]`.
    blocks: Vec<[f64; 4]>,
    /// Structural mask per block: bit `i` set iff entry `i` of the block was
    /// stored in the source matrix (the rest are fill-in zeros).
    mask: Vec<u8>,
    /// Stored entries of the source matrix (fill-in excluded).
    nnz: usize,
}

impl BcsrMatrix {
    /// Converts a CSR matrix with even dimensions into 2×2 block CSR.
    /// Returns `None` when either dimension is odd (no natural 2×2 DOF
    /// structure).
    ///
    /// # Panics
    /// Panics if a block column index does not fit in `u32`.
    pub fn try_from_csr(a: &CsrMatrix) -> Option<Self> {
        if !a.n_rows().is_multiple_of(2) || !a.n_cols().is_multiple_of(2) {
            return None;
        }
        assert!(a.n_cols() / 2 <= u32::MAX as usize, "block column overflow");
        let (row_ptr, col_idx, values) = a.raw_parts();
        let nb = a.n_rows() / 2;
        let mut brow_ptr = Vec::with_capacity(nb + 1);
        brow_ptr.push(0usize);
        let mut bcol_idx: Vec<u32> = Vec::new();
        let mut blocks: Vec<[f64; 4]> = Vec::new();
        let mut mask: Vec<u8> = Vec::new();
        for br in 0..nb {
            let start = bcol_idx.len();
            // Merge the two scalar rows; columns are strictly increasing per
            // row, so the union of block columns comes from a two-way merge.
            for local in 0..2 {
                let r = 2 * br + local;
                for e in row_ptr[r]..row_ptr[r + 1] {
                    let bc = (col_idx[e] / 2) as u32;
                    // Find or append this block within the current block row
                    // (kept sorted; entries arrive in ascending column order
                    // per scalar row, so a backwards scan is short).
                    let slot = match bcol_idx[start..].binary_search(&bc) {
                        Ok(i) => start + i,
                        Err(i) => {
                            bcol_idx.insert(start + i, bc);
                            blocks.insert(start + i, [0.0; 4]);
                            mask.insert(start + i, 0);
                            start + i
                        }
                    };
                    let entry = 2 * local + (col_idx[e] % 2);
                    blocks[slot][entry] = values[e];
                    mask[slot] |= 1 << entry;
                }
            }
            brow_ptr.push(bcol_idx.len());
        }
        Some(BcsrMatrix {
            n_rows: a.n_rows(),
            n_cols: a.n_cols(),
            brow_ptr,
            bcol_idx,
            blocks,
            mask,
            nnz: a.nnz(),
        })
    }

    /// Scalar row count.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Scalar column count.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Stored entries of the source matrix (fill-in excluded).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of stored 2×2 blocks (each holds 4 values).
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Fill-in ratio: stored block entries over source entries (1.0 means
    /// the scalar pattern was perfectly 2×2-blocked).
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            (4 * self.blocks.len()) as f64 / self.nnz as f64
        }
    }

    /// Flops of one SpMV (fill-in excluded, matching
    /// [`CsrMatrix::spmv_flops`] on the source matrix).
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz as u64
    }

    /// Exact inverse of [`BcsrMatrix::try_from_csr`]: reconstructs the
    /// source CSR matrix, explicit zeros and all (fill-in is dropped via the
    /// structural mask).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        for br in 0..self.n_rows / 2 {
            for local in 0..2 {
                for e in self.brow_ptr[br]..self.brow_ptr[br + 1] {
                    let c0 = 2 * self.bcol_idx[e] as usize;
                    for sub in 0..2 {
                        let entry = 2 * local + sub;
                        if self.mask[e] & (1 << entry) != 0 {
                            col_idx.push(c0 + sub);
                            values.push(self.blocks[e][entry]);
                        }
                    }
                }
                row_ptr.push(col_idx.len());
            }
        }
        CsrMatrix::from_raw_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
            .expect("BCSR round-trip produced invalid CSR")
    }

    /// `y = A x` via dense 2×2 block updates.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "bcsr spmv: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "bcsr spmv: y length mismatch");
        for br in 0..self.n_rows / 2 {
            let lo = self.brow_ptr[br];
            let hi = self.brow_ptr[br + 1];
            let mut y0 = 0.0;
            let mut y1 = 0.0;
            for e in lo..hi {
                let c0 = 2 * self.bcol_idx[e] as usize;
                let b = &self.blocks[e];
                let x0 = x[c0];
                let x1 = x[c0 + 1];
                y0 += b[0] * x0 + b[1] * x1;
                y1 += b[2] * x0 + b[3] * x1;
            }
            y[2 * br] = y0;
            y[2 * br + 1] = y1;
        }
    }

    /// Allocating convenience wrapper for [`BcsrMatrix::spmv_into`].
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }
}

impl LinearOperator for BcsrMatrix {
    fn dim(&self) -> usize {
        self.n_rows
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    fn apply_flops(&self) -> u64 {
        self.spmv_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn blocky(nb: usize) -> CsrMatrix {
        // Block-tridiagonal with full 2x2 blocks — the elasticity shape.
        let n = 2 * nb;
        let mut coo = CooMatrix::new(n, n);
        for b in 0..nb {
            for (db, w) in [(0i64, 4.0), (-1, -1.0), (1, -1.0)] {
                let c = b as i64 + db;
                if c < 0 || c >= nb as i64 {
                    continue;
                }
                let c = c as usize;
                for i in 0..2 {
                    for j in 0..2 {
                        let v = w + 0.1 * (i * 2 + j) as f64 + 0.01 * b as f64;
                        coo.push(2 * b + i, 2 * c + j, v).unwrap();
                    }
                }
            }
        }
        coo.to_csr()
    }

    fn partial_blocks(n: usize) -> CsrMatrix {
        // Scalar diagonal pattern: every block is quarter-full.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0 + i as f64).unwrap();
            if i + 2 < n {
                coo.push(i, i + 2, -0.5).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn odd_dims_are_rejected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        assert!(BcsrMatrix::try_from_csr(&coo.to_csr()).is_none());
    }

    #[test]
    fn round_trip_is_exact_on_full_blocks() {
        let a = blocky(9);
        let b = BcsrMatrix::try_from_csr(&a).unwrap();
        assert_eq!(b.fill_ratio(), 1.0);
        assert_eq!(b.to_csr().raw_parts(), a.raw_parts());
    }

    #[test]
    fn round_trip_is_exact_on_partial_blocks() {
        let a = partial_blocks(12);
        let b = BcsrMatrix::try_from_csr(&a).unwrap();
        assert!(b.fill_ratio() > 1.0);
        assert_eq!(b.to_csr().raw_parts(), a.raw_parts());
    }

    #[test]
    fn spmv_matches_csr_closely() {
        for a in [blocky(11), partial_blocks(16)] {
            let b = BcsrMatrix::try_from_csr(&a).unwrap();
            let x: Vec<f64> = (0..a.n_cols())
                .map(|i| ((i * 31 % 13) as f64) - 6.0)
                .collect();
            let want = a.spmv(&x);
            let got = b.spmv(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-12 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }
}
