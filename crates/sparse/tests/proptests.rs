//! Property-based tests for the sparse kernels, including the kernel-variant
//! equivalence contracts: the lane (SIMD) kernels are bit-identical to the
//! scalar reference wherever they preserve the reduction order, ULP-bounded
//! where they regroup it, and the SELL-C-σ / block-CSR storage formats
//! round-trip exactly and multiply within a pinned error bound.

use parfem_sparse::{
    coo::CooMatrix, csr::CsrMatrix, dense, scaling::DiagonalScaling, simd, BcsrMatrix, SellMatrix,
};
use proptest::prelude::*;

/// Pinned error bound for a reordered row reduction: a sum of `terms`
/// products reassociated in any order differs from the reference by at most
/// a few ULPs of the magnitude sum `Σ|aᵢⱼ xⱼ|` per term.
fn reduction_bound(a: &CsrMatrix, x: &[f64], r: usize) -> f64 {
    let (row_ptr, col_idx, values) = a.raw_parts();
    let lo = row_ptr[r];
    let hi = row_ptr[r + 1];
    let mag: f64 = (lo..hi).map(|e| (values[e] * x[col_idx[e]]).abs()).sum();
    4.0 * (hi - lo + 1) as f64 * f64::EPSILON * (mag + 1.0)
}

/// Strategy: a random list of triplets inside an `n x n` shape.
fn triplets(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, -100.0..100.0f64).prop_map(|(r, c, v)| (r, c, v)),
        0..max_len,
    )
}

/// Strategy: a random symmetric positive definite matrix built as
/// `B + B^T + shift*I` from random triplets.
fn spd_matrix(n: usize) -> impl Strategy<Value = CsrMatrix> {
    triplets(n, 4 * n).prop_map(move |ts| {
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in ts {
            coo.push(r, c, v).unwrap();
            coo.push(c, r, v).unwrap();
        }
        let b = coo.to_csr();
        // Diagonal shift beyond the Gershgorin radius makes it SPD.
        let radius = b
            .row_abs_sums()
            .into_iter()
            .fold(0.0_f64, f64::max)
            .max(1.0);
        let shift = CsrMatrix::from_diagonal(&vec![2.0 * radius; n]);
        shift.add_scaled(1.0, &b).unwrap()
    })
}

proptest! {
    #[test]
    fn coo_to_csr_preserves_sums(ts in triplets(12, 120)) {
        // The CSR entry (r, c) must equal the sum of all triplets at (r, c).
        let mut coo = CooMatrix::new(12, 12);
        let mut dense_ref = vec![0.0f64; 12 * 12];
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
            dense_ref[r * 12 + c] += v;
        }
        let csr = coo.to_csr();
        for r in 0..12 {
            for c in 0..12 {
                let got = csr.get(r, c);
                let want = dense_ref[r * 12 + c];
                prop_assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "mismatch at ({}, {}): {} vs {}", r, c, got, want);
            }
        }
    }

    #[test]
    fn csr_invariants_hold_after_conversion(ts in triplets(10, 80)) {
        let mut coo = CooMatrix::new(10, 10);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let csr = coo.to_csr();
        let (row_ptr, col_idx, values) = csr.raw_parts();
        prop_assert_eq!(row_ptr.len(), 11);
        prop_assert_eq!(row_ptr[0], 0);
        prop_assert_eq!(*row_ptr.last().unwrap(), values.len());
        for r in 0..10 {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                prop_assert!(w[0] < w[1], "columns not sorted in row {}", r);
            }
        }
        // Round-trip through from_raw_parts must succeed.
        prop_assert!(CsrMatrix::from_raw_parts(
            10, 10, row_ptr.to_vec(), col_idx.to_vec(), values.to_vec()).is_ok());
    }

    #[test]
    fn spmv_matches_dense_reference(ts in triplets(9, 60), x in prop::collection::vec(-10.0..10.0f64, 9)) {
        let mut coo = CooMatrix::new(9, 9);
        let mut dense_ref = vec![0.0f64; 81];
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
            dense_ref[r * 9 + c] += v;
        }
        let csr = coo.to_csr();
        let y = csr.spmv(&x);
        for r in 0..9 {
            let want: f64 = (0..9).map(|c| dense_ref[r * 9 + c] * x[c]).sum();
            prop_assert!((y[r] - want).abs() <= 1e-8 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn transpose_is_involutive(ts in triplets(8, 50)) {
        let mut coo = CooMatrix::new(8, 8);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let csr = coo.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn transpose_swaps_spmv_roles(ts in triplets(7, 40),
                                  x in prop::collection::vec(-5.0..5.0f64, 7),
                                  y in prop::collection::vec(-5.0..5.0f64, 7)) {
        // <A x, y> == <x, A^T y>
        let mut coo = CooMatrix::new(7, 7);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let lhs = dense::dot(&a.spmv(&x), &y);
        let rhs = dense::dot(&x, &a.transpose().spmv(&y));
        prop_assert!((lhs - rhs).abs() <= 1e-8 * (1.0 + lhs.abs()));
    }

    #[test]
    fn norm1_scaling_bounds_spectrum(a in spd_matrix(10)) {
        // After DKD scaling, lambda_max <= 1 (paper Eq. 12). The bound is on
        // the quadratic form, not the Gershgorin discs of the scaled matrix.
        let s = DiagonalScaling::from_matrix(&a).unwrap();
        let scaled = s.scale_matrix(&a);
        let lmax = parfem_sparse::gershgorin::power_iteration_lambda_max(&scaled, 20_000, 1e-13);
        prop_assert!(lmax <= 1.0 + 1e-8, "lambda_max {} > 1", lmax);
    }

    #[test]
    fn scaling_round_trip_preserves_rhs(a in spd_matrix(8),
                                        u in prop::collection::vec(-3.0..3.0f64, 8)) {
        // If f = K u, then with (A, b) = scale(K, f) and x = D^{-1} u we must
        // have A x = b. Verify via residual identity: A (D^{-1} u) - D f = 0.
        let f = a.spmv(&u);
        let (scaled, b, s) = parfem_sparse::scaling::scale_system(&a, &f).unwrap();
        // x = D^{-1} u: since scaled x should satisfy u = D x.
        let x: Vec<f64> = u.iter().zip(s.diagonal()).map(|(ui, di)| ui / di).collect();
        let ax = scaled.spmv(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() <= 1e-7 * (1.0 + bi.abs()),
                "residual component {} vs {}", axi, bi);
        }
    }

    #[test]
    fn ilu0_solves_spd_diagonally_dominant_well(a in spd_matrix(10),
                                                xe in prop::collection::vec(-2.0..2.0f64, 10)) {
        // Strong diagonal dominance makes ILU(0) an accurate solver: the
        // preconditioned residual must shrink substantially.
        let ilu = parfem_sparse::Ilu0::factorize(&a).unwrap();
        let b = a.spmv(&xe);
        let z = ilu.solve(&b);
        let az = a.spmv(&z);
        let num: f64 = az.iter().zip(&b).map(|(p, q)| (p - q).powi(2)).sum::<f64>().sqrt();
        let den: f64 = dense::norm2(&b).max(1e-12);
        prop_assert!(num / den < 0.5, "relative residual {}", num / den);
    }

    #[test]
    fn dense_kernels_are_consistent(x in prop::collection::vec(-10.0..10.0f64, 1..64),
                                    alpha in -4.0..4.0f64) {
        // norm2^2 == dot(x, x); axpy of alpha then -alpha is identity.
        let n2 = dense::norm2(&x);
        let d = dense::dot(&x, &x);
        prop_assert!((n2 * n2 - d).abs() <= 1e-9 * (1.0 + d.abs()));

        let mut y = x.clone();
        dense::axpy(alpha, &x, &mut y);
        dense::axpy(-alpha, &x, &mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn spmv_axpby_matches_unfused_reference(ts in triplets(16, 96),
                                            x in prop::collection::vec(-5.0..5.0f64, 16),
                                            y0 in prop::collection::vec(-5.0..5.0f64, 16),
                                            alpha in -3.0..3.0f64,
                                            beta in -3.0..3.0f64) {
        // The fused kernel computes `y = alpha*(A x) + beta*y` per row as
        // `alpha*acc + beta*y[r]`, exactly the unfused reference expression,
        // so the comparison is bit-for-bit.
        let mut coo = CooMatrix::new(16, 16);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();

        let mut fused = y0.clone();
        a.spmv_axpby(alpha, &x, beta, &mut fused);

        let mut t = vec![0.0; 16];
        a.spmv_into(&x, &mut t);
        let reference: Vec<f64> = t
            .iter()
            .zip(&y0)
            .map(|(ti, yi)| alpha * ti + beta * yi)
            .collect();
        prop_assert_eq!(fused, reference);
    }

    #[test]
    fn par_spmv_matches_sequential_bitwise(ts in triplets(24, 160),
                                           x in prop::collection::vec(-5.0..5.0f64, 24),
                                           threads in 1usize..5) {
        // Row partitioning never changes per-row arithmetic, so the
        // threaded product is bit-identical to the sequential one.
        let mut coo = CooMatrix::new(24, 24);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let mut seq = vec![0.0; 24];
        a.spmv_into(&x, &mut seq);
        let mut par = vec![0.0; 24];
        a.par_spmv_into(&x, &mut par, threads);
        prop_assert_eq!(par, seq);
    }
}

// Kernel-variant equivalence contracts (PR 7): every storage format and lane
// kernel is pinned against the scalar CSR reference — exactly where the
// reduction order is preserved, within `reduction_bound` where it is not.
proptest! {
    #[test]
    fn spmv_lanes_matches_scalar_bitwise(ts in triplets(17, 100),
                                         x in prop::collection::vec(-5.0..5.0f64, 17)) {
        // The two-row-unrolled lane SpMV keeps the verbatim row_dot
        // reduction, so it is bit-identical to the scalar path.
        let mut coo = CooMatrix::new(17, 17);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let mut scalar = vec![0.0; 17];
        a.spmv_into(&x, &mut scalar);
        let (row_ptr, col_idx, values) = a.raw_parts();
        let mut lanes = vec![0.0; 17];
        simd::spmv_lanes(row_ptr, col_idx, values, &x, &mut lanes);
        prop_assert_eq!(lanes, scalar);
    }

    #[test]
    fn sell_round_trips_csr_exactly(ts in triplets(19, 140),
                                    c in 1usize..9,
                                    sigma in 1usize..33) {
        // CSR -> SELL-C-sigma -> CSR is the identity, for any chunk height
        // and sorting window: padding and row permutation must both vanish.
        let mut coo = CooMatrix::new(19, 19);
        for &(r, c_, v) in &ts {
            coo.push(r, c_, v).unwrap();
        }
        let a = coo.to_csr();
        let sell = SellMatrix::from_csr(&a, c, sigma);
        prop_assert_eq!(sell.nnz(), a.nnz());
        prop_assert_eq!(sell.to_csr(), a);
    }

    #[test]
    fn sell_spmv_within_reduction_bound(ts in triplets(19, 140),
                                        x in prop::collection::vec(-5.0..5.0f64, 19),
                                        c in 1usize..9,
                                        sigma in 1usize..33) {
        // SELL accumulates each row sequentially in column order like CSR,
        // but padding entries contribute exact `+ 0.0 * x[pad]` terms, so
        // pin it within the reassociation bound rather than bit-for-bit.
        let mut coo = CooMatrix::new(19, 19);
        for &(r, c_, v) in &ts {
            coo.push(r, c_, v).unwrap();
        }
        let a = coo.to_csr();
        let mut scalar = vec![0.0; 19];
        a.spmv_into(&x, &mut scalar);
        let sell = SellMatrix::from_csr(&a, c, sigma);
        let got = sell.spmv(&x);
        for r in 0..19 {
            prop_assert!((got[r] - scalar[r]).abs() <= reduction_bound(&a, &x, r),
                "sell row {}: {} vs {}", r, got[r], scalar[r]);
        }
    }

    #[test]
    fn bcsr_round_trips_csr_exactly(ts in triplets(18, 120)) {
        // Even dimensions: 2x2 blocking must reconstruct the source exactly,
        // with fill-in zeros dropped via the structural mask.
        let mut coo = CooMatrix::new(18, 18);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let b = BcsrMatrix::try_from_csr(&a).expect("even dims must block");
        prop_assert_eq!(b.nnz(), a.nnz());
        prop_assert!(b.fill_ratio() >= 1.0 || a.nnz() == 0);
        prop_assert_eq!(b.to_csr(), a);
    }

    #[test]
    fn bcsr_spmv_within_reduction_bound(ts in triplets(18, 120),
                                        x in prop::collection::vec(-5.0..5.0f64, 18)) {
        // The 2x2 block kernel regroups each row reduction into block-column
        // order with fused fill-in zeros — ULP-bounded, not bit-identical.
        let mut coo = CooMatrix::new(18, 18);
        for &(r, c, v) in &ts {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let mut scalar = vec![0.0; 18];
        a.spmv_into(&x, &mut scalar);
        let b = BcsrMatrix::try_from_csr(&a).expect("even dims must block");
        let got = b.spmv(&x);
        for r in 0..18 {
            prop_assert!((got[r] - scalar[r]).abs() <= reduction_bound(&a, &x, r),
                "bcsr row {}: {} vs {}", r, got[r], scalar[r]);
        }
    }

    #[test]
    fn lane_dots_within_ulp_bound(w in prop::collection::vec(-5.0..5.0f64, 1..96),
                                  k in 1usize..7) {
        // dot_many_lanes uses a 4-lane accumulator tree per vector; bound
        // the reassociation error by the magnitude sum of the products.
        let vs: Vec<Vec<f64>> = (0..k)
            .map(|i| w.iter().map(|&x| (x * (i as f64 + 0.5)).sin()).collect())
            .collect();
        let mut out = vec![0.0; k];
        simd::dot_many_lanes(&w, &vs, &mut out);
        for (i, v) in vs.iter().enumerate() {
            let seq: f64 = w.iter().zip(v).map(|(a, b)| a * b).sum();
            let mag: f64 = w.iter().zip(v).map(|(a, b)| (a * b).abs()).sum();
            let bound = 4.0 * (w.len() + 1) as f64 * f64::EPSILON * (mag + 1.0);
            prop_assert!((out[i] - seq).abs() <= bound,
                "lane dot {}: {} vs {}", i, out[i], seq);
        }
    }

    #[test]
    fn lane_axpy_sweep_updates_bit_identically(w0 in prop::collection::vec(-5.0..5.0f64, 1..96),
                                               coeffs in prop::collection::vec(-2.0..2.0f64, 0..7)) {
        // The lane projection-subtraction sweep must update `w` bit-for-bit
        // like the scalar sweep (same 4s + tail vector grouping, same
        // left-associated per-element subtraction chain); only the fused
        // Σw² reduction is allowed to differ, within the lane-tree bound.
        let vs: Vec<Vec<f64>> = (0..coeffs.len())
            .map(|i| w0.iter().map(|&x| (x + i as f64).cos()).collect())
            .collect();
        let mut scalar_w = w0.clone();
        let scalar_sq =
            parfem_sparse::kernels::axpy_sweep_neg(&coeffs, &vs, &mut scalar_w);
        let mut lane_w = w0;
        let lane_sq = simd::axpy_sweep_neg_lanes(&coeffs, &vs, &mut lane_w);
        prop_assert_eq!(&lane_w, &scalar_w);
        let mag: f64 = scalar_w.iter().map(|&x| x * x).sum();
        let bound = 4.0 * (scalar_w.len() + 1) as f64 * f64::EPSILON * (mag + 1.0);
        prop_assert!((lane_sq - scalar_sq).abs() <= bound,
            "sq mismatch: {} vs {}", lane_sq, scalar_sq);
    }

    #[test]
    fn scale_into_matches_copy_then_scale_bitwise(x in prop::collection::vec(-10.0..10.0f64, 0..64),
                                                  alpha in -4.0..4.0f64) {
        // The fused normalization write must equal copy-then-scale exactly —
        // it is substituted on the solver hot path under that contract.
        let mut reference = x.clone();
        dense::scale(alpha, &mut reference);
        let mut fused = vec![0.0; x.len()];
        dense::scale_into(alpha, &x, &mut fused);
        prop_assert_eq!(fused, reference);
    }
}

/// Dense Gaussian elimination with partial pivoting — the reference the
/// sparse direct solver is pinned against.
fn dense_lu_solve(n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut m = a.to_vec();
    let mut x = b.to_vec();
    for k in 0..n {
        let piv = (k..n)
            .max_by(|&r, &s| m[r * n + k].abs().total_cmp(&m[s * n + k].abs()))
            .unwrap();
        if piv != k {
            for c in 0..n {
                m.swap(k * n + c, piv * n + c);
            }
            x.swap(k, piv);
        }
        let d = m[k * n + k];
        assert!(d.abs() > 1e-300, "dense LU hit a zero pivot");
        for r in k + 1..n {
            let f = m[r * n + k] / d;
            if f == 0.0 {
                continue;
            }
            for c in k..n {
                m[r * n + c] -= f * m[k * n + c];
            }
            x[r] -= f * x[k];
        }
    }
    for k in (0..n).rev() {
        let mut s = x[k];
        for c in k + 1..n {
            s -= m[k * n + c] * x[c];
        }
        x[k] = s / m[k * n + k];
    }
    x
}

/// Strategy: a free-free weighted chain Laplacian with `extra` random extra
/// edges — symmetric PSD with exactly the constant vector in its null space
/// (the chain keeps the graph connected), the scalar model of a floating
/// subdomain (Eq. 45's ILU(0) breakdown case).
fn floating_laplacian(n: usize) -> impl Strategy<Value = CsrMatrix> {
    (
        prop::collection::vec(0.1..10.0f64, n - 1),
        prop::collection::vec((0..n, 0..n, 0.1..5.0f64), 0..2 * n),
    )
        .prop_map(move |(chain, extra)| {
            let mut coo = CooMatrix::new(n, n);
            let edge = |i: usize, j: usize, w: f64, coo: &mut CooMatrix| {
                coo.push(i, i, w).unwrap();
                coo.push(j, j, w).unwrap();
                coo.push(i, j, -w).unwrap();
                coo.push(j, i, -w).unwrap();
            };
            for (i, &w) in chain.iter().enumerate() {
                edge(i, i + 1, w, &mut coo);
            }
            for &(i, j, w) in &extra {
                if i != j {
                    edge(i, j, w, &mut coo);
                }
            }
            coo.to_csr()
        })
}

// Sparse-direct contracts (PR 10): the fill-reducing profile LDL^T solver is
// pinned against dense LU on well-conditioned subdomain-sized matrices, and
// its pivot-skipping pseudo-inverse solves range RHS on floating (singular)
// operators exactly where ILU(0) breaks down.
proptest! {
    #[test]
    fn direct_matches_dense_lu(a in spd_matrix(10),
                               xe in prop::collection::vec(-2.0..2.0f64, 10)) {
        use parfem_sparse::direct::SparseDirect;
        let b = a.spmv(&xe);
        let factor = SparseDirect::factorize(&a, parfem_sparse::skyline::DEFAULT_PIVOT_TOL);
        prop_assert_eq!(factor.n_skipped(), 0);
        let mut z = b.clone();
        factor.solve_in_place(&mut z);
        let reference = dense_lu_solve(10, &a.to_dense(), &b);
        let scale = reference.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (zi, ri) in z.iter().zip(&reference) {
            prop_assert!((zi - ri).abs() <= 1e-12 * scale,
                "direct {} vs dense LU {}", zi, ri);
        }
    }

    #[test]
    fn direct_solve_is_deterministic(a in spd_matrix(9),
                                     b in prop::collection::vec(-3.0..3.0f64, 9)) {
        use parfem_sparse::direct::SparseDirect;
        let tol = parfem_sparse::skyline::DEFAULT_PIVOT_TOL;
        let f1 = SparseDirect::factorize(&a, tol);
        let f2 = SparseDirect::factorize(&a, tol);
        prop_assert_eq!(f1.permutation(), f2.permutation());
        let mut z1 = b.clone();
        let mut z2 = b;
        f1.solve_in_place(&mut z1);
        f2.solve_in_place(&mut z2);
        prop_assert_eq!(z1, z2);
    }

    #[test]
    fn direct_solves_floating_operators_on_range_rhs(a in floating_laplacian(11),
                                                     xe in prop::collection::vec(-2.0..2.0f64, 11)) {
        use parfem_sparse::direct::SparseDirect;
        // The constant mode is in the null space, so A xe is in the range.
        let b = a.spmv(&xe);
        let factor = SparseDirect::factorize(&a, parfem_sparse::skyline::DEFAULT_PIVOT_TOL);
        prop_assert_eq!(factor.n_skipped(), 1, "chain Laplacian has one null mode");
        let mut z = b.clone();
        factor.solve_in_place(&mut z);
        let az = a.spmv(&z);
        let bnorm = dense::norm2(&b).max(1e-12);
        for (p, q) in az.iter().zip(&b) {
            prop_assert!((p - q).abs() <= 1e-9 * bnorm,
                "range residual {} vs {}", p, q);
        }
    }
}
