//! A counting global allocator for measuring solver-path allocations.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every
//! allocation (calls and bytes) in process-global atomics. It is *opt-in*:
//! a binary or test installs it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: parfem_trace::alloc::CountingAlloc =
//!     parfem_trace::alloc::CountingAlloc;
//! ```
//!
//! and the rest of the stack can then read [`stats`] deltas around a solve.
//! When the allocator is *not* installed, [`is_counting`] stays `false` and
//! the solve drivers skip emitting `alloc_bytes` / `alloc_count` fields, so
//! traces never carry misleading zeros.
//!
//! Deallocations are deliberately not subtracted: the counters measure
//! allocator *traffic* (how often the hot path hits `malloc`), which is the
//! quantity the zero-allocation Krylov workspace is designed to eliminate.
// The one unsafe impl in the crate: forwarding `GlobalAlloc` to `System`
// around two atomic bumps. Kept to this module; see lib.rs.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A `#[global_allocator]` that counts allocations into process globals.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System`, which upholds the `GlobalAlloc`
// contract; the additional atomic counter updates have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is new allocator traffic of the new size.
        note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[inline]
fn note_alloc(bytes: usize) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Cumulative allocation counters at one instant; subtract two snapshots to
/// measure a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Number of allocation calls (`alloc`, `alloc_zeroed`, `realloc`).
    pub count: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

impl AllocStats {
    /// Counters accumulated since the (earlier) snapshot `start`.
    #[must_use]
    pub fn since(self, start: AllocStats) -> AllocStats {
        AllocStats {
            count: self.count.saturating_sub(start.count),
            bytes: self.bytes.saturating_sub(start.bytes),
        }
    }
}

/// Current cumulative counters (zeros unless [`CountingAlloc`] is installed).
pub fn stats() -> AllocStats {
    AllocStats {
        count: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether a [`CountingAlloc`] is installed in this process (detected on its
/// first allocation, which in practice precedes any solve).
pub fn is_counting() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_and_saturates() {
        let a = AllocStats {
            count: 10,
            bytes: 100,
        };
        let b = AllocStats {
            count: 4,
            bytes: 40,
        };
        assert_eq!(
            a.since(b),
            AllocStats {
                count: 6,
                bytes: 60
            }
        );
        assert_eq!(b.since(a), AllocStats::default());
    }

    #[test]
    fn stats_without_installation_stay_zero_or_monotone() {
        // This test binary does not install the allocator, so counters can
        // only be zero; if another harness installs it, they are monotone.
        let s1 = stats();
        let _v = vec![0u8; 1024];
        let s2 = stats();
        assert!(s2.count >= s1.count);
        assert!(s2.bytes >= s1.bytes);
    }
}
