//! The event model: one flat, timestamped record per observable fact.

/// A field value. Events carry a small flat bag of `(key, Value)` pairs;
/// keeping the variants to unsigned integers, floats, and strings keeps the
/// JSON codec trivial and round-trip exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, byte totals, iteration indices).
    U64(u64),
    /// A floating-point number (residuals, times). Non-finite values are
    /// serialized as JSON `null` and parse back as NaN.
    F64(f64),
    /// A short string (preconditioner names, stop reasons).
    Str(String),
}

impl Value {
    /// The value as `u64` if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`; integers widen losslessly enough for reporting.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// What an event records. The discriminant maps 1:1 onto the `kind` JSON key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A named phase opens on this rank (`span_begin`).
    SpanBegin,
    /// The most recent open phase with this name closes (`span_end`).
    SpanEnd,
    /// A point-in-time annotation with arbitrary fields (`instant`).
    Instant,
    /// One point-to-point send; fields `peer`, `bytes` (`send`).
    Send,
    /// One point-to-point receive; fields `peer`, `bytes` (`recv`).
    Recv,
    /// One all-reduce this rank took part in; field `bytes` (`allreduce`).
    Allreduce,
    /// One barrier this rank took part in (`barrier`).
    Barrier,
    /// One logical neighbour exchange (the paper's `⊕Σ` interface sum)
    /// (`exchange`).
    Exchange,
    /// One solver iteration; fields `iter`, `rel_res`, `restart`, `degree`,
    /// and per-iteration communication deltas (`iter`).
    Iter,
    /// An accumulated hot-path counter flushed at rank end; field `value`
    /// (`counter`).
    Counter,
    /// Emitted once when a rank's closure returns: final virtual clock plus
    /// the rank's full communication statistics (`rank_end`).
    RankEnd,
}

impl EventKind {
    /// Stable wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "instant",
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Allreduce => "allreduce",
            EventKind::Barrier => "barrier",
            EventKind::Exchange => "exchange",
            EventKind::Iter => "iter",
            EventKind::Counter => "counter",
            EventKind::RankEnd => "rank_end",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "span_begin" => EventKind::SpanBegin,
            "span_end" => EventKind::SpanEnd,
            "instant" => EventKind::Instant,
            "send" => EventKind::Send,
            "recv" => EventKind::Recv,
            "allreduce" => EventKind::Allreduce,
            "barrier" => EventKind::Barrier,
            "exchange" => EventKind::Exchange,
            "iter" => EventKind::Iter,
            "counter" => EventKind::Counter,
            "rank_end" => EventKind::RankEnd,
            _ => return None,
        })
    }
}

/// One structured trace record.
///
/// Schema (JSON-Lines object keys, see [`crate::jsonl`]):
///
/// | key    | meaning                                                     |
/// |--------|-------------------------------------------------------------|
/// | `rank` | emitting rank, or `null` for host-side (driver) events      |
/// | `tw`   | wall-clock seconds since the sink was created               |
/// | `tv`   | virtual seconds on the emitting rank's machine-model clock  |
/// | `kind` | one of the [`EventKind`] wire names                         |
/// | `name` | span/counter/annotation name (omitted when empty)           |
/// | *      | every entry of `fields`, flattened into the object          |
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emitting rank; `None` for host-side events (assembly, gather, CLI).
    pub rank: Option<usize>,
    /// Wall-clock seconds since the sink's epoch.
    pub t_wall: f64,
    /// Virtual machine-model seconds on the emitting rank (0 for host).
    pub t_virt: f64,
    /// What happened.
    pub kind: EventKind,
    /// Span/counter/annotation name; empty for pure comm events.
    pub name: String,
    /// Flat extra fields.
    pub fields: Vec<(String, Value)>,
}

impl TraceEvent {
    /// Looks up a field as `u64`.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(Value::as_u64)
    }

    /// Looks up a field as `f64` (integers widen).
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(Value::as_f64)
    }

    /// Looks up a field as `&str`.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(Value::as_str)
    }

    /// Looks up a raw field value.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            EventKind::SpanBegin,
            EventKind::SpanEnd,
            EventKind::Instant,
            EventKind::Send,
            EventKind::Recv,
            EventKind::Allreduce,
            EventKind::Barrier,
            EventKind::Exchange,
            EventKind::Iter,
            EventKind::Counter,
            EventKind::RankEnd,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn field_lookup_by_type() {
        let ev = TraceEvent {
            rank: Some(1),
            t_wall: 0.5,
            t_virt: 0.25,
            kind: EventKind::Iter,
            name: String::new(),
            fields: vec![
                ("iter".into(), Value::U64(3)),
                ("rel_res".into(), Value::F64(1e-6)),
                ("precond".into(), Value::Str("gls".into())),
            ],
        };
        assert_eq!(ev.u64("iter"), Some(3));
        assert_eq!(ev.f64("iter"), Some(3.0));
        assert_eq!(ev.f64("rel_res"), Some(1e-6));
        assert_eq!(ev.str("precond"), Some("gls"));
        assert_eq!(ev.u64("missing"), None);
    }
}
