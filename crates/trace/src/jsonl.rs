//! Hand-rolled JSON-Lines codec for [`TraceEvent`] streams.
//!
//! One JSON object per line. Reserved keys: `rank` (integer or `null`),
//! `tw`, `tv` (numbers), `kind` (string), `name` (string, omitted when
//! empty). Every other key/value pair is an event field. Values are limited
//! to non-negative integers, floats, strings, and `null` (non-finite float);
//! Rust's shortest-round-trip float formatting makes encode → parse exact
//! for finite values.

use crate::event::{EventKind, TraceEvent, Value};
use std::fmt::Write as _;

/// Encodes one event as a single JSON line (no trailing newline).
pub fn encode(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    match ev.rank {
        Some(r) => {
            let _ = write!(out, "\"rank\":{r}");
        }
        None => out.push_str("\"rank\":null"),
    }
    let _ = write!(out, ",\"tw\":");
    push_f64(&mut out, ev.t_wall);
    let _ = write!(out, ",\"tv\":");
    push_f64(&mut out, ev.t_virt);
    let _ = write!(out, ",\"kind\":\"{}\"", ev.kind.as_str());
    if !ev.name.is_empty() {
        out.push_str(",\"name\":");
        push_str(&mut out, &ev.name);
    }
    for (k, v) in &ev.fields {
        out.push(',');
        push_str(&mut out, k);
        out.push(':');
        match v {
            Value::U64(u) => {
                let _ = write!(out, "{u}");
            }
            Value::F64(f) => push_f64(&mut out, *f),
            Value::Str(s) => push_str(&mut out, s),
        }
    }
    out.push('}');
    out
}

/// Encodes a whole event stream as JSON-Lines text (one `\n` per event).
pub fn encode_all(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&encode(ev));
        out.push('\n');
    }
    out
}

/// Encodes `s` as one quoted JSON string literal (the crate's canonical
/// escaping, shared with the JSONL codec). Used by the other JSON-emitting
/// exporters ([`crate::chrome`], [`crate::CritPath::to_json`]).
pub fn encode_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str(&mut out, s);
    out
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 is shortest-round-trip, so parse() recovers the bits.
        let _ = write!(out, "{v}");
        // Bare integers like `3` must still parse as f64 — fine for str::parse.
    } else {
        out.push_str("null");
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: the offending line (1-based) and a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON line back into an event.
pub fn decode(line: &str) -> Result<TraceEvent, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut rank: Option<usize> = None;
    let mut t_wall = 0.0;
    let mut t_virt = 0.0;
    let mut kind: Option<EventKind> = None;
    let mut name = String::new();
    let mut fields = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.parse_value()?;
        match key.as_str() {
            "rank" => {
                rank = match value {
                    Json::Null => None,
                    Json::U64(u) => Some(u as usize),
                    other => return Err(format!("rank must be integer or null, got {other:?}")),
                }
            }
            "tw" => t_wall = value.to_f64().ok_or("tw must be a number")?,
            "tv" => t_virt = value.to_f64().ok_or("tv must be a number")?,
            "kind" => {
                let s = value.into_string().ok_or("kind must be a string")?;
                kind = Some(EventKind::parse(&s).ok_or_else(|| format!("unknown kind {s:?}"))?);
            }
            "name" => name = value.into_string().ok_or("name must be a string")?,
            _ => fields.push((
                key,
                match value {
                    Json::U64(u) => Value::U64(u),
                    Json::F64(f) => Value::F64(f),
                    Json::Str(s) => Value::Str(s),
                    Json::Null => Value::F64(f64::NAN),
                },
            )),
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.skip_ws();
            p.expect(b'}')?;
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after object".to_string());
    }
    Ok(TraceEvent {
        rank,
        t_wall,
        t_virt,
        kind: kind.ok_or("missing kind")?,
        name,
        fields,
    })
}

/// Parses a JSON-Lines document (blank lines ignored) into events.
pub fn decode_all(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(decode(line).map_err(|reason| ParseError {
            line: i + 1,
            reason,
        })?);
    }
    Ok(events)
}

#[derive(Debug)]
enum Json {
    Null,
    U64(u64),
    F64(f64),
    Str(String),
}

impl Json {
    fn to_f64(&self) -> Option<f64> {
        match self {
            Json::U64(u) => Some(*u as f64),
            Json::F64(f) => Some(*f),
            Json::Null => Some(f64::NAN),
            Json::Str(_) => None,
        }
    }

    fn into_string(self) -> Option<String> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (we operate on byte offsets).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of line")? {
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b'n' => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err("bad literal".to_string())
                }
            }
            _ => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number".to_string())?;
                if text.is_empty() {
                    return Err(format!("expected value at byte {start}"));
                }
                if text.bytes().all(|b| b.is_ascii_digit()) {
                    // Huge all-digit literals (e.g. the Display form of
                    // f64::MAX) overflow u64; fall back to f64.
                    text.parse::<u64>().map(Json::U64).or_else(|_| {
                        text.parse::<f64>()
                            .map(Json::F64)
                            .map_err(|e| format!("bad number {text:?}: {e}"))
                    })
                } else {
                    text.parse::<f64>()
                        .map(Json::F64)
                        .map_err(|e| format!("bad number {text:?}: {e}"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            rank: Some(2),
            t_wall: 0.001953125,
            t_virt: 1.25e-4,
            kind: EventKind::Send,
            name: String::new(),
            fields: vec![
                ("peer".into(), Value::U64(3)),
                ("bytes".into(), Value::U64(640)),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let ev = sample();
        let line = encode(&ev);
        assert_eq!(decode(&line).unwrap(), ev);
    }

    #[test]
    fn host_events_have_null_rank() {
        let mut ev = sample();
        ev.rank = None;
        ev.kind = EventKind::SpanBegin;
        ev.name = "assembly".into();
        ev.fields.clear();
        let line = encode(&ev);
        assert!(line.contains("\"rank\":null"));
        assert_eq!(decode(&line).unwrap(), ev);
    }

    #[test]
    #[allow(clippy::excessive_precision)] // a value that rounds on parse is the point
    fn awkward_floats_round_trip() {
        for v in [
            0.1,
            1.0 / 3.0,
            6.62607015e-34,
            1.7976931348623157e308,
            5e-324,
            -0.0,
            123456789.123456789,
        ] {
            let ev = TraceEvent {
                rank: Some(0),
                t_wall: v,
                t_virt: -v,
                kind: EventKind::Instant,
                name: "f".into(),
                fields: vec![("x".into(), Value::F64(v))],
            };
            let back = decode(&encode(&ev)).unwrap();
            assert_eq!(back.t_wall.to_bits(), v.to_bits(), "tw for {v}");
            assert_eq!(back.f64("x").unwrap().to_bits(), v.to_bits(), "x for {v}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let ev = TraceEvent {
            rank: None,
            t_wall: 0.0,
            t_virt: 0.0,
            kind: EventKind::Instant,
            name: "we\"ird\\na–me\n\t\u{1}".into(),
            fields: vec![("s".into(), Value::Str("α β".into()))],
        };
        assert_eq!(decode(&encode(&ev)).unwrap(), ev);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let ev = TraceEvent {
            rank: Some(0),
            t_wall: 0.0,
            t_virt: 0.0,
            kind: EventKind::Iter,
            name: String::new(),
            fields: vec![("rel_res".into(), Value::F64(f64::INFINITY))],
        };
        let line = encode(&ev);
        assert!(line.contains("\"rel_res\":null"));
        assert!(decode(&line).unwrap().f64("rel_res").unwrap().is_nan());
    }

    #[test]
    fn decode_all_skips_blank_lines_and_numbers_errors() {
        let ev = sample();
        let text = format!("{}\n\n{}\n", encode(&ev), encode(&ev));
        assert_eq!(decode_all(&text).unwrap().len(), 2);

        let bad = format!("{}\nnot json\n", encode(&ev));
        let err = decode_all(&bad).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(decode("{\"rank\":0,\"tw\":0,\"tv\":0,\"kind\":\"warp\"}").is_err());
    }
}
