//! The in-memory aggregator: rolls a flat event stream back up into
//! per-rank phase breakdowns, communication counts, and a convergence
//! record — everything the `--profile` table and `parfem report` print.

use crate::event::{EventKind, TraceEvent};
use crate::metrics::Histogram;

/// Communication totals for one rank, reconstructed by *counting events*
/// (not by trusting any summary), so they can be cross-checked against the
/// live `CommStats` of the same run. `flops` is the exception: there is no
/// per-flop event, so it comes from the `rank_end` summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommCounts {
    /// Point-to-point messages sent.
    pub sends: u64,
    /// Bytes sent point-to-point.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub recvs: u64,
    /// Bytes received point-to-point.
    pub bytes_received: u64,
    /// All-reduce operations participated in.
    pub allreduces: u64,
    /// Bytes contributed to all-reduces.
    pub allreduce_bytes: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// Logical neighbour exchanges (interface sums / halo updates).
    pub neighbor_exchanges: u64,
    /// Floating-point work charged to the machine model.
    pub flops: u64,
}

impl CommCounts {
    /// Element-wise sum.
    pub fn merged(&self, other: &CommCounts) -> CommCounts {
        CommCounts {
            sends: self.sends + other.sends,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            recvs: self.recvs + other.recvs,
            bytes_received: self.bytes_received + other.bytes_received,
            allreduces: self.allreduces + other.allreduces,
            allreduce_bytes: self.allreduce_bytes + other.allreduce_bytes,
            barriers: self.barriers + other.barriers,
            neighbor_exchanges: self.neighbor_exchanges + other.neighbor_exchanges,
            flops: self.flops + other.flops,
        }
    }
}

/// Accumulated time in one named phase on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTotals {
    /// Phase name (`partition`, `assembly`, `scaling`, `precond-build`,
    /// `fgmres`, `gather`, …).
    pub name: String,
    /// Total wall-clock seconds inside the phase.
    pub wall_s: f64,
    /// Total virtual (machine-model) seconds inside the phase.
    pub virt_s: f64,
    /// How many begin/end pairs were observed.
    pub count: u64,
    /// Virtual time at which the phase first opened (for timeline layout).
    pub first_open_virt: f64,
    /// Virtual time at which the phase last closed.
    pub last_close_virt: f64,
}

/// Everything reconstructed for one rank.
#[derive(Debug, Clone)]
pub struct RankSummary {
    /// The rank.
    pub rank: usize,
    /// Phase totals, in order of first appearance.
    pub phases: Vec<PhaseTotals>,
    /// Event-counted communication totals.
    pub comm: CommCounts,
    /// Final virtual clock (from `rank_end`; falls back to the max event
    /// timestamp when the stream was truncated).
    pub final_virt: f64,
    /// Hot-path counters flushed at rank end (`spmv_calls`, `spmv_rows`,
    /// `precond_applies`, …).
    pub counters: Vec<(String, u64)>,
    /// Per-message payload-size histogram, when the stream carries one.
    pub msg_bytes: Option<Histogram>,
}

/// One solver iteration as recorded by rank 0.
#[derive(Debug, Clone, PartialEq)]
pub struct IterRecord {
    /// Global iteration index (1-based, matching the residual history).
    pub iter: u64,
    /// Relative residual after this iteration.
    pub rel_res: f64,
    /// Index within the current restart cycle.
    pub restart_index: u64,
    /// Restart cycle number.
    pub cycle: u64,
    /// Active preconditioner degree (escalating schedules vary this).
    pub degree: u64,
    /// Neighbour exchanges performed during this iteration.
    pub exchanges: u64,
    /// All-reduces performed during this iteration.
    pub allreduces: u64,
    /// Virtual time at the end of the iteration.
    pub t_virt: f64,
}

/// The end-of-solve summary the driver stamps on the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveSummary {
    /// Whether the solve converged.
    pub converged: bool,
    /// Total iterations.
    pub iterations: u64,
    /// Restart cycles used.
    pub restarts: u64,
    /// Final relative residual.
    pub final_rel_res: f64,
    /// Modeled (virtual) time of the whole solve.
    pub modeled_time: f64,
    /// Preconditioner name.
    pub precond: String,
    /// Solver variant (`edd-basic`, `edd-enhanced`, `rdd`, …).
    pub variant: String,
    /// Whether the nonblocking overlapped interface exchange was enabled.
    pub overlap: bool,
    /// Allocation calls during the solve, when the run was instrumented
    /// with [`crate::alloc::CountingAlloc`] (absent otherwise).
    pub alloc_count: Option<u64>,
    /// Bytes requested during the solve, when instrumented.
    pub alloc_bytes: Option<u64>,
}

/// A recorded trace rolled up for reporting.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Host-side (driver) phases: partition, assembly, gather.
    pub host_phases: Vec<PhaseTotals>,
    /// Per-rank summaries, sorted by rank.
    pub ranks: Vec<RankSummary>,
    /// Rank-0 per-iteration records, in order.
    pub iters: Vec<IterRecord>,
    /// End-of-solve summary, when present.
    pub solve: Option<SolveSummary>,
}

#[derive(Default)]
struct RankAcc {
    phases: Vec<PhaseTotals>,
    open: Vec<(String, f64, f64)>, // (name, wall at begin, virt at begin)
    comm: CommCounts,
    final_virt: f64,
    max_seen_virt: f64,
    counters: Vec<(String, u64)>,
    msg_bytes: Option<Histogram>,
    saw_rank_end: bool,
}

impl RankAcc {
    fn phase_entry(&mut self, name: &str, open_virt: f64) -> &mut PhaseTotals {
        if let Some(i) = self.phases.iter().position(|p| p.name == name) {
            &mut self.phases[i]
        } else {
            self.phases.push(PhaseTotals {
                name: name.to_string(),
                wall_s: 0.0,
                virt_s: 0.0,
                count: 0,
                first_open_virt: open_virt,
                last_close_virt: open_virt,
            });
            self.phases.last_mut().unwrap()
        }
    }

    fn apply(&mut self, ev: &TraceEvent) {
        self.max_seen_virt = self.max_seen_virt.max(ev.t_virt);
        match ev.kind {
            EventKind::SpanBegin => {
                self.phase_entry(&ev.name, ev.t_virt);
                self.open.push((ev.name.clone(), ev.t_wall, ev.t_virt));
            }
            EventKind::SpanEnd => {
                // Close the most recent matching open span; tolerate strays.
                if let Some(i) = self.open.iter().rposition(|(n, _, _)| *n == ev.name) {
                    let (name, w0, v0) = self.open.remove(i);
                    let entry = self.phase_entry(&name, v0);
                    entry.wall_s += (ev.t_wall - w0).max(0.0);
                    entry.virt_s += (ev.t_virt - v0).max(0.0);
                    entry.count += 1;
                    entry.last_close_virt = entry.last_close_virt.max(ev.t_virt);
                }
            }
            EventKind::Send => {
                self.comm.sends += 1;
                self.comm.bytes_sent += ev.u64("bytes").unwrap_or(0);
            }
            EventKind::Recv => {
                self.comm.recvs += 1;
                self.comm.bytes_received += ev.u64("bytes").unwrap_or(0);
            }
            EventKind::Allreduce => {
                self.comm.allreduces += 1;
                self.comm.allreduce_bytes += ev.u64("bytes").unwrap_or(0);
            }
            EventKind::Barrier => self.comm.barriers += 1,
            EventKind::Exchange => self.comm.neighbor_exchanges += 1,
            EventKind::Counter => {
                let value = ev.u64("value").unwrap_or(0);
                if let Some(e) = self.counters.iter_mut().find(|(k, _)| *k == ev.name) {
                    e.1 += value;
                } else {
                    self.counters.push((ev.name.clone(), value));
                }
            }
            EventKind::RankEnd => {
                self.saw_rank_end = true;
                self.final_virt = ev.f64("t_virt_final").unwrap_or(ev.t_virt);
                self.comm.flops += ev.u64("flops").unwrap_or(0);
                if ev.field("count").is_some() {
                    self.msg_bytes = Histogram::from_fields(&ev.fields);
                }
            }
            EventKind::Instant | EventKind::Iter => {}
        }
    }
}

impl TraceReport {
    /// Builds the report from an event stream (any order; events are
    /// bucketed per rank and spans matched within each rank).
    pub fn from_events(events: &[TraceEvent]) -> TraceReport {
        let mut host = RankAcc::default();
        let mut ranks: Vec<(usize, RankAcc)> = Vec::new();
        let mut iters = Vec::new();
        let mut solve = None;

        for ev in events {
            let acc = match ev.rank {
                None => &mut host,
                Some(r) => {
                    if let Some(i) = ranks.iter().position(|(rank, _)| *rank == r) {
                        &mut ranks[i].1
                    } else {
                        ranks.push((r, RankAcc::default()));
                        &mut ranks.last_mut().unwrap().1
                    }
                }
            };
            acc.apply(ev);

            match ev.kind {
                EventKind::Iter if ev.rank == Some(0) => iters.push(IterRecord {
                    iter: ev.u64("iter").unwrap_or(0),
                    rel_res: ev.f64("rel_res").unwrap_or(f64::NAN),
                    restart_index: ev.u64("restart_index").unwrap_or(0),
                    cycle: ev.u64("cycle").unwrap_or(0),
                    degree: ev.u64("degree").unwrap_or(0),
                    exchanges: ev.u64("exchanges").unwrap_or(0),
                    allreduces: ev.u64("allreduces").unwrap_or(0),
                    t_virt: ev.t_virt,
                }),
                EventKind::Instant if ev.name == "solve_summary" => {
                    solve = Some(SolveSummary {
                        converged: ev.u64("converged").unwrap_or(0) != 0,
                        iterations: ev.u64("iterations").unwrap_or(0),
                        restarts: ev.u64("restarts").unwrap_or(0),
                        final_rel_res: ev.f64("final_rel_res").unwrap_or(f64::NAN),
                        modeled_time: ev.f64("modeled_time").unwrap_or(f64::NAN),
                        precond: ev.str("precond").unwrap_or("?").to_string(),
                        variant: ev.str("variant").unwrap_or("?").to_string(),
                        overlap: ev.u64("overlap").unwrap_or(0) != 0,
                        alloc_count: ev.u64("alloc_count"),
                        alloc_bytes: ev.u64("alloc_bytes"),
                    });
                }
                _ => {}
            }
        }

        iters.sort_by_key(|r| r.iter);
        ranks.sort_by_key(|(r, _)| *r);
        let ranks = ranks
            .into_iter()
            .map(|(rank, acc)| RankSummary {
                rank,
                final_virt: if acc.saw_rank_end {
                    acc.final_virt
                } else {
                    acc.max_seen_virt
                },
                phases: acc.phases,
                comm: acc.comm,
                counters: acc.counters,
                msg_bytes: acc.msg_bytes,
            })
            .collect();
        TraceReport {
            host_phases: host.phases,
            ranks,
            iters,
            solve,
        }
    }

    /// Communication totals summed over every rank.
    pub fn comm_totals(&self) -> CommCounts {
        self.ranks
            .iter()
            .fold(CommCounts::default(), |acc, r| acc.merged(&r.comm))
    }

    /// Number of ranks that emitted events.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// The largest final virtual clock over all ranks (the modeled make-span).
    pub fn makespan_virt(&self) -> f64 {
        self.ranks.iter().fold(0.0f64, |m, r| m.max(r.final_virt))
    }

    /// Per-iteration averages of (neighbour exchanges, all-reduces) over the
    /// recorded iteration events — the quantities in the paper's Table 1.
    pub fn per_iteration_comm(&self) -> Option<(f64, f64)> {
        if self.iters.is_empty() {
            return None;
        }
        let n = self.iters.len() as f64;
        let ex: u64 = self.iters.iter().map(|r| r.exchanges).sum();
        let ar: u64 = self.iters.iter().map(|r| r.allreduces).sum();
        Some((ex as f64 / n, ar as f64 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn ev(
        rank: Option<usize>,
        t: f64,
        kind: EventKind,
        name: &str,
        fields: Vec<(String, Value)>,
    ) -> TraceEvent {
        TraceEvent {
            rank,
            t_wall: t,
            t_virt: t,
            kind,
            name: name.to_string(),
            fields,
        }
    }

    #[test]
    fn spans_accumulate_per_rank_and_host() {
        let events = vec![
            ev(None, 0.0, EventKind::SpanBegin, "assembly", vec![]),
            ev(None, 2.0, EventKind::SpanEnd, "assembly", vec![]),
            ev(Some(0), 0.0, EventKind::SpanBegin, "fgmres", vec![]),
            ev(Some(0), 3.0, EventKind::SpanEnd, "fgmres", vec![]),
            ev(Some(0), 3.0, EventKind::SpanBegin, "fgmres", vec![]),
            ev(Some(0), 4.0, EventKind::SpanEnd, "fgmres", vec![]),
        ];
        let report = TraceReport::from_events(&events);
        assert_eq!(report.host_phases.len(), 1);
        assert_eq!(report.host_phases[0].name, "assembly");
        assert!((report.host_phases[0].wall_s - 2.0).abs() < 1e-12);
        let fg = &report.ranks[0].phases[0];
        assert_eq!(fg.count, 2);
        assert!((fg.virt_s - 4.0).abs() < 1e-12);
        assert!((fg.first_open_virt - 0.0).abs() < 1e-12);
        assert!((fg.last_close_virt - 4.0).abs() < 1e-12);
    }

    #[test]
    fn comm_events_are_counted_not_trusted() {
        let events = vec![
            ev(
                Some(1),
                0.1,
                EventKind::Send,
                "",
                vec![
                    ("peer".into(), 0usize.into()),
                    ("bytes".into(), 64u64.into()),
                ],
            ),
            ev(
                Some(1),
                0.2,
                EventKind::Recv,
                "",
                vec![
                    ("peer".into(), 0usize.into()),
                    ("bytes".into(), 32u64.into()),
                ],
            ),
            ev(
                Some(1),
                0.3,
                EventKind::Allreduce,
                "",
                vec![("bytes".into(), 8u64.into())],
            ),
            ev(Some(1), 0.4, EventKind::Exchange, "", vec![]),
            ev(Some(1), 0.5, EventKind::Barrier, "", vec![]),
            ev(
                Some(1),
                0.6,
                EventKind::RankEnd,
                "",
                vec![
                    ("flops".into(), 1234u64.into()),
                    ("t_virt_final".into(), 0.75.into()),
                ],
            ),
        ];
        let report = TraceReport::from_events(&events);
        let r = &report.ranks[0];
        assert_eq!(r.rank, 1);
        assert_eq!(
            r.comm,
            CommCounts {
                sends: 1,
                bytes_sent: 64,
                recvs: 1,
                bytes_received: 32,
                allreduces: 1,
                allreduce_bytes: 8,
                barriers: 1,
                neighbor_exchanges: 1,
                flops: 1234,
            }
        );
        assert!((r.final_virt - 0.75).abs() < 1e-12);
        assert_eq!(report.comm_totals().sends, 1);
    }

    #[test]
    fn iteration_records_come_from_rank_zero_only() {
        let mk = |rank, iter: u64| {
            ev(
                Some(rank),
                iter as f64,
                EventKind::Iter,
                "",
                vec![
                    ("iter".into(), iter.into()),
                    ("rel_res".into(), (0.5f64).into()),
                    ("exchanges".into(), 2u64.into()),
                    ("allreduces".into(), 1u64.into()),
                ],
            )
        };
        let events = vec![mk(0, 2), mk(1, 1), mk(0, 1)];
        let report = TraceReport::from_events(&events);
        assert_eq!(report.iters.len(), 2);
        assert_eq!(report.iters[0].iter, 1);
        assert_eq!(report.per_iteration_comm(), Some((2.0, 1.0)));
    }

    #[test]
    fn solve_summary_is_extracted() {
        let events = vec![ev(
            None,
            9.0,
            EventKind::Instant,
            "solve_summary",
            vec![
                ("converged".into(), 1u64.into()),
                ("iterations".into(), 17u64.into()),
                ("restarts".into(), 0u64.into()),
                ("final_rel_res".into(), 1e-9.into()),
                ("modeled_time".into(), 0.25.into()),
                ("precond".into(), "gls(m=3)".into()),
                ("variant".into(), "edd-enhanced".into()),
                ("overlap".into(), 1u64.into()),
            ],
        )];
        let report = TraceReport::from_events(&events);
        let s = report.solve.unwrap();
        assert!(s.converged);
        assert_eq!(s.iterations, 17);
        assert_eq!(s.precond, "gls(m=3)");
        assert_eq!(s.variant, "edd-enhanced");
        assert!(s.overlap);
        // No counting allocator was advertised in the stream.
        assert_eq!(s.alloc_count, None);
        assert_eq!(s.alloc_bytes, None);
    }

    #[test]
    fn solve_summary_carries_alloc_counters_when_present() {
        let events = vec![ev(
            None,
            9.0,
            EventKind::Instant,
            "solve_summary",
            vec![
                ("converged".into(), 1u64.into()),
                ("iterations".into(), 3u64.into()),
                ("alloc_count".into(), 42u64.into()),
                ("alloc_bytes".into(), 4096u64.into()),
            ],
        )];
        let s = TraceReport::from_events(&events).solve.unwrap();
        assert_eq!(s.alloc_count, Some(42));
        assert_eq!(s.alloc_bytes, Some(4096));
    }

    #[test]
    fn truncated_stream_falls_back_to_max_virt() {
        let events = vec![ev(Some(0), 1.5, EventKind::Barrier, "", vec![])];
        let report = TraceReport::from_events(&events);
        assert!((report.ranks[0].final_virt - 1.5).abs() < 1e-12);
        assert!((report.makespan_virt() - 1.5).abs() < 1e-12);
    }
}
