//! Chrome / Perfetto `trace_event` exporter.
//!
//! Converts a recorded [`TraceEvent`] stream into the JSON object format
//! consumed by `chrome://tracing`, [Perfetto](https://ui.perfetto.dev) and
//! Speedscope, so per-rank timelines stay inspectable at P = 64+ where the
//! ASCII renderer stops being useful.
//!
//! Mapping (all timestamps in microseconds, as the format requires):
//!
//! | trace event            | `trace_event` record                          |
//! |------------------------|-----------------------------------------------|
//! | rank span begin/end    | `B` / `E` on `tid = rank + 1`, virtual time   |
//! | host span begin/end    | `B` / `E` on `tid = 0`, wall time             |
//! | `recv` that blocked    | `X` slice `recv-wait` (`t_before → t_virt`)   |
//! | `allreduce`/`barrier`  | `X` slice (`t_before → t_virt`)               |
//! | `send`/`recv`/`iter`/… | `i` instant with the fields as `args`         |
//! | flushed `counter`      | `C` counter sample                            |
//! | `rank_end`             | `i` instant (final clock in `args`)           |
//!
//! One process (`pid` 0) per trace; rank clocks are virtual seconds from
//! the same origin, so slices line up across rank rows exactly as the
//! machine model scheduled them. Host events run on wall time in their own
//! row — a different clock, kept for orientation rather than alignment.

use crate::event::{EventKind, TraceEvent, Value};
use crate::jsonl::encode_json_string;
use std::fmt::Write as _;

/// Converts seconds to integer-ish microseconds with sub-µs remainder kept
/// (the format accepts fractional `ts`).
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

fn push_args(out: &mut String, fields: &[(String, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&encode_json_string(k));
        out.push(':');
        match v {
            Value::U64(u) => {
                let _ = write!(out, "{u}");
            }
            Value::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => out.push_str(&encode_json_string(s)),
        }
    }
    out.push('}');
}

struct Record<'a> {
    ph: char,
    name: &'a str,
    tid: u64,
    ts: f64,
    dur: Option<f64>,
    args: Option<&'a [(String, Value)]>,
}

fn push_record(out: &mut String, first: &mut bool, rec: &Record<'_>) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "  {{\"name\":{},\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{}",
        encode_json_string(rec.name),
        rec.ph,
        rec.tid,
        us(rec.ts)
    );
    if let Some(dur) = rec.dur {
        let _ = write!(out, ",\"dur\":{}", us(dur));
    }
    if let Some(fields) = rec.args {
        out.push_str(",\"args\":");
        push_args(out, fields);
    }
    out.push('}');
}

/// Renders the event stream as one `trace_event` JSON document
/// (`{"traceEvents":[...]}`). The output always parses as valid JSON (the
/// exporter tests pin this via [`crate::json::parse`]).
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;

    // Thread-name metadata: host row + one row per rank seen.
    let mut max_rank: Option<usize> = None;
    let mut has_host = false;
    for ev in events {
        match ev.rank {
            Some(r) => max_rank = Some(max_rank.map_or(r, |m: usize| m.max(r))),
            None => has_host = true,
        }
    }
    let name_meta = |out: &mut String, first: &mut bool, tid: u64, label: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        let _ = write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
            encode_json_string(label)
        );
    };
    if has_host {
        name_meta(&mut out, &mut first, 0, "host (wall clock)");
    }
    if let Some(m) = max_rank {
        for r in 0..=m {
            name_meta(&mut out, &mut first, r as u64 + 1, &format!("rank {r}"));
        }
    }

    for ev in events {
        // Host events run on wall time in row 0; rank rows use virtual time.
        let (tid, ts) = match ev.rank {
            Some(r) => (r as u64 + 1, ev.t_virt),
            None => (0, ev.t_wall),
        };
        match ev.kind {
            EventKind::SpanBegin => push_record(
                &mut out,
                &mut first,
                &Record {
                    ph: 'B',
                    name: &ev.name,
                    tid,
                    ts,
                    dur: None,
                    args: None,
                },
            ),
            EventKind::SpanEnd => push_record(
                &mut out,
                &mut first,
                &Record {
                    ph: 'E',
                    name: &ev.name,
                    tid,
                    ts,
                    dur: None,
                    args: None,
                },
            ),
            EventKind::Recv => {
                // A blocked receive renders as a wait slice; the instant
                // carries the matching fields either way.
                let before = ev.f64("t_before").unwrap_or(ev.t_virt);
                if ev.t_virt > before {
                    push_record(
                        &mut out,
                        &mut first,
                        &Record {
                            ph: 'X',
                            name: "recv-wait",
                            tid,
                            ts: before,
                            dur: Some(ev.t_virt - before),
                            args: Some(&ev.fields),
                        },
                    );
                } else {
                    push_record(
                        &mut out,
                        &mut first,
                        &Record {
                            ph: 'i',
                            name: "recv",
                            tid,
                            ts,
                            dur: None,
                            args: Some(&ev.fields),
                        },
                    );
                }
            }
            EventKind::Allreduce | EventKind::Barrier => {
                let name = if ev.kind == EventKind::Allreduce {
                    "allreduce"
                } else {
                    "barrier"
                };
                let before = ev.f64("t_before").unwrap_or(ev.t_virt);
                push_record(
                    &mut out,
                    &mut first,
                    &Record {
                        ph: 'X',
                        name,
                        tid,
                        ts: before.min(ev.t_virt),
                        dur: Some((ev.t_virt - before).max(0.0)),
                        args: Some(&ev.fields),
                    },
                );
            }
            EventKind::Counter => {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"name\":{},\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    encode_json_string(&ev.name),
                    us(ts),
                    ev.u64("value").unwrap_or(0)
                );
            }
            EventKind::Send
            | EventKind::Instant
            | EventKind::Exchange
            | EventKind::Iter
            | EventKind::RankEnd => {
                let name: &str = match ev.kind {
                    EventKind::Send => "send",
                    EventKind::Exchange => "exchange",
                    EventKind::Iter => "iter",
                    EventKind::RankEnd => "rank_end",
                    _ => &ev.name,
                };
                push_record(
                    &mut out,
                    &mut first,
                    &Record {
                        ph: 'i',
                        name,
                        tid,
                        ts,
                        dur: None,
                        args: Some(&ev.fields),
                    },
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<TraceEvent> {
        let mk = |rank: Option<usize>,
                  t: f64,
                  kind: EventKind,
                  name: &str,
                  fields: Vec<(&str, Value)>| TraceEvent {
            rank,
            t_wall: t,
            t_virt: t,
            kind,
            name: name.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        };
        vec![
            mk(None, 0.0, EventKind::SpanBegin, "assembly", vec![]),
            mk(None, 0.25, EventKind::SpanEnd, "assembly", vec![]),
            mk(Some(0), 0.0, EventKind::SpanBegin, "fgmres", vec![]),
            mk(
                Some(0),
                0.5,
                EventKind::Send,
                "",
                vec![
                    ("peer", Value::U64(1)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                ],
            ),
            mk(
                Some(1),
                0.9,
                EventKind::Recv,
                "",
                vec![
                    ("peer", Value::U64(0)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                    ("t_before", Value::F64(0.4)),
                    ("t_arrival", Value::F64(0.9)),
                ],
            ),
            mk(
                Some(0),
                1.0,
                EventKind::Allreduce,
                "",
                vec![
                    ("bytes", Value::U64(8)),
                    ("coll", Value::U64(0)),
                    ("t_before", Value::F64(0.8)),
                    ("t_sync", Value::F64(0.9)),
                ],
            ),
            mk(Some(0), 1.5, EventKind::SpanEnd, "fgmres", vec![]),
            mk(
                Some(0),
                1.5,
                EventKind::Counter,
                "spmv_calls",
                vec![("value", Value::U64(42))],
            ),
            mk(
                Some(0),
                1.5,
                EventKind::RankEnd,
                "",
                vec![("t_virt_final", Value::F64(1.5))],
            ),
        ]
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let text = export_chrome_trace(&sample_events());
        let doc = json::parse(&text).expect("exporter output must parse as JSON");
        let events = doc
            .get("traceEvents")
            .expect("traceEvents key")
            .as_array()
            .expect("traceEvents must be an array");
        assert!(!events.is_empty());
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
            assert!(["B", "E", "X", "i", "C", "M"].contains(&ph), "ph {ph:?}");
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
            if ph != "M" {
                assert!(e.get("ts").and_then(|t| t.as_f64()).is_some(), "ts on {ph}");
            }
            if ph == "X" {
                assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn spans_pair_up_and_land_on_the_right_thread() {
        let text = export_chrome_trace(&sample_events());
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let fgmres: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("fgmres"))
            .collect();
        assert_eq!(fgmres.len(), 2);
        for e in &fgmres {
            assert_eq!(e.get("tid").unwrap().as_f64(), Some(1.0)); // rank 0 → tid 1
        }
        // B before E, microsecond timestamps.
        assert_eq!(fgmres[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(fgmres[1].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(fgmres[1].get("ts").unwrap().as_f64(), Some(1.5e6));
        // Host span sits on tid 0.
        let host: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("assembly"))
            .collect();
        assert_eq!(host.len(), 2);
        assert_eq!(host[0].get("tid").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn blocked_recv_becomes_wait_slice() {
        let text = export_chrome_trace(&sample_events());
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let wait = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("recv-wait"))
            .expect("blocked recv must export a wait slice");
        assert_eq!(wait.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(wait.get("ts").unwrap().as_f64(), Some(0.4e6));
        let dur = wait.get("dur").unwrap().as_f64().unwrap();
        assert!((dur - 0.5e6).abs() < 1e-6);
    }

    #[test]
    fn empty_stream_exports_empty_valid_document() {
        let text = export_chrome_trace(&[]);
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
