//! Zero-dependency structured tracing for the parfem stack.
//!
//! The crate provides the observability layer described in DESIGN.md:
//!
//! * [`TraceEvent`] — one timestamped record carrying both a **wall-clock**
//!   time (seconds since the sink's epoch) and a **virtual** time (the LogP
//!   machine-model clock of the emitting rank), a kind, a name, and a flat
//!   bag of numeric/string fields.
//! * [`TraceSink`] / [`RankTracer`] — the sink is the cheap, cloneable,
//!   thread-safe handle threaded through the solver stack; each rank thread
//!   checks out its own single-threaded [`RankTracer`] which buffers events
//!   locally and flushes them into the sink when dropped. A disabled sink is
//!   a `None` and every emission short-circuits on one branch, so tracing
//!   costs nothing when off.
//! * [`jsonl`] — a hand-rolled JSON-Lines encoder/decoder (no serde): one
//!   event per line, round-trip exact for finite floats.
//! * [`Counter`] / [`Histogram`] — low-overhead monotonic counters and
//!   power-of-two-bucket histograms for hot paths (SpMV, message sizes).
//! * [`alloc`] — an opt-in counting global allocator; when a binary or test
//!   installs it, solve summaries gain `alloc_bytes` / `alloc_count` fields
//!   so allocation regressions in the Krylov hot path show up in
//!   `parfem report`.
//! * [`TraceReport`] — the in-memory aggregator: rolls a recorded event
//!   stream into per-rank phase breakdowns (partition → assembly → scaling →
//!   precond-build → FGMRES cycles → gather), Table-1-style communication
//!   counts, a per-iteration convergence record, and an ASCII per-rank
//!   timeline over virtual time.
//!
//! The event schema is documented on [`TraceEvent`]; the stable JSON keys are
//! documented in [`jsonl`].

#![deny(missing_docs)]
// `deny` rather than `forbid`: the [`alloc`] module needs one audited
// `unsafe impl GlobalAlloc` (forwarding to `System` around atomic counters)
// and opts in locally; everything else stays unsafe-free.
#![deny(unsafe_code)]

mod aggregate;
pub mod alloc;
mod event;
pub mod jsonl;
mod metrics;
mod report;
mod sink;

pub use aggregate::{CommCounts, IterRecord, PhaseTotals, RankSummary, SolveSummary, TraceReport};
pub use event::{EventKind, TraceEvent, Value};
pub use metrics::{Counter, Histogram};
pub use report::{render_comm_table, render_convergence, render_phase_table, render_timeline};
pub use sink::{RankTracer, TraceSink};
