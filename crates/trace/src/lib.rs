//! Zero-dependency structured tracing for the parfem stack.
//!
//! The crate provides the observability layer described in DESIGN.md:
//!
//! * [`TraceEvent`] — one timestamped record carrying both a **wall-clock**
//!   time (seconds since the sink's epoch) and a **virtual** time (the LogP
//!   machine-model clock of the emitting rank), a kind, a name, and a flat
//!   bag of numeric/string fields.
//! * [`TraceSink`] / [`RankTracer`] — the sink is the cheap, cloneable,
//!   thread-safe handle threaded through the solver stack; each rank thread
//!   checks out its own single-threaded [`RankTracer`] which buffers events
//!   locally and flushes them into the sink when dropped. A disabled sink is
//!   a `None` and every emission short-circuits on one branch, so tracing
//!   costs nothing when off.
//! * [`jsonl`] — a hand-rolled JSON-Lines encoder/decoder (no serde): one
//!   event per line, round-trip exact for finite floats.
//! * [`Counter`] / [`Histogram`] — low-overhead monotonic counters and
//!   power-of-two-bucket histograms for hot paths (SpMV, message sizes).
//! * [`alloc`] — an opt-in counting global allocator; when a binary or test
//!   installs it, solve summaries gain `alloc_bytes` / `alloc_count` fields
//!   so allocation regressions in the Krylov hot path show up in
//!   `parfem report`.
//! * [`TraceReport`] — the in-memory aggregator: rolls a recorded event
//!   stream into per-rank phase breakdowns (partition → assembly → scaling →
//!   precond-build → FGMRES cycles → gather), Table-1-style communication
//!   counts, a per-iteration convergence record, and an ASCII per-rank
//!   timeline over virtual time.
//! * [`CritPath`] — the critical-path analyzer: reconstructs the cross-rank
//!   dependency DAG from the recorded send/recv/collective events and walks
//!   back the makespan-bounding chain, attributing it to compute, message
//!   flight, and collective segments.
//! * [`MetricsRegistry`] — a thread-safe live-aggregate surface (named
//!   counters, gauges, histograms) with a stable text exposition, for
//!   long-running sessions that need scraping rather than post-hoc traces.
//! * [`chrome`] — a Chrome/Perfetto `trace_event` exporter for interactive
//!   per-rank timelines at high rank counts.
//! * [`json`] — a small generic JSON reader shared by the perf-gate and the
//!   exporter tests.
//!
//! The event schema is documented on [`TraceEvent`]; the stable JSON keys are
//! documented in [`jsonl`].

#![deny(missing_docs)]
// `deny` rather than `forbid`: the [`alloc`] module needs one audited
// `unsafe impl GlobalAlloc` (forwarding to `System` around atomic counters)
// and opts in locally; everything else stays unsafe-free.
#![deny(unsafe_code)]

mod aggregate;
pub mod alloc;
pub mod chrome;
mod critpath;
mod event;
pub mod json;
pub mod jsonl;
mod metrics;
mod registry;
mod report;
mod sink;

pub use aggregate::{CommCounts, IterRecord, PhaseTotals, RankSummary, SolveSummary, TraceReport};
pub use chrome::export_chrome_trace;
pub use critpath::{render_critical_path, CritPath, PathSegment, RankWaits, SegmentKind};
pub use event::{EventKind, TraceEvent, Value};
pub use metrics::{Counter, Histogram};
pub use registry::{MetricCounter, MetricGauge, MetricHistogram, MetricsRegistry};
pub use report::{render_comm_table, render_convergence, render_phase_table, render_timeline};
pub use sink::{RankTracer, TraceSink};
