//! Critical-path analysis over a recorded trace: reconstructs the
//! cross-rank dependency chain that bounds the makespan.
//!
//! ## The dependency DAG
//!
//! In the virtual-time machine model every rank's clock advances for three
//! reasons only: local compute (`Comm::work`), waiting for a point-to-point
//! message (`recv` sets the clock to `max(own, arrival)`), and collective
//! rendezvous (`allreduce`/`barrier` set it to `max(all contributions) +
//! tree cost`). The trace records enough to replay those edges exactly:
//!
//! - every `send` carries a per-directed-pair sequence number `seq`; the
//!   channel between an ordered rank pair is FIFO, so the `k`-th send
//!   `s → d` matches the `k`-th recv on `d` from `s` (this stays true
//!   under fault injection, whose physical frames pass one-for-one
//!   through the same channel);
//! - every `recv` carries `seq`, the receiver clock *before* the receive
//!   (`t_before`), and the message arrival stamp (`t_arrival`); the recv
//!   blocked iff `t_arrival > t_before`;
//! - every `allreduce`/`barrier` carries a per-rank collective ordinal
//!   `coll` (all collectives serialise through one rendezvous, so ordinal
//!   `n` names the same rendezvous on every rank), the entry clock
//!   `t_before`, and the rendezvous maximum `t_sync`; the bounding
//!   contributor is the rank whose `t_before` equals `t_sync`.
//!
//! ## The walk
//!
//! [`CritPath::from_events`] walks *backwards* from the rank that finishes
//! last. At each step it scans that rank's comm events for the latest
//! *blocking* one; the gap above it is local compute. A blocking recv hops
//! to the matching send (the message flight becomes a `Message` segment);
//! a collective hops to its bounding contributor (the tree cost becomes a
//! `Collective` segment). Segments are contiguous by construction, so they
//! tile `[0, makespan]` exactly — the sum of segment lengths *equals* the
//! makespan, which the acceptance test asserts on a real P≥8 overlapped
//! solve.

use crate::aggregate::TraceReport;
use crate::event::{EventKind, TraceEvent};
use std::collections::HashMap;
use std::fmt::Write as _;

/// What one critical-path segment spent its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Local compute (including the time under any non-blocking comm).
    Compute,
    /// A point-to-point message in flight (send stamp → arrival stamp).
    Message,
    /// Collective tree cost (rendezvous maximum → post-collective clock).
    Collective,
}

impl SegmentKind {
    /// Stable lower-case label (`compute`/`message`/`collective`).
    pub fn as_str(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Message => "message",
            SegmentKind::Collective => "collective",
        }
    }
}

/// One contiguous span of the makespan-bounding chain.
#[derive(Debug, Clone)]
pub struct PathSegment {
    /// The rank the chain runs on during this span (for a `Message`
    /// segment: the *receiving* rank; the sender is named in `detail`).
    pub rank: usize,
    /// Segment start, virtual seconds.
    pub t0: f64,
    /// Segment end, virtual seconds (`t1 >= t0`).
    pub t1: f64,
    /// What the time went on.
    pub kind: SegmentKind,
    /// Human-readable annotation (`"r2→r3 seq 41 (88B)"`,
    /// `"allreduce #17"`, …). Empty for plain compute.
    pub detail: String,
}

impl PathSegment {
    /// Segment length in virtual seconds.
    pub fn len(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Whether the segment has zero virtual extent.
    pub fn is_empty(&self) -> bool {
        self.t1 <= self.t0
    }
}

/// Per-rank wait/busy decomposition over the whole run (not only the
/// critical chain).
#[derive(Debug, Clone)]
pub struct RankWaits {
    /// The rank.
    pub rank: usize,
    /// The rank's final virtual clock.
    pub final_virt: f64,
    /// Time blocked on point-to-point receives (`Σ max(0, arrival − before)`).
    pub recv_wait: f64,
    /// Time waiting at collective rendezvous for slower ranks
    /// (`Σ max(0, t_sync − t_before)`).
    pub collective_wait: f64,
    /// Collective tree cost charged after rendezvous (`Σ (post − t_sync)`).
    pub collective_cost: f64,
    /// Residual busy time: `final_virt` minus all waits and costs.
    pub busy: f64,
    /// Idle tail between this rank's end and the makespan.
    pub idle_tail: f64,
}

/// The analysis result: the bounding chain plus whole-run attribution.
#[derive(Debug, Clone)]
pub struct CritPath {
    /// Number of ranks seen in the trace.
    pub nranks: usize,
    /// The observed makespan (max final virtual clock).
    pub makespan: f64,
    /// The rank that finishes last (the walk's starting point).
    pub bound_rank: usize,
    /// The bounding chain, ordered forward in time, tiling `[0, makespan]`.
    pub segments: Vec<PathSegment>,
    /// Virtual seconds of the chain spent in local compute.
    pub path_compute: f64,
    /// Virtual seconds of the chain spent in message flight.
    pub path_message: f64,
    /// Portion of `path_message` attributable to link contention — the
    /// extra flight time the topology's bandwidth-sharing model charged
    /// the path's messages beyond their uncontended cost. Zero on flat
    /// (dedicated-wire) machine models.
    pub path_contention: f64,
    /// Virtual seconds of the chain spent in collective cost.
    pub path_collective: f64,
    /// Per-rank wait decomposition over the whole run.
    pub ranks: Vec<RankWaits>,
    /// Modeled parallel efficiency vs ideal:
    /// `Σ busy / (nranks × makespan)` — 1.0 means every rank computed the
    /// whole time.
    pub efficiency: f64,
}

/// One comm event in a rank's virtual-time order, pre-digested for the walk.
#[derive(Debug, Clone, Copy)]
struct CommEv {
    t_virt: f64,
    kind: EventKind,
    peer: usize,
    seq: u64,
    bytes: u64,
    t_before: f64,
    t_arrival: f64,
    t_sync: f64,
    coll: u64,
    t_cont: f64,
}

impl CritPath {
    /// Reconstructs the critical path from a recorded event stream.
    ///
    /// Events missing the matching fields (`seq`, `t_before`, …) — e.g.
    /// traces recorded before the fields existed — degrade gracefully: a
    /// recv without a matchable send is attributed as message wait on the
    /// receiving rank, and the walk continues locally.
    pub fn from_events(events: &[TraceEvent]) -> CritPath {
        // ---- gather per-rank comm events (virtual-time order == recorded
        // order per rank: clocks are monotone and take_events is stable).
        let mut per_rank: Vec<Vec<CommEv>> = Vec::new();
        let mut finals: Vec<f64> = Vec::new();
        let at = |v: &mut Vec<Vec<CommEv>>, f: &mut Vec<f64>, r: usize| {
            while v.len() <= r {
                v.push(Vec::new());
                f.push(0.0);
            }
        };
        for ev in events {
            let Some(rank) = ev.rank else { continue };
            at(&mut per_rank, &mut finals, rank);
            match ev.kind {
                EventKind::Send | EventKind::Recv => {
                    per_rank[rank].push(CommEv {
                        t_virt: ev.t_virt,
                        kind: ev.kind,
                        peer: ev.u64("peer").unwrap_or(u64::MAX) as usize,
                        seq: ev.u64("seq").unwrap_or(u64::MAX),
                        bytes: ev.u64("bytes").unwrap_or(0),
                        t_before: ev.f64("t_before").unwrap_or(ev.t_virt),
                        t_arrival: ev.f64("t_arrival").unwrap_or(ev.t_virt),
                        t_sync: 0.0,
                        coll: 0,
                        t_cont: ev.f64("t_contention").unwrap_or(0.0),
                    });
                }
                EventKind::Allreduce | EventKind::Barrier => {
                    per_rank[rank].push(CommEv {
                        t_virt: ev.t_virt,
                        kind: ev.kind,
                        peer: usize::MAX,
                        seq: u64::MAX,
                        bytes: ev.u64("bytes").unwrap_or(0),
                        t_before: ev.f64("t_before").unwrap_or(ev.t_virt),
                        t_arrival: 0.0,
                        t_sync: ev.f64("t_sync").unwrap_or(ev.t_virt),
                        coll: ev.u64("coll").unwrap_or(u64::MAX),
                        t_cont: 0.0,
                    });
                }
                EventKind::RankEnd => {
                    let fv = ev.f64("t_virt_final").unwrap_or(ev.t_virt);
                    finals[rank] = finals[rank].max(fv);
                }
                _ => {}
            }
            finals[rank] = finals[rank].max(ev.t_virt);
        }
        let nranks = per_rank.len();
        let makespan = finals.iter().cloned().fold(0.0, f64::max);

        // ---- indices for the hops.
        // (src, dst, seq) -> (index in src's list, send stamp, contention
        // delay the model charged this message).
        let mut send_index: HashMap<(usize, usize, u64), (usize, f64, f64)> = HashMap::new();
        // coll ordinal -> [(rank, index, t_before)].
        let mut coll_index: HashMap<u64, Vec<(usize, usize, f64)>> = HashMap::new();
        for (rank, evs) in per_rank.iter().enumerate() {
            for (i, e) in evs.iter().enumerate() {
                match e.kind {
                    EventKind::Send if e.seq != u64::MAX && e.peer != usize::MAX => {
                        send_index.insert((rank, e.peer, e.seq), (i, e.t_virt, e.t_cont));
                    }
                    EventKind::Allreduce | EventKind::Barrier if e.coll != u64::MAX => {
                        coll_index
                            .entry(e.coll)
                            .or_default()
                            .push((rank, i, e.t_before));
                    }
                    _ => {}
                }
            }
        }

        // ---- per-rank wait decomposition (whole run, path-independent).
        let mut ranks: Vec<RankWaits> = Vec::new();
        let mut busy_total = 0.0;
        for (rank, evs) in per_rank.iter().enumerate() {
            let mut recv_wait = 0.0;
            let mut coll_wait = 0.0;
            let mut coll_cost = 0.0;
            for e in evs {
                match e.kind {
                    EventKind::Recv => recv_wait += (e.t_arrival - e.t_before).max(0.0),
                    EventKind::Allreduce | EventKind::Barrier => {
                        coll_wait += (e.t_sync - e.t_before).max(0.0);
                        coll_cost += (e.t_virt - e.t_sync).max(0.0);
                    }
                    _ => {}
                }
            }
            let busy = (finals[rank] - recv_wait - coll_wait - coll_cost).max(0.0);
            busy_total += busy;
            ranks.push(RankWaits {
                rank,
                final_virt: finals[rank],
                recv_wait,
                collective_wait: coll_wait,
                collective_cost: coll_cost,
                busy,
                idle_tail: (makespan - finals[rank]).max(0.0),
            });
        }
        let efficiency = if nranks > 0 && makespan > 0.0 {
            busy_total / (nranks as f64 * makespan)
        } else {
            1.0
        };

        // ---- the backward walk.
        let mut segments: Vec<PathSegment> = Vec::new();
        let mut path_contention = 0.0f64;
        let bound_rank = finals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(r, _)| r);
        if nranks > 0 && makespan > 0.0 {
            let mut cursor: Vec<usize> = per_rank.iter().map(Vec::len).collect();
            let mut r = bound_rank;
            let mut t = finals[r];
            // Each step strictly decreases Σ cursor, so the walk terminates.
            loop {
                // Latest blocking event below the cursor.
                let mut hit = None;
                while cursor[r] > 0 {
                    let e = per_rank[r][cursor[r] - 1];
                    cursor[r] -= 1;
                    let blocking = match e.kind {
                        EventKind::Recv => e.t_arrival > e.t_before,
                        EventKind::Allreduce | EventKind::Barrier => true,
                        _ => false,
                    };
                    if blocking {
                        hit = Some(e);
                        break;
                    }
                }
                let Some(e) = hit else {
                    if t > 0.0 {
                        segments.push(PathSegment {
                            rank: r,
                            t0: 0.0,
                            t1: t,
                            kind: SegmentKind::Compute,
                            detail: String::new(),
                        });
                    }
                    break;
                };
                // Compute gap between the blocking event and the cursor time.
                if t > e.t_virt {
                    segments.push(PathSegment {
                        rank: r,
                        t0: e.t_virt,
                        t1: t,
                        kind: SegmentKind::Compute,
                        detail: String::new(),
                    });
                }
                match e.kind {
                    EventKind::Recv => {
                        let matched = send_index.get(&(e.peer, r, e.seq)).copied();
                        if let Some((sidx, s_stamp, s_cont)) = matched {
                            let detail = if s_cont > 0.0 {
                                path_contention += s_cont.min((e.t_virt - s_stamp).max(0.0));
                                format!(
                                    "r{}→r{} seq {} ({}B, +{:.3e}s contention)",
                                    e.peer, r, e.seq, e.bytes, s_cont
                                )
                            } else {
                                format!("r{}→r{} seq {} ({}B)", e.peer, r, e.seq, e.bytes)
                            };
                            segments.push(PathSegment {
                                rank: r,
                                t0: s_stamp,
                                t1: e.t_virt,
                                kind: SegmentKind::Message,
                                detail,
                            });
                            cursor[e.peer] = cursor[e.peer].min(sidx);
                            r = e.peer;
                            t = s_stamp;
                        } else {
                            // Unmatchable (legacy trace): attribute the wait
                            // here and continue locally.
                            segments.push(PathSegment {
                                rank: r,
                                t0: e.t_before,
                                t1: e.t_virt,
                                kind: SegmentKind::Message,
                                detail: format!("recv from r{} (unmatched)", e.peer),
                            });
                            t = e.t_before;
                        }
                    }
                    EventKind::Allreduce | EventKind::Barrier => {
                        let label = if e.kind == EventKind::Allreduce {
                            "allreduce"
                        } else {
                            "barrier"
                        };
                        segments.push(PathSegment {
                            rank: r,
                            t0: e.t_sync,
                            t1: e.t_virt,
                            kind: SegmentKind::Collective,
                            detail: if e.coll != u64::MAX {
                                format!("{label} #{}", e.coll)
                            } else {
                                label.to_string()
                            },
                        });
                        // Hop to the bounding contributor: the entry whose
                        // clock equals the rendezvous maximum (tie → lowest
                        // rank, matching the deterministic reduction order).
                        let bounding = coll_index.get(&e.coll).and_then(|entries| {
                            entries
                                .iter()
                                .filter(|(_, _, b)| *b >= e.t_sync)
                                .min_by_key(|(rank, _, _)| *rank)
                                .copied()
                        });
                        if let Some((q, qidx, _)) = bounding {
                            if q != r {
                                cursor[q] = cursor[q].min(qidx);
                                r = q;
                            }
                        }
                        t = e.t_sync;
                    }
                    _ => unreachable!("only blocking kinds reach here"),
                }
                if t <= 0.0 {
                    break;
                }
            }
            segments.reverse();
        }

        let mut path_compute = 0.0;
        let mut path_message = 0.0;
        let mut path_collective = 0.0;
        for s in &segments {
            match s.kind {
                SegmentKind::Compute => path_compute += s.len(),
                SegmentKind::Message => path_message += s.len(),
                SegmentKind::Collective => path_collective += s.len(),
            }
        }

        CritPath {
            nranks,
            makespan,
            bound_rank,
            segments,
            path_compute,
            path_message,
            path_contention,
            path_collective,
            ranks,
            efficiency,
        }
    }

    /// Convenience: analyze the same event stream a [`TraceReport`] was
    /// built from and cross-check the makespans agree.
    pub fn from_report_events(report: &TraceReport, events: &[TraceEvent]) -> CritPath {
        let cp = Self::from_events(events);
        debug_assert!((cp.makespan - report.makespan_virt()).abs() <= 1e-12 * cp.makespan.max(1.0));
        cp
    }

    /// Total virtual length of the chain — equals [`CritPath::makespan`]
    /// up to floating-point summation (asserted by tests).
    pub fn path_length(&self) -> f64 {
        self.path_compute + self.path_message + self.path_collective
    }

    /// Exports the analysis as one JSON document (schema
    /// `parfem-critpath-v1`), parseable by [`crate::json`].
    pub fn to_json(&self) -> String {
        fn num(out: &mut String, v: f64) {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"parfem-critpath-v1\",\n");
        let _ = writeln!(out, "  \"nranks\": {},", self.nranks);
        let _ = writeln!(out, "  \"bound_rank\": {},", self.bound_rank);
        out.push_str("  \"makespan\": ");
        num(&mut out, self.makespan);
        out.push_str(",\n  \"efficiency\": ");
        num(&mut out, self.efficiency);
        out.push_str(",\n  \"path\": { \"compute\": ");
        num(&mut out, self.path_compute);
        out.push_str(", \"message\": ");
        num(&mut out, self.path_message);
        out.push_str(", \"contention\": ");
        num(&mut out, self.path_contention);
        out.push_str(", \"collective\": ");
        num(&mut out, self.path_collective);
        out.push_str(" },\n  \"segments\": [\n");
        for (i, s) in self.segments.iter().enumerate() {
            let _ = write!(out, "    {{ \"rank\": {}, \"t0\": ", s.rank);
            num(&mut out, s.t0);
            out.push_str(", \"t1\": ");
            num(&mut out, s.t1);
            let _ = writeln!(
                out,
                ", \"kind\": \"{}\", \"detail\": {} }}{}",
                s.kind.as_str(),
                crate::jsonl::encode_json_string(&s.detail),
                if i + 1 < self.segments.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n  \"ranks\": [\n");
        for (i, r) in self.ranks.iter().enumerate() {
            let _ = write!(out, "    {{ \"rank\": {}, \"final_virt\": ", r.rank);
            num(&mut out, r.final_virt);
            out.push_str(", \"recv_wait\": ");
            num(&mut out, r.recv_wait);
            out.push_str(", \"collective_wait\": ");
            num(&mut out, r.collective_wait);
            out.push_str(", \"collective_cost\": ");
            num(&mut out, r.collective_cost);
            out.push_str(", \"busy\": ");
            num(&mut out, r.busy);
            out.push_str(", \"idle_tail\": ");
            num(&mut out, r.idle_tail);
            let _ = writeln!(
                out,
                " }}{}",
                if i + 1 < self.ranks.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Renders the analysis as plain text: headline attribution, the per-rank
/// wait table, and the bounding chain (compute runs merged for brevity).
pub fn render_critical_path(cp: &CritPath) -> String {
    fn pct(part: f64, whole: f64) -> f64 {
        if whole > 0.0 {
            100.0 * part / whole
        } else {
            0.0
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path: makespan {:.6e}s bound by rank {} ({} ranks, modeled efficiency {:.1}%)",
        cp.makespan,
        cp.bound_rank,
        cp.nranks,
        100.0 * cp.efficiency
    );
    let _ = writeln!(
        out,
        "path attribution: compute {:.6e}s ({:.1}%)  message {:.6e}s ({:.1}%, {:.6e}s contention)  collective {:.6e}s ({:.1}%)",
        cp.path_compute,
        pct(cp.path_compute, cp.makespan),
        cp.path_message,
        pct(cp.path_message, cp.makespan),
        cp.path_contention,
        cp.path_collective,
        pct(cp.path_collective, cp.makespan),
    );
    let _ = writeln!(
        out,
        "{:>5} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "rank", "busy", "recv-wait", "coll-wait", "coll-cost", "idle-tail", "end"
    );
    for r in &cp.ranks {
        let _ = writeln!(
            out,
            "{:>5} {:>13.6e} {:>13.6e} {:>13.6e} {:>13.6e} {:>13.6e} {:>13.6e}",
            r.rank,
            r.busy,
            r.recv_wait,
            r.collective_wait,
            r.collective_cost,
            r.idle_tail,
            r.final_virt
        );
    }
    // The chain, compressed: consecutive segments on one rank with one kind
    // merge; long compute runs dominate, so cap the listing.
    let _ = writeln!(out, "bounding chain ({} segments):", cp.segments.len());
    let mut shown = 0usize;
    const MAX_SHOWN: usize = 40;
    let mut i = 0usize;
    while i < cp.segments.len() && shown < MAX_SHOWN {
        let s = &cp.segments[i];
        let mut t1 = s.t1;
        let mut j = i + 1;
        while j < cp.segments.len()
            && cp.segments[j].rank == s.rank
            && cp.segments[j].kind == s.kind
        {
            t1 = cp.segments[j].t1;
            j += 1;
        }
        let _ = writeln!(
            out,
            "  [{:>12.6e} .. {:>12.6e}] rank {:>3} {:<10} {}",
            s.t0,
            t1,
            s.rank,
            s.kind.as_str(),
            if j > i + 1 {
                format!("({} merged)", j - i)
            } else {
                s.detail.clone()
            }
        );
        shown += 1;
        i = j;
    }
    if i < cp.segments.len() {
        let _ = writeln!(
            out,
            "  ... {} more segments (see --json export)",
            cp.segments.len() - i
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn ev(rank: usize, t: f64, kind: EventKind, fields: Vec<(&str, Value)>) -> TraceEvent {
        TraceEvent {
            rank: Some(rank),
            t_wall: t,
            t_virt: t,
            kind,
            name: String::new(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Two ranks: rank 0 computes 1s then sends; rank 1 computes 0.2s,
    /// blocks on the recv (arrival 1.5), computes 0.5s more. The path must
    /// be: compute on 0 [0,1], flight [1,1.5], compute on 1 [1.5,2.0].
    #[test]
    fn two_rank_send_recv_chain_tiles_makespan() {
        let events = vec![
            ev(
                0,
                1.0,
                EventKind::Send,
                vec![
                    ("peer", Value::U64(1)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                ],
            ),
            ev(
                0,
                1.0,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(1.0))],
            ),
            ev(
                1,
                1.5,
                EventKind::Recv,
                vec![
                    ("peer", Value::U64(0)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                    ("t_before", Value::F64(0.2)),
                    ("t_arrival", Value::F64(1.5)),
                ],
            ),
            ev(
                1,
                2.0,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(2.0))],
            ),
        ];
        let cp = CritPath::from_events(&events);
        assert_eq!(cp.nranks, 2);
        assert_eq!(cp.bound_rank, 1);
        assert!((cp.makespan - 2.0).abs() < 1e-12);
        assert!((cp.path_length() - cp.makespan).abs() < 1e-12);
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.segments[0].rank, 0);
        assert_eq!(cp.segments[0].kind, SegmentKind::Compute);
        assert_eq!(cp.segments[1].kind, SegmentKind::Message);
        assert!((cp.segments[1].t0 - 1.0).abs() < 1e-12);
        assert!((cp.segments[1].t1 - 1.5).abs() < 1e-12);
        assert_eq!(cp.segments[2].rank, 1);
        // Rank 1 waited 1.3s on the recv.
        assert!((cp.ranks[1].recv_wait - 1.3).abs() < 1e-12);
        assert!((cp.ranks[0].busy - 1.0).abs() < 1e-12);
        // No contention fields anywhere: nothing attributed.
        assert_eq!(cp.path_contention, 0.0);
    }

    /// A send stamped with a contention delay: the matched message segment
    /// carries the attribution in its detail, the chain total picks it up,
    /// and it round-trips through the JSON export.
    #[test]
    fn contended_send_is_attributed_on_the_path() {
        let events = vec![
            ev(
                0,
                1.0,
                EventKind::Send,
                vec![
                    ("peer", Value::U64(1)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                    ("contention", Value::F64(3.0)),
                    ("t_contention", Value::F64(0.2)),
                ],
            ),
            ev(
                0,
                1.0,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(1.0))],
            ),
            ev(
                1,
                1.5,
                EventKind::Recv,
                vec![
                    ("peer", Value::U64(0)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                    ("t_before", Value::F64(0.2)),
                    ("t_arrival", Value::F64(1.5)),
                ],
            ),
            ev(
                1,
                2.0,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(2.0))],
            ),
        ];
        let cp = CritPath::from_events(&events);
        assert!((cp.path_contention - 0.2).abs() < 1e-12);
        let msg = cp
            .segments
            .iter()
            .find(|s| s.kind == SegmentKind::Message)
            .expect("message segment on the path");
        assert!(msg.detail.contains("contention"), "{}", msg.detail);
        let json = cp.to_json();
        assert!(json.contains("\"contention\": 0.2"), "{json}");
        let text = render_critical_path(&cp);
        assert!(text.contains("contention"), "{text}");
    }

    /// A non-blocking recv (arrival before the receiver got there) must NOT
    /// divert the walk: the path stays pure compute on the late rank.
    #[test]
    fn non_blocking_recv_stays_local() {
        let events = vec![
            ev(
                0,
                0.1,
                EventKind::Send,
                vec![
                    ("peer", Value::U64(1)),
                    ("bytes", Value::U64(8)),
                    ("seq", Value::U64(0)),
                ],
            ),
            ev(
                0,
                0.1,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(0.1))],
            ),
            ev(
                1,
                1.0,
                EventKind::Recv,
                vec![
                    ("peer", Value::U64(0)),
                    ("bytes", Value::U64(8)),
                    ("seq", Value::U64(0)),
                    ("t_before", Value::F64(1.0)),
                    ("t_arrival", Value::F64(0.3)),
                ],
            ),
            ev(
                1,
                3.0,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(3.0))],
            ),
        ];
        let cp = CritPath::from_events(&events);
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.segments[0].kind, SegmentKind::Compute);
        assert_eq!(cp.segments[0].rank, 1);
        assert!((cp.path_length() - 3.0).abs() < 1e-12);
        assert_eq!(cp.ranks[1].recv_wait, 0.0);
    }

    /// A collective hops to the straggler: rank 1 arrives late (t_before
    /// == t_sync), so the chain crosses from rank 0's post-collective
    /// compute through the collective cost onto rank 1's pre-collective
    /// compute.
    #[test]
    fn collective_hops_to_bounding_contributor() {
        let mk_coll = |rank: usize, before: f64| {
            ev(
                rank,
                2.25,
                EventKind::Allreduce,
                vec![
                    ("bytes", Value::U64(8)),
                    ("coll", Value::U64(0)),
                    ("t_before", Value::F64(before)),
                    ("t_sync", Value::F64(2.0)),
                ],
            )
        };
        let events = vec![
            mk_coll(0, 0.5),
            ev(
                0,
                3.0,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(3.0))],
            ),
            mk_coll(1, 2.0),
            ev(
                1,
                2.25,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(2.25))],
            ),
        ];
        let cp = CritPath::from_events(&events);
        assert_eq!(cp.bound_rank, 0);
        assert!((cp.makespan - 3.0).abs() < 1e-12);
        assert!((cp.path_length() - 3.0).abs() < 1e-12);
        // compute on 0 [2.25, 3.0]; collective [2.0, 2.25]; compute on 1 [0, 2.0].
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.segments[0].rank, 1);
        assert_eq!(cp.segments[0].kind, SegmentKind::Compute);
        assert!((cp.segments[0].t1 - 2.0).abs() < 1e-12);
        assert_eq!(cp.segments[1].kind, SegmentKind::Collective);
        assert_eq!(cp.segments[2].rank, 0);
        // Rank 0 waited 1.5s at the rendezvous; rank 1 not at all.
        assert!((cp.ranks[0].collective_wait - 1.5).abs() < 1e-12);
        assert!((cp.ranks[1].collective_wait - 0.0).abs() < 1e-12);
        assert!((cp.ranks[0].collective_cost - 0.25).abs() < 1e-12);
    }

    /// Chains survive repeated collectives bounded by the walking rank
    /// itself (no hop) without looping.
    #[test]
    fn self_bound_collective_continues_locally() {
        let mut events = Vec::new();
        for c in 0..3u64 {
            let t0 = c as f64;
            events.push(ev(
                0,
                t0 + 1.0,
                EventKind::Allreduce,
                vec![
                    ("bytes", Value::U64(8)),
                    ("coll", Value::U64(c)),
                    ("t_before", Value::F64(t0 + 0.9)),
                    ("t_sync", Value::F64(t0 + 0.9)),
                ],
            ));
        }
        events.push(ev(
            0,
            3.0,
            EventKind::RankEnd,
            vec![("t_virt_final", Value::F64(3.0))],
        ));
        let cp = CritPath::from_events(&events);
        assert!((cp.path_length() - 3.0).abs() < 1e-12);
        assert_eq!(
            cp.segments
                .iter()
                .filter(|s| s.kind == SegmentKind::Collective)
                .count(),
            3
        );
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let cp = CritPath::from_events(&[]);
        assert_eq!(cp.nranks, 0);
        assert_eq!(cp.makespan, 0.0);
        assert!(cp.segments.is_empty());
        assert_eq!(cp.efficiency, 1.0);
        // Renders without panicking.
        assert!(render_critical_path(&cp).contains("critical path"));
        assert!(cp.to_json().contains("parfem-critpath-v1"));
    }

    #[test]
    fn json_export_parses_and_round_trips_totals() {
        let events = vec![
            ev(
                0,
                1.0,
                EventKind::Send,
                vec![
                    ("peer", Value::U64(1)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                ],
            ),
            ev(
                1,
                1.5,
                EventKind::Recv,
                vec![
                    ("peer", Value::U64(0)),
                    ("bytes", Value::U64(80)),
                    ("seq", Value::U64(0)),
                    ("t_before", Value::F64(0.2)),
                    ("t_arrival", Value::F64(1.5)),
                ],
            ),
            ev(
                1,
                2.0,
                EventKind::RankEnd,
                vec![("t_virt_final", Value::F64(2.0))],
            ),
        ];
        let cp = CritPath::from_events(&events);
        let doc = crate::json::parse(&cp.to_json()).expect("export must be valid JSON");
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("parfem-critpath-v1")
        );
        assert_eq!(doc.get("makespan").unwrap().as_f64(), Some(cp.makespan));
        let segs = doc.get("segments").unwrap().as_array().unwrap();
        assert_eq!(segs.len(), cp.segments.len());
        let total: f64 = segs
            .iter()
            .map(|s| {
                s.get("t1").unwrap().as_f64().unwrap() - s.get("t0").unwrap().as_f64().unwrap()
            })
            .sum();
        assert!((total - cp.makespan).abs() < 1e-12);
    }
}
