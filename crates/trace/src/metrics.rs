//! Low-overhead hot-path metrics: monotonic counters and power-of-two
//! histograms. [`Counter`] uses interior mutability (`Cell`) so instrumented
//! structures can stay `&self` in hot loops, matching the rest of the stack
//! (for example `EscalatingGls`'s call counter); [`Histogram`] is plain data
//! meant to live behind whatever cell its owner already has (`ThreadComm`
//! keeps its statistics in a `RefCell`).

use crate::event::Value;
use std::cell::Cell;

/// A monotonic `u64` counter with interior mutability.
#[derive(Debug, Default)]
pub struct Counter(Cell<u64>);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Counter(Cell::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&self) -> u64 {
        self.0.replace(0)
    }
}

/// A histogram over `u64` samples with power-of-two buckets: bucket `i`
/// holds samples whose value needs `i` significant bits (`0 → [0,0]`,
/// `1 → [1,1]`, `2 → [2,3]`, `3 → [4,7]`, …). Recording is two instructions
/// (leading-zeros + bump), which is cheap enough for per-message accounting.
///
/// **Bucket-edge rule (pinned):** a value exactly at a power of two, `2^k`,
/// is the inclusive *lower* edge of bucket `k+1` = `[2^k, 2^(k+1) − 1]` —
/// it never lands in the bucket below. Consequently every quantile estimate
/// reports the inclusive upper bound `2^(k+1) − 1` of the bucket it falls
/// in, clamped to the observed maximum.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << (i - 1)).saturating_mul(2) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`0.0..=100.0`): `percentile(95.0)` is the
    /// p95 upper bound. Sugar over [`Histogram::quantile`] — same bucket
    /// resolution (exact to within a factor of two).
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }

    /// Folds `other`'s samples into `self` bucket-wise. Exact: the merged
    /// histogram equals recording both sample streams into one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile (`0.0..=1.0`): the inclusive upper bound of the
    /// bucket containing the `q`-th sample. Exact to within a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Flattens the histogram into event fields: `count`, `sum`, `min`,
    /// `max`, plus one `b<i>` entry per non-empty bucket.
    pub fn to_fields(&self) -> Vec<(String, Value)> {
        let mut fields = vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::U64(self.sum)),
            ("min".to_string(), Value::U64(self.min())),
            ("max".to_string(), Value::U64(self.max)),
        ];
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                fields.push((format!("b{i}"), Value::U64(n)));
            }
        }
        fields
    }

    /// Rebuilds a histogram from fields produced by [`Histogram::to_fields`].
    /// Returns `None` if the summary keys are missing.
    pub fn from_fields(fields: &[(String, Value)]) -> Option<Histogram> {
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_u64())
        };
        let mut h = Histogram::new();
        h.count = get("count")?;
        h.sum = get("sum")?;
        h.max = get("max")?;
        h.min = if h.count == 0 { u64::MAX } else { get("min")? };
        for (k, v) in fields {
            if let Some(rest) = k.strip_prefix('b') {
                if let (Ok(i), Some(n)) = (rest.parse::<usize>(), v.as_u64()) {
                    if i < h.buckets.len() {
                        h.buckets[i] = n;
                    }
                }
            }
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_takes() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucketing_is_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_hi(0), 0);
        assert_eq!(Histogram::bucket_hi(2), 3);
        assert_eq!(Histogram::bucket_hi(3), 7);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-12);
        // Median lands in bucket of 3 → upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 1000);
    }

    /// Pins the documented bucket-edge rule: `2^k` is the inclusive lower
    /// edge of bucket `k+1`, for every representable power of two.
    #[test]
    fn power_of_two_values_open_the_upper_bucket() {
        for k in 0..63u32 {
            let v = 1u64 << k;
            let b = Histogram::bucket_of(v);
            assert_eq!(b, k as usize + 1, "2^{k} must land in bucket {}", k + 1);
            // ... and it is that bucket's lower edge: one less lands below.
            assert_eq!(Histogram::bucket_of(v - 1), k as usize, "2^{k}-1");
            // The bucket's inclusive bounds are [2^k, 2^(k+1)-1].
            assert_eq!(Histogram::bucket_hi(b), (v - 1).wrapping_add(v));
        }
    }

    /// A histogram holding only `2^k` reports quantiles from bucket `k+1`,
    /// clamped to the observed max — so exact powers of two round-trip.
    #[test]
    fn power_of_two_quantiles_clamp_to_observed_max() {
        for k in [0u32, 3, 10, 20] {
            let v = 1u64 << k;
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.quantile(0.5), v);
            assert_eq!(h.percentile(99.0), v);
        }
    }

    #[test]
    fn percentile_is_quantile_in_percent() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        for (p, q) in [(0.0, 0.0), (50.0, 0.5), (95.0, 0.95), (99.0, 0.99)] {
            assert_eq!(h.percentile(p), h.quantile(q));
        }
        // p95/p99 of 0..100 sit in bucket 7 = [64,127], clamped to max 99.
        assert_eq!(h.percentile(95.0), 99);
        assert_eq!(h.percentile(99.0), 99);
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [1u64, 5, 64, 300] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 2, 4096] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.to_fields(), both.to_fields());
        // Merging an empty histogram is the identity (min stays sentinel).
        let before = both.to_fields();
        both.merge(&Histogram::new());
        assert_eq!(both.to_fields(), before);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn fields_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 64, 64, 9999] {
            h.record(v);
        }
        let back = Histogram::from_fields(&h.to_fields()).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
    }
}
