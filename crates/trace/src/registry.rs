//! A thread-safe metrics registry: named counters, gauges, and histograms
//! with a stable text exposition format.
//!
//! Where [`crate::sink`] records an *event stream* for post-hoc analysis,
//! the registry holds *live aggregates* — the surface a long-running
//! session server scrapes. It follows the same disabled-is-`None` pattern
//! as [`crate::TraceSink`]: a disabled registry hands out no-op handles, so
//! instrumented code pays one branch when metrics are off.
//!
//! Naming convention (enforced by review, documented here and in
//! DESIGN.md): `parfem_<subsystem>_<quantity>[_<unit>]`, with `_total` for
//! monotonic counters, `_seconds`/`_bytes` for unit-carrying values —
//! e.g. `parfem_solver_iterations_total`, `parfem_msg_sent_bytes_total`,
//! `parfem_solver_last_modeled_seconds`.
//!
//! Handles are `Send + Sync` and cheap to clone: counters and gauges are a
//! shared `AtomicU64` (gauges store `f64` bits), histograms a shared
//! `Mutex<Histogram>`. Rank threads can therefore record into one registry
//! concurrently without funnelling through the owner.

use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct RegistryShared {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

/// A cheap, cloneable, thread-safe handle to one live metrics surface — or
/// a no-op when disabled.
#[derive(Clone, Default)]
pub struct MetricsRegistry(Option<Arc<RegistryShared>>);

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        MetricsRegistry(Some(Arc::new(RegistryShared::default())))
    }

    /// The no-op registry. `const`, so it can sit in statics and defaults.
    pub const fn disabled() -> Self {
        MetricsRegistry(None)
    }

    /// Whether metrics are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Gets or creates the named monotonic counter.
    pub fn counter(&self, name: &str) -> MetricCounter {
        MetricCounter(self.0.as_ref().map(|shared| {
            Arc::clone(
                shared
                    .counters
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Gets or creates the named gauge (a last-write-wins `f64`).
    pub fn gauge(&self, name: &str) -> MetricGauge {
        MetricGauge(self.0.as_ref().map(|shared| {
            Arc::clone(
                shared
                    .gauges
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Gets or creates the named histogram over `u64` samples.
    pub fn histogram(&self, name: &str) -> MetricHistogram {
        MetricHistogram(self.0.as_ref().map(|shared| {
            Arc::clone(
                shared
                    .histograms
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Current value of a counter, if it exists (`None` when disabled or
    /// never touched). Convenience for tests and report code.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let shared = self.0.as_ref()?;
        let map = shared.counters.lock().unwrap();
        map.get(name).map(|c| c.load(Ordering::Relaxed))
    }

    /// Renders every metric in the stable text exposition format: one
    /// `# TYPE` comment per metric, names sorted, counters/gauges as
    /// `name value`, histograms exploded into `_count`/`_sum`/`_min`/
    /// `_max`/`_p50`/`_p95`/`_p99` lines. Returns an empty string when
    /// disabled.
    pub fn render(&self) -> String {
        let Some(shared) = self.0.as_ref() else {
            return String::new();
        };
        let mut out = String::new();
        for (name, c) in shared.counters.lock().unwrap().iter() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.load(Ordering::Relaxed));
        }
        for (name, g) in shared.gauges.lock().unwrap().iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", f64::from_bits(g.load(Ordering::Relaxed)));
        }
        for (name, h) in shared.histograms.lock().unwrap().iter() {
            let h = h.lock().unwrap();
            let _ = writeln!(out, "# TYPE {name} histogram");
            let _ = writeln!(out, "{name}_count {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_min {}", h.min());
            let _ = writeln!(out, "{name}_max {}", h.max());
            for p in [50.0, 95.0, 99.0] {
                let _ = writeln!(out, "{name}_p{} {}", p as u32, h.percentile(p));
            }
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsRegistry({})",
            if self.is_enabled() {
                "live"
            } else {
                "disabled"
            }
        )
    }
}

/// A handle to one monotonic counter (no-op when its registry is disabled).
#[derive(Clone, Debug, Default)]
pub struct MetricCounter(Option<Arc<AtomicU64>>);

impl MetricCounter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A handle to one gauge (no-op when its registry is disabled).
#[derive(Clone, Debug, Default)]
pub struct MetricGauge(Option<Arc<AtomicU64>>);

impl MetricGauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A handle to one histogram (no-op when its registry is disabled).
#[derive(Clone, Debug, Default)]
pub struct MetricHistogram(Option<Arc<Mutex<Histogram>>>);

impl MetricHistogram {
    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().record(v);
        }
    }

    /// Folds a whole pre-aggregated [`Histogram`] in (used when a rank
    /// merges its per-run message-size histogram at teardown).
    pub fn merge(&self, other: &Histogram) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().merge(other);
        }
    }

    /// A snapshot of the current distribution (`None` when disabled).
    pub fn snapshot(&self) -> Option<Histogram> {
        self.0.as_ref().map(|h| h.lock().unwrap().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("parfem_solves_total");
        c.incr();
        assert_eq!(c.get(), 0);
        let g = reg.gauge("parfem_last_res");
        g.set(1.5);
        assert_eq!(g.get(), 0.0);
        let h = reg.histogram("parfem_msg_bytes");
        h.observe(64);
        assert!(h.snapshot().is_none());
        assert_eq!(reg.render(), "");
        assert_eq!(reg.counter_value("parfem_solves_total"), None);
    }

    #[test]
    fn handles_share_state_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("parfem_x_total");
        let b = reg.counter("parfem_x_total");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter_value("parfem_x_total"), Some(7));
        let g1 = reg.gauge("parfem_y");
        let g2 = reg.gauge("parfem_y");
        g1.set(2.25);
        assert_eq!(g2.get(), 2.25);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = reg.counter("parfem_hits_total");
                let h = reg.histogram("parfem_sizes_bytes");
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        c.incr();
                        h.observe(i % 17);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("parfem_hits_total"), Some(8000));
        assert_eq!(
            reg.histogram("parfem_sizes_bytes")
                .snapshot()
                .unwrap()
                .count(),
            8000
        );
    }

    #[test]
    fn exposition_format_is_stable_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("parfem_b_total").add(2);
        reg.counter("parfem_a_total").add(1);
        reg.gauge("parfem_g_seconds").set(0.5);
        let h = reg.histogram("parfem_h_bytes");
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let text = reg.render();
        let a_pos = text.find("parfem_a_total 1").unwrap();
        let b_pos = text.find("parfem_b_total 2").unwrap();
        assert!(a_pos < b_pos, "counters must render sorted by name");
        assert!(text.contains("# TYPE parfem_g_seconds gauge"));
        assert!(text.contains("parfem_g_seconds 0.5"));
        assert!(text.contains("parfem_h_bytes_count 4"));
        assert!(text.contains("parfem_h_bytes_sum 106"));
        assert!(text.contains("parfem_h_bytes_p50 "));
        assert!(text.contains("parfem_h_bytes_p99 "));
        // Two renders are byte-identical when nothing changed.
        assert_eq!(text, reg.render());
    }
}
