//! Plain-text renderers for [`TraceReport`]: the `--profile` phase table,
//! a Table-1-style communication table, a convergence summary, and an
//! ASCII per-rank timeline over virtual time.

use crate::aggregate::TraceReport;
use std::fmt::Write as _;

fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "-".to_string()
    } else if s == 0.0 {
        "0".to_string()
    } else if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Renders the per-rank phase breakdown: one column per phase (in first-seen
/// order), virtual seconds per cell, a host-phase section (wall-clock) below.
pub fn render_phase_table(report: &TraceReport) -> String {
    let mut out = String::new();
    let mut phase_names: Vec<String> = Vec::new();
    for rank in &report.ranks {
        for phase in &rank.phases {
            if !phase_names.contains(&phase.name) {
                phase_names.push(phase.name.clone());
            }
        }
    }

    let _ = writeln!(out, "per-rank phase breakdown (virtual time)");
    let mut header = format!("{:>5}", "rank");
    for name in &phase_names {
        let _ = write!(header, "  {name:>14}");
    }
    let _ = write!(header, "  {:>14}", "end-of-rank");
    let _ = writeln!(out, "{header}");
    for rank in &report.ranks {
        let mut row = format!("{:>5}", rank.rank);
        for name in &phase_names {
            let cell = rank
                .phases
                .iter()
                .find(|p| &p.name == name)
                .map(|p| fmt_secs(p.virt_s))
                .unwrap_or_else(|| "-".to_string());
            let _ = write!(row, "  {cell:>14}");
        }
        let _ = write!(row, "  {:>14}", fmt_secs(rank.final_virt));
        let _ = writeln!(out, "{row}");
    }

    if !report.host_phases.is_empty() {
        let _ = writeln!(out, "host phases (wall clock)");
        for phase in &report.host_phases {
            let _ = writeln!(
                out,
                "{:>5}  {:>14}  x{}",
                phase.name,
                fmt_secs(phase.wall_s),
                phase.count
            );
        }
    }

    for rank in &report.ranks {
        if !rank.counters.is_empty() {
            let counters = rank
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "rank {} counters: {counters}", rank.rank);
        }
    }
    out
}

/// Renders event-counted communication totals per rank plus a sum row, and
/// (when iteration events are present) the paper's Table-1 quantities:
/// neighbour exchanges and reductions per iteration.
pub fn render_comm_table(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>7} {:>10} {:>7} {:>10} {:>7} {:>9} {:>7} {:>9} {:>12}",
        "rank",
        "sends",
        "sent-B",
        "recvs",
        "recv-B",
        "allred",
        "allred-B",
        "barr",
        "exchg",
        "flops"
    );
    let mut write_row = |label: &str, c: &crate::aggregate::CommCounts| {
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:>10} {:>7} {:>10} {:>7} {:>9} {:>7} {:>9} {:>12}",
            label,
            c.sends,
            c.bytes_sent,
            c.recvs,
            c.bytes_received,
            c.allreduces,
            c.allreduce_bytes,
            c.barriers,
            c.neighbor_exchanges,
            c.flops
        );
    };
    for rank in &report.ranks {
        write_row(&rank.rank.to_string(), &rank.comm);
    }
    write_row("all", &report.comm_totals());

    for rank in &report.ranks {
        if let Some(h) = &rank.msg_bytes {
            let _ = writeln!(
                out,
                "rank {} message sizes: n={} p50<={}B p95<={}B p99<={}B max={}B mean={:.1}B",
                rank.rank,
                h.count(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max(),
                h.mean()
            );
        }
    }

    if let Some((ex, ar)) = report.per_iteration_comm() {
        let _ = writeln!(
            out,
            "per iteration (Table 1): {ex:.2} neighbour exchanges, {ar:.2} reductions"
        );
    }
    out
}

/// Renders the convergence record: the solve summary line plus a residual
/// trace (sub-sampled past 32 iterations).
pub fn render_convergence(report: &TraceReport) -> String {
    let mut out = String::new();
    if let Some(s) = &report.solve {
        let _ = writeln!(
            out,
            "solve: {}{} precond={} {} in {} iterations ({} restarts), final rel res {:.3e}, modeled time {:.6e}s",
            s.variant,
            if s.overlap { " (overlapped)" } else { "" },
            s.precond,
            if s.converged { "converged" } else { "did NOT converge" },
            s.iterations,
            s.restarts,
            s.final_rel_res,
            s.modeled_time
        );
        if let (Some(count), Some(bytes)) = (s.alloc_count, s.alloc_bytes) {
            let per_iter = count as f64 / (s.iterations.max(1)) as f64;
            let _ = writeln!(
                out,
                "allocations: {count} calls / {bytes} bytes over the solve ({per_iter:.1} calls/iteration)"
            );
        }
    }
    if report.iters.is_empty() {
        return out;
    }
    let n = report.iters.len();
    let stride = n.div_ceil(32).max(1);
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>12} {:>7} {:>7} {:>7}",
        "iter", "cycle", "rel-res", "degree", "exchg", "allred"
    );
    for (i, rec) in report.iters.iter().enumerate() {
        if i % stride != 0 && i + 1 != n {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>12.4e} {:>7} {:>7} {:>7}",
            rec.iter, rec.cycle, rec.rel_res, rec.degree, rec.exchanges, rec.allreduces
        );
    }
    out
}

/// Renders a Gantt-style per-rank timeline over virtual time: one row per
/// rank, `width` columns spanning `[0, makespan]`, each cell showing the
/// phase open at that virtual instant (legend below; `·` = no phase open).
pub fn render_timeline(report: &TraceReport, width: usize) -> String {
    let width = width.clamp(10, 400);
    let span = report.makespan_virt();
    let mut out = String::new();
    if span <= 0.0 || report.ranks.is_empty() {
        let _ = writeln!(out, "(no virtual-time activity recorded)");
        return out;
    }

    // Assign one letter per distinct phase name, in first-seen rank order.
    let mut legend: Vec<String> = Vec::new();
    for rank in &report.ranks {
        for phase in &rank.phases {
            if !legend.contains(&phase.name) {
                legend.push(phase.name.clone());
            }
        }
    }
    let letter = |i: usize| (b'A' + (i % 26) as u8) as char;

    let _ = writeln!(
        out,
        "per-rank timeline over virtual time (0 .. {})",
        fmt_secs(span)
    );
    for rank in &report.ranks {
        let mut row = vec!['·'; width];
        for (pi, name) in legend.iter().enumerate() {
            if let Some(phase) = rank.phases.iter().find(|p| &p.name == name) {
                let a = (phase.first_open_virt / span * width as f64).floor() as usize;
                let b = (phase.last_close_virt / span * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                    *cell = letter(pi);
                }
            }
        }
        // Mark the end of this rank's activity.
        let end = ((rank.final_virt / span * width as f64) as usize).min(width - 1);
        for cell in row.iter_mut().skip(end + 1) {
            *cell = ' ';
        }
        let _ = writeln!(out, "{:>5} |{}|", rank.rank, row.iter().collect::<String>());
    }
    let legend_line = legend
        .iter()
        .enumerate()
        .map(|(i, name)| format!("{}={}", letter(i), name))
        .collect::<Vec<_>>()
        .join("  ");
    let _ = writeln!(out, "legend: {legend_line}  ·=outside spans");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent, Value};

    fn sample_report() -> TraceReport {
        let mut events = Vec::new();
        let mut push = |rank: Option<usize>,
                        t: f64,
                        kind: EventKind,
                        name: &str,
                        fields: Vec<(String, Value)>| {
            events.push(TraceEvent {
                rank,
                t_wall: t,
                t_virt: t,
                kind,
                name: name.to_string(),
                fields,
            });
        };
        push(None, 0.0, EventKind::SpanBegin, "assembly", vec![]);
        push(None, 0.5, EventKind::SpanEnd, "assembly", vec![]);
        for rank in 0..2usize {
            push(Some(rank), 0.0, EventKind::SpanBegin, "scaling", vec![]);
            push(Some(rank), 0.2, EventKind::SpanEnd, "scaling", vec![]);
            push(Some(rank), 0.2, EventKind::SpanBegin, "fgmres", vec![]);
            push(
                Some(rank),
                0.5,
                EventKind::Send,
                "",
                vec![
                    ("peer".into(), (1 - rank).into()),
                    ("bytes".into(), 80u64.into()),
                ],
            );
            push(Some(rank), 1.0, EventKind::SpanEnd, "fgmres", vec![]);
            push(
                Some(rank),
                1.0,
                EventKind::RankEnd,
                "",
                vec![
                    ("flops".into(), 500u64.into()),
                    ("t_virt_final".into(), 1.0.into()),
                ],
            );
        }
        push(
            Some(0),
            0.9,
            EventKind::Iter,
            "",
            vec![
                ("iter".into(), 1u64.into()),
                ("rel_res".into(), 1e-3.into()),
                ("degree".into(), 3u64.into()),
                ("exchanges".into(), 4u64.into()),
                ("allreduces".into(), 1u64.into()),
            ],
        );
        push(
            None,
            1.1,
            EventKind::Instant,
            "solve_summary",
            vec![
                ("converged".into(), 1u64.into()),
                ("iterations".into(), 1u64.into()),
                ("restarts".into(), 0u64.into()),
                ("final_rel_res".into(), 1e-3.into()),
                ("modeled_time".into(), 1.0.into()),
                ("precond".into(), "gls(m=3)".into()),
                ("variant".into(), "edd-enhanced".into()),
            ],
        );
        TraceReport::from_events(&events)
    }

    #[test]
    fn phase_table_lists_every_rank_and_phase() {
        let text = render_phase_table(&sample_report());
        assert!(text.contains("scaling"));
        assert!(text.contains("fgmres"));
        assert!(text.contains("assembly"));
        assert!(text.lines().any(|l| l.trim_start().starts_with("0 ")));
        assert!(text.lines().any(|l| l.trim_start().starts_with("1 ")));
    }

    #[test]
    fn comm_table_has_totals_row_and_table1_line() {
        let text = render_comm_table(&sample_report());
        assert!(text.lines().any(|l| l.trim_start().starts_with("all")));
        assert!(text.contains("per iteration (Table 1)"));
        assert!(text.contains("4.00 neighbour exchanges"));
    }

    #[test]
    fn convergence_shows_summary_and_residuals() {
        let text = render_convergence(&sample_report());
        assert!(text.contains("converged"));
        assert!(text.contains("edd-enhanced"));
        assert!(text.contains("1.0000e-3") || text.contains("1.0000e3") || text.contains("e-3"));
    }

    #[test]
    fn timeline_draws_one_row_per_rank_with_legend() {
        let text = render_timeline(&sample_report(), 40);
        let rows: Vec<_> = text.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 2);
        assert!(text.contains("legend:"));
        assert!(text.contains("A=scaling") || text.contains("A=fgmres"));
    }

    #[test]
    fn empty_report_renders_placeholders() {
        let report = TraceReport::from_events(&[]);
        assert!(render_timeline(&report, 40).contains("no virtual-time activity"));
        assert_eq!(render_convergence(&report), "");
    }
}
