//! A minimal generic JSON reader.
//!
//! The [`crate::jsonl`] codec is specialised to the flat one-object-per-line
//! trace schema; this module parses *arbitrary* JSON documents into a
//! [`Json`] tree. It exists for the two observability consumers that read
//! JSON they did not write themselves: the `parfem perf-gate` command
//! (diffing `BENCH_PERF.json` against `BENCH_BASELINE.json`) and the tests
//! that validate [`crate::chrome`] exporter output as well-formed
//! `trace_event` JSON. Like the rest of the crate it is `std`-only.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object member list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 scalar: the input came in as &str, so
                    // a boundary-aligned decode from here always succeeds.
                    let len = (2..=4)
                        .find(|&n| {
                            self.bytes
                                .get(self.pos..self.pos + n)
                                .is_some_and(|s| std::str::from_utf8(s).is_ok())
                        })
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + len]).unwrap();
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            r#"{"a": }"#,
            r#"{"a": 1} extra"#,
            "{\"a\": 1,}",
            "\"unterminated",
            "nul",
            "- 3",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_literals() {
        let doc = parse(r#"["A", "π"]"#).unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("A"));
        assert_eq!(items[1].as_str(), Some("π"));
    }

    #[test]
    fn parses_committed_perf_schema_shape() {
        let doc = parse(
            r#"{"schema": "parfem-bench-perf-v1",
                "spmv": { "n": 65536, "secs": 3.43e-4, "mflops": 1904.6 }}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("parfem-bench-perf-v1")
        );
        let spmv = doc.get("spmv").unwrap();
        assert_eq!(spmv.get("mflops").unwrap().as_f64(), Some(1904.6));
    }
}
