//! The shared sink and the per-rank single-threaded tracer.

use crate::event::{EventKind, TraceEvent, Value};
use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct SinkShared {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// A cheap, cloneable, thread-safe handle to one trace recording — or a
/// no-op when disabled.
///
/// The sink is threaded through the solver stack by value. Code that emits
/// events checks out a [`RankTracer`] (one per rank thread, plus one for the
/// host side); a disabled sink hands out `None`, so instrumented code pays a
/// single `Option` branch when tracing is off.
#[derive(Clone)]
pub struct TraceSink(Option<Arc<SinkShared>>);

impl TraceSink {
    /// A live sink: events accumulate in memory until [`TraceSink::take_events`].
    pub fn recording() -> Self {
        TraceSink(Some(Arc::new(SinkShared {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        })))
    }

    /// The no-op sink. `const`, so it can sit in statics and defaults.
    pub const fn disabled() -> Self {
        TraceSink(None)
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Checks out a tracer for one rank (`Some(rank)`) or for the host side
    /// (`None`). Returns `None` when the sink is disabled.
    ///
    /// The tracer buffers events locally (it is deliberately not `Sync`) and
    /// flushes them into the sink when dropped or on [`RankTracer::flush`].
    pub fn tracer(&self, rank: Option<usize>) -> Option<RankTracer> {
        self.0.as_ref().map(|shared| RankTracer {
            shared: Arc::clone(shared),
            rank,
            buf: RefCell::new(Vec::new()),
            counters: RefCell::new(Vec::new()),
        })
    }

    /// Shorthand for the host-side (driver) tracer.
    pub fn host_tracer(&self) -> Option<RankTracer> {
        self.tracer(None)
    }

    /// Drains every recorded event, sorted by wall-clock time (stable, so
    /// same-timestamp events keep emission order per rank).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        let Some(shared) = self.0.as_ref() else {
            return Vec::new();
        };
        let mut events = std::mem::take(&mut *shared.events.lock().unwrap());
        events.sort_by(|a, b| a.t_wall.total_cmp(&b.t_wall));
        events
    }

    /// Writes the current event stream as JSON-Lines without draining it.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let Some(shared) = self.0.as_ref() else {
            return Ok(());
        };
        let mut events = shared.events.lock().unwrap().clone();
        events.sort_by(|a, b| a.t_wall.total_cmp(&b.t_wall));
        w.write_all(crate::jsonl::encode_all(&events).as_bytes())
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceSink({})",
            if self.is_enabled() {
                "recording"
            } else {
                "disabled"
            }
        )
    }
}

/// A single-threaded event emitter owned by one rank thread (or the host).
///
/// Events are buffered in a `RefCell` and flushed to the shared sink in one
/// lock acquisition when the tracer drops — rank threads never contend on
/// the sink mutex inside the solve. Hot paths use [`RankTracer::add_count`],
/// which only bumps an integer and materialises a single `counter` event per
/// name at flush time.
pub struct RankTracer {
    shared: Arc<SinkShared>,
    rank: Option<usize>,
    buf: RefCell<Vec<TraceEvent>>,
    counters: RefCell<Vec<(String, u64)>>,
}

impl RankTracer {
    /// The rank this tracer stamps on its events (`None` = host).
    pub fn rank(&self) -> Option<usize> {
        self.rank
    }

    fn now(&self) -> f64 {
        self.shared.epoch.elapsed().as_secs_f64()
    }

    /// Emits one event with the given kind, name, virtual timestamp, and
    /// fields. The wall timestamp is taken here.
    pub fn emit(&self, kind: EventKind, name: &str, t_virt: f64, fields: Vec<(String, Value)>) {
        self.buf.borrow_mut().push(TraceEvent {
            rank: self.rank,
            t_wall: self.now(),
            t_virt,
            kind,
            name: name.to_string(),
            fields,
        });
    }

    /// Opens a named span at the given virtual time.
    pub fn span_begin(&self, name: &str, t_virt: f64) {
        self.emit(EventKind::SpanBegin, name, t_virt, Vec::new());
    }

    /// Closes the most recent open span with this name.
    pub fn span_end(&self, name: &str, t_virt: f64) {
        self.emit(EventKind::SpanEnd, name, t_virt, Vec::new());
    }

    /// Emits a point-in-time annotation.
    pub fn instant(&self, name: &str, t_virt: f64, fields: Vec<(String, Value)>) {
        self.emit(EventKind::Instant, name, t_virt, fields);
    }

    /// Bumps a named monotonic counter. O(#names) scan over a short vec; no
    /// event is created until flush, so this is safe on hot paths (SpMV row
    /// loops, per-message accounting).
    pub fn add_count(&self, name: &str, n: u64) {
        let mut counters = self.counters.borrow_mut();
        if let Some(entry) = counters.iter_mut().find(|(k, _)| k == name) {
            entry.1 += n;
        } else {
            counters.push((name.to_string(), n));
        }
    }

    /// Flushes buffered events (and materialised counters) into the sink.
    /// Called automatically on drop.
    pub fn flush(&self) {
        let mut counters = self.counters.borrow_mut();
        if !counters.is_empty() {
            let t_wall = self.now();
            let mut buf = self.buf.borrow_mut();
            for (name, value) in counters.drain(..) {
                buf.push(TraceEvent {
                    rank: self.rank,
                    t_wall,
                    t_virt: 0.0,
                    kind: EventKind::Counter,
                    name,
                    fields: vec![("value".to_string(), Value::U64(value))],
                });
            }
        }
        drop(counters);
        let mut buf = self.buf.borrow_mut();
        if !buf.is_empty() {
            self.shared.events.lock().unwrap().append(&mut buf);
        }
    }
}

impl Drop for RankTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for RankTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RankTracer(rank={:?})", self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_hands_out_no_tracers_and_no_events() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.tracer(Some(0)).is_none());
        assert!(sink.take_events().is_empty());
        let mut out = Vec::new();
        sink.write_jsonl(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn events_flush_on_drop_and_sort_by_wall_time() {
        let sink = TraceSink::recording();
        {
            let t0 = sink.tracer(Some(0)).unwrap();
            t0.span_begin("fgmres", 0.0);
            t0.span_end("fgmres", 1.0);
            // Not flushed yet: sink sees nothing.
            assert!(sink.take_events().is_empty());
            let t1 = sink.tracer(Some(1)).unwrap();
            t1.instant("hello", 0.5, vec![("x".into(), Value::U64(7))]);
        }
        let events = sink.take_events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].t_wall <= w[1].t_wall));
        // Drained.
        assert!(sink.take_events().is_empty());
    }

    #[test]
    fn counters_accumulate_into_one_event_per_name() {
        let sink = TraceSink::recording();
        {
            let t = sink.tracer(Some(3)).unwrap();
            t.add_count("spmv_rows", 100);
            t.add_count("spmv_rows", 50);
            t.add_count("precond_applies", 1);
        }
        let events = sink.take_events();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Counter)
            .collect();
        assert_eq!(counters.len(), 2);
        let rows = counters.iter().find(|e| e.name == "spmv_rows").unwrap();
        assert_eq!(rows.u64("value"), Some(150));
        assert_eq!(rows.rank, Some(3));
    }

    #[test]
    fn tracers_from_many_threads_merge() {
        let sink = TraceSink::recording();
        std::thread::scope(|scope| {
            for rank in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    let t = sink.tracer(Some(rank)).unwrap();
                    for i in 0..10u64 {
                        t.instant("tick", i as f64, vec![("i".into(), Value::U64(i))]);
                    }
                });
            }
        });
        let events = sink.take_events();
        assert_eq!(events.len(), 40);
        for rank in 0..4 {
            assert_eq!(events.iter().filter(|e| e.rank == Some(rank)).count(), 10);
        }
    }

    #[test]
    fn write_jsonl_is_parseable_and_non_draining() {
        let sink = TraceSink::recording();
        {
            let t = sink.host_tracer().unwrap();
            t.span_begin("assembly", 0.0);
            t.span_end("assembly", 0.0);
        }
        let mut out = Vec::new();
        sink.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let parsed = crate::jsonl::decode_all(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].rank, None);
        // Still available afterwards.
        assert_eq!(sink.take_events().len(), 2);
    }
}
