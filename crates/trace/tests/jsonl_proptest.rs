//! Property-based tests of the JSON-Lines trace codec: `decode(encode(ev))`
//! is the identity over arbitrary events (bitwise for finite floats), and
//! malformed input surfaces as typed, line-numbered errors — never a panic
//! or a silently mangled event.
//!
//! One deliberate asymmetry is excluded from the identity property and
//! pinned separately: a `Value::F64` whose value is a non-negative integer
//! (`4.0`) encodes as bare digits (`4`) and decodes as `Value::U64(4)` —
//! numerically exact, typed differently. The strategies below keep floats
//! non-integral so the round trip is exact including the value type.

use parfem_trace::jsonl::{self, ParseError};
use parfem_trace::{EventKind, TraceEvent, Value};
use proptest::prelude::*;

const KINDS: [EventKind; 11] = [
    EventKind::SpanBegin,
    EventKind::SpanEnd,
    EventKind::Instant,
    EventKind::Send,
    EventKind::Recv,
    EventKind::Allreduce,
    EventKind::Barrier,
    EventKind::Exchange,
    EventKind::Iter,
    EventKind::Counter,
    EventKind::RankEnd,
];

/// Strings whose characters exercise every escape path of the codec.
const TRICKY_STRINGS: [&str; 6] = [
    "",
    "quo\"te",
    "back\\slash",
    "tab\there and\nnewline",
    "uni–code αβ ⊕Σ",
    "ctrl\u{1}\u{1f}",
];

/// An arbitrary field value: unsigned counters, awkward floats (kept
/// non-integral — see the module docs), printable-ASCII strings, or strings
/// that need escaping.
fn value_strategy() -> impl Strategy<Value = Value> {
    (
        0usize..4,
        0u64..u64::MAX,
        -1e9f64..1e9,
        -60i32..0,
        prop::collection::vec(0u8..95, 0..12),
        0usize..TRICKY_STRINGS.len(),
    )
        .prop_map(|(pick, u, f, e, ascii, t)| match pick {
            0 => Value::U64(u),
            // Non-integral by construction: integral floats re-type to U64.
            1 => Value::F64(if f.fract() == 0.0 { f + 0.5 } else { f }),
            2 => Value::F64(2.0f64.powi(e) * 1.5),
            _ => {
                if t % 2 == 0 {
                    Value::Str(ascii.iter().map(|&b| (b + b' ') as char).collect())
                } else {
                    Value::Str(TRICKY_STRINGS[t].to_string())
                }
            }
        })
}

/// An arbitrary trace event: any kind, host (`None`) or rank-tagged, short
/// names, and up to six generated fields (keys prefixed `f` so they never
/// collide with the reserved `rank`/`tw`/`tv`/`kind`/`name` keys).
fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        0usize..65,
        -1e6f64..1e6,
        0f64..1e3,
        0usize..KINDS.len(),
        prop::collection::vec(0u8..26, 0..8),
        prop::collection::vec((0u32..1000, value_strategy()), 0..6),
    )
        .prop_map(|(rank, t_wall, t_virt, k, name, fields)| TraceEvent {
            rank: if rank == 64 { None } else { Some(rank) },
            t_wall,
            t_virt,
            kind: KINDS[k],
            name: name.iter().map(|&b| (b + b'a') as char).collect(),
            fields: fields
                .into_iter()
                .map(|(i, v)| (format!("f{i}"), v))
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_inverts_encode(ev in event_strategy()) {
        let line = jsonl::encode(&ev);
        let back = match jsonl::decode(&line) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::fail(format!("{line}: {e}"))),
        };
        prop_assert_eq!(&back, &ev, "line: {}", line);
    }

    #[test]
    fn stream_round_trips_through_decode_all(
        evs in prop::collection::vec(event_strategy(), 0..12)
    ) {
        let text = jsonl::encode_all(&evs);
        let back = match jsonl::decode_all(&text) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::fail(e.to_string())),
        };
        prop_assert_eq!(back, evs);
    }

    #[test]
    fn truncating_a_line_never_panics(ev in event_strategy(), cut in 0usize..96) {
        // A truncated tail either still parses (the cut landed after the
        // closing brace) or is a typed error — never a panic.
        let line = jsonl::encode(&ev);
        let cut = cut.min(line.len());
        prop_assume!(line.is_char_boundary(cut));
        let _ = jsonl::decode(&line[..cut]);
    }

    #[test]
    fn garbage_bytes_never_panic(junk in prop::collection::vec(0u8..95, 0..40)) {
        let junk: String = junk.iter().map(|&b| (b + b' ') as char).collect();
        let _ = jsonl::decode(&junk);
    }

    #[test]
    fn errors_carry_the_offending_line_number(
        ev in event_strategy(),
        n_good in 0usize..5,
    ) {
        let mut text = String::new();
        for _ in 0..n_good {
            text.push_str(&jsonl::encode(&ev));
            text.push('\n');
        }
        text.push_str("{\"rank\":0,\"tw\":0,\"tv\":0,\"kind\":\"warp\"}\n");
        let err: ParseError = jsonl::decode_all(&text).unwrap_err();
        prop_assert_eq!(err.line, n_good + 1);
        prop_assert!(err.reason.contains("warp"), "reason: {}", err.reason);
    }
}

#[test]
fn non_finite_floats_round_trip_to_nan() {
    // Non-finite values encode as null and come back as NaN — the one
    // lossy corner of the codec, pinned here so it stays deliberate.
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let ev = TraceEvent {
            rank: Some(1),
            t_wall: 0.0,
            t_virt: 0.0,
            kind: EventKind::Instant,
            name: "x".into(),
            fields: vec![("v".into(), Value::F64(v))],
        };
        let back = jsonl::decode(&jsonl::encode(&ev)).unwrap();
        assert!(back.f64("v").unwrap().is_nan(), "for {v}");
    }
}

#[test]
fn integral_floats_retype_to_u64() {
    // The documented asymmetry the strategies above avoid.
    let ev = TraceEvent {
        rank: Some(0),
        t_wall: 0.0,
        t_virt: 0.0,
        kind: EventKind::Counter,
        name: "c".into(),
        fields: vec![("v".into(), Value::F64(4.0))],
    };
    let back = jsonl::decode(&jsonl::encode(&ev)).unwrap();
    assert_eq!(back.fields[0].1, Value::U64(4));
}

#[test]
fn typed_errors_for_malformed_shapes() {
    // Field-level type violations are typed errors, not panics or silent
    // coercions.
    for (line, needle) in [
        (
            "{\"rank\":\"zero\",\"tw\":0,\"tv\":0,\"kind\":\"send\"}",
            "rank",
        ),
        ("{\"rank\":0,\"tw\":\"x\",\"tv\":0,\"kind\":\"send\"}", "tw"),
        ("{\"rank\":0,\"tw\":0,\"tv\":0,\"kind\":7}", "kind"),
        ("{\"rank\":0,\"tw\":0,\"tv\":0}", "kind"),
        (
            "{\"rank\":0,\"tw\":0,\"tv\":0,\"kind\":\"send\"} trailing",
            "trailing",
        ),
        (
            "{\"rank\":0,\"tw\":0,\"tv\":0,\"kind\":\"send\"",
            "expected",
        ),
    ] {
        let err = jsonl::decode(line).unwrap_err();
        assert!(
            err.to_lowercase().contains(needle),
            "{line}: expected {needle:?} in {err:?}"
        );
    }
}
