//! The paper's benchmark problems: the cantilever plate family of Table 2.
//!
//! Fig. 9 describes a rectangular cantilever discretized with 4-node
//! quadrilaterals, clamped along one edge, loaded at the opposite edge. The
//! convergence experiments use a "pulling load" (axial tension); the
//! default material is the dimensionless unit material since only iteration
//! counts and timings are reported.

use parfem_fem::{assembly, Material, Physics};
use parfem_mesh::{
    DofMap, Edge, ElementPartition, Face, HexMesh, NodePartition, PartitionerSpec, QuadMesh,
};

/// The ten meshes of the paper's Table 2 as `(nXele, nYele)`.
pub const PAPER_MESHES: [(usize, usize); 10] = [
    (7, 1),
    (40, 8),
    (40, 20),
    (50, 50),
    (60, 60),
    (70, 70),
    (80, 80),
    (90, 90),
    (100, 100),
    (200, 100),
];

/// How the free end of the cantilever is loaded (total force).
#[derive(Debug, Clone, Copy)]
pub enum LoadCase {
    /// Axial tension along `+x` on the right edge — the paper's
    /// "pulling load".
    PullX(f64),
    /// Transverse shear along `y` on the right edge (classic tip-loaded
    /// cantilever bending).
    ShearY(f64),
}

/// A ready-to-solve cantilever problem.
#[derive(Debug, Clone)]
pub struct CantileverProblem {
    /// The structured quadrilateral mesh.
    pub mesh: QuadMesh,
    /// DOF map with the left edge clamped.
    pub dof_map: DofMap,
    /// Material.
    pub material: Material,
    /// Global load vector (`dof_map.n_dofs()` long).
    pub loads: Vec<f64>,
}

impl CantileverProblem {
    /// Builds an `nx × ny`-element cantilever, clamped along `x = 0`,
    /// loaded on the right edge per `load`.
    pub fn new(nx: usize, ny: usize, material: Material, load: LoadCase) -> Self {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dof_map = DofMap::new(mesh.n_nodes());
        dof_map.clamp_edge(&mesh, Edge::Left);
        let mut loads = vec![0.0; dof_map.n_dofs()];
        match load {
            LoadCase::PullX(f) => {
                assembly::edge_load(&mesh, &dof_map, Edge::Right, f, 0.0, &mut loads)
            }
            LoadCase::ShearY(f) => {
                assembly::edge_load(&mesh, &dof_map, Edge::Right, 0.0, f, &mut loads)
            }
        }
        CantileverProblem {
            mesh,
            dof_map,
            material,
            loads,
        }
    }

    /// The paper's `Mesh{k}` (1-based, Table 2) with the unit material and
    /// a unit pulling load.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= 10`.
    pub fn paper_mesh(k: usize) -> Self {
        assert!((1..=10).contains(&k), "paper meshes are Mesh1..Mesh10");
        let (nx, ny) = PAPER_MESHES[k - 1];
        Self::new(nx, ny, Material::unit(), LoadCase::PullX(1.0))
    }

    /// The number of free equations (the paper's `nEqn`).
    pub fn n_eqn(&self) -> usize {
        self.dof_map.n_free()
    }

    /// Total DOFs including constrained ones.
    pub fn n_dofs(&self) -> usize {
        self.dof_map.n_dofs()
    }

    /// Assembles the constrained static system `K u = f`.
    pub fn static_system(&self) -> assembly::StaticSystem {
        assembly::build_static(&self.mesh, &self.dof_map, &self.material, &self.loads)
    }

    /// The borrowed [`parfem_dd::Problem`] view of this cantilever — what
    /// [`parfem_dd::SolveSession::new`] takes.
    pub fn as_problem(&self) -> parfem_dd::Problem<'_> {
        parfem_dd::Problem::new(&self.mesh, &self.dof_map, &self.material, &self.loads)
    }
}

/// The mesh backing a [`PhysicsProblem`] workload.
#[derive(Debug, Clone)]
pub enum WorkloadMesh {
    /// A 2-D structured quadrilateral mesh.
    Quad(QuadMesh),
    /// A 3-D structured hexahedral mesh.
    Hex(HexMesh),
}

/// A ready-to-solve benchmark on the *physics axis*: the paper's cantilever
/// geometry instantiated for any supported [`Physics`], so workloads are
/// orthogonal to strategy × preconditioner × machine.
///
/// - [`Physics::Elasticity2d`] — the paper's plane-stress cantilever
///   (identical to [`CantileverProblem`]),
/// - [`Physics::Heat2d`] — scalar steady conduction on the same geometry:
///   temperature fixed at the root, a distributed flux on the free edge,
/// - [`Physics::Elasticity3d`] — an 8-node hexahedral cantilever bar,
///   clamped on the `x = 0` face, loaded on the opposite face.
#[derive(Debug, Clone)]
pub struct PhysicsProblem {
    /// Which physics this workload assembles.
    pub physics: Physics,
    /// The mesh (quadrilateral for 2-D physics, hexahedral for 3-D).
    pub mesh: WorkloadMesh,
    /// DOF map with the cantilever root constrained.
    pub dof_map: DofMap,
    /// Material.
    pub material: Material,
    /// Global load vector (`dof_map.n_dofs()` long).
    pub loads: Vec<f64>,
}

impl PhysicsProblem {
    /// Builds the cantilever workload for `physics` on an
    /// `nx × ny (× nz)`-element grid (`nz` ignored by the 2-D physics).
    ///
    /// The load case carries over per physics: elasticity keeps its
    /// pull/shear meaning ([`LoadCase::PullX`] pulls along the bar axis,
    /// [`LoadCase::ShearY`] loads transversely); for scalar heat the load's
    /// magnitude becomes the total boundary flux into the free edge.
    pub fn cantilever(
        physics: Physics,
        (nx, ny, nz): (usize, usize, usize),
        material: Material,
        load: LoadCase,
    ) -> Self {
        match physics {
            Physics::Elasticity2d => {
                CantileverProblem::new(nx, ny, material, load).into_physics_problem()
            }
            Physics::Heat2d => {
                let mesh = QuadMesh::cantilever(nx, ny);
                let mut dof_map = DofMap::with_dofs(mesh.n_nodes(), 1);
                dof_map.clamp_edge(&mesh, Edge::Left);
                let mut loads = vec![0.0; dof_map.n_dofs()];
                let q = match load {
                    LoadCase::PullX(f) | LoadCase::ShearY(f) => f,
                };
                assembly::edge_source(&mesh, &dof_map, Edge::Right, q, &mut loads);
                PhysicsProblem {
                    physics,
                    mesh: WorkloadMesh::Quad(mesh),
                    dof_map,
                    material,
                    loads,
                }
            }
            Physics::Elasticity3d => {
                let mesh = HexMesh::cantilever(nx, ny, nz);
                let mut dof_map = DofMap::with_dofs(mesh.n_nodes(), 3);
                for node in mesh.face_nodes(Face::XMin) {
                    dof_map.clamp_node(node);
                }
                let mut loads = vec![0.0; dof_map.n_dofs()];
                let f = match load {
                    LoadCase::PullX(f) => [f, 0.0, 0.0],
                    LoadCase::ShearY(f) => [0.0, f, 0.0],
                };
                assembly::face_load(&mesh, &dof_map, Face::XMax, f, &mut loads);
                PhysicsProblem {
                    physics,
                    mesh: WorkloadMesh::Hex(mesh),
                    dof_map,
                    material,
                    loads,
                }
            }
        }
    }

    /// The number of free equations (the paper's `nEqn`).
    pub fn n_eqn(&self) -> usize {
        self.dof_map.n_free()
    }

    /// Total DOFs including constrained ones.
    pub fn n_dofs(&self) -> usize {
        self.dof_map.n_dofs()
    }

    /// Assembles the constrained static system `K u = f` for this
    /// problem's physics.
    pub fn static_system(&self) -> assembly::StaticSystem {
        match (&self.mesh, self.physics) {
            (WorkloadMesh::Quad(m), Physics::Elasticity2d) => {
                assembly::build_static(m, &self.dof_map, &self.material, &self.loads)
            }
            (WorkloadMesh::Quad(m), Physics::Heat2d) => {
                assembly::build_static_heat(m, &self.dof_map, &self.material, &self.loads)
            }
            (WorkloadMesh::Hex(m), Physics::Elasticity3d) => {
                assembly::build_static_hex(m, &self.dof_map, &self.material, &self.loads)
            }
            _ => unreachable!("mesh/physics pairing validated at construction"),
        }
    }

    /// The borrowed [`parfem_dd::Problem`] view — what
    /// [`parfem_dd::SolveSession::new`] takes.
    pub fn as_problem(&self) -> parfem_dd::Problem<'_> {
        match (&self.mesh, self.physics) {
            (WorkloadMesh::Quad(m), Physics::Elasticity2d) => {
                parfem_dd::Problem::new(m, &self.dof_map, &self.material, &self.loads)
            }
            (WorkloadMesh::Quad(m), Physics::Heat2d) => {
                parfem_dd::Problem::heat(m, &self.dof_map, &self.material, &self.loads)
            }
            (WorkloadMesh::Hex(m), Physics::Elasticity3d) => {
                parfem_dd::Problem::elasticity3d(m, &self.dof_map, &self.material, &self.loads)
            }
            _ => unreachable!("mesh/physics pairing validated at construction"),
        }
    }

    /// The EDD element partition `spec` produces for `parts` subdomains —
    /// the partitioner registry is generic over structured cell meshes, so
    /// every spec works for both mesh families.
    pub fn element_partition(&self, spec: &PartitionerSpec, parts: usize) -> ElementPartition {
        match &self.mesh {
            WorkloadMesh::Quad(m) => spec.element_partition(m, parts),
            WorkloadMesh::Hex(m) => spec.element_partition(m, parts),
        }
    }

    /// The RDD node partition into `parts` vertical strips (slabs of
    /// constant-`x` node columns for hexahedra).
    pub fn node_partition(&self, parts: usize) -> NodePartition {
        match &self.mesh {
            WorkloadMesh::Quad(m) => NodePartition::strips_x(m, parts),
            WorkloadMesh::Hex(m) => NodePartition::strips_x_hex(m, parts),
        }
    }
}

impl CantileverProblem {
    /// Wraps this cantilever as the equivalent
    /// [`Physics::Elasticity2d`] [`PhysicsProblem`].
    pub fn into_physics_problem(self) -> PhysicsProblem {
        PhysicsProblem {
            physics: Physics::Elasticity2d,
            mesh: WorkloadMesh::Quad(self.mesh),
            dof_map: self.dof_map,
            material: self.material,
            loads: self.loads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_meshes_match_table2_node_counts() {
        let expected_nodes = [16, 369, 861, 2601, 3721, 5041, 6561, 8281, 10201, 20301];
        for (k, &nn) in (1..=10).zip(&expected_nodes) {
            let p = CantileverProblem::paper_mesh(k);
            assert_eq!(p.mesh.n_nodes(), nn, "Mesh{k}");
        }
    }

    #[test]
    fn mesh1_neqn_matches_paper() {
        // Table 2 lists nEqn = 28 for Mesh1 (left edge clamped).
        assert_eq!(CantileverProblem::paper_mesh(1).n_eqn(), 28);
    }

    #[test]
    fn load_cases_put_force_on_the_right_edge() {
        let p = CantileverProblem::new(4, 2, Material::unit(), LoadCase::PullX(3.0));
        let fx: f64 = (0..p.mesh.n_nodes())
            .map(|n| p.loads[p.dof_map.dof(n, 0)])
            .sum();
        assert!((fx - 3.0).abs() < 1e-12);
        let q = CantileverProblem::new(4, 2, Material::unit(), LoadCase::ShearY(-2.0));
        let fy: f64 = (0..q.mesh.n_nodes())
            .map(|n| q.loads[q.dof_map.dof(n, 1)])
            .sum();
        assert!((fy + 2.0).abs() < 1e-12);
    }

    #[test]
    fn static_system_is_well_posed() {
        let p = CantileverProblem::new(5, 2, Material::unit(), LoadCase::PullX(1.0));
        let sys = p.static_system();
        assert_eq!(sys.stiffness.n_rows(), p.n_dofs());
        assert!(sys.stiffness.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "Mesh1..Mesh10")]
    fn out_of_range_mesh_rejected() {
        CantileverProblem::paper_mesh(0);
    }
}
