//! `parfem` — command-line driver for the solver stack.
//!
//! ```text
//! parfem meshes                          # list the paper's Table 2 meshes
//! parfem spectrum --mesh 40x8            # spectrum bounds of the scaled operator
//! parfem solve --mesh 100x100 --parts 8 --strategy edd --precond gls:7 \
//!              --machine origin --tol 1e-6 --load pull:1.0 [--mtx-out prefix] \
//!              [--trace run.jsonl] [--profile] [--metrics]
//! parfem report --trace run.jsonl        # phase/comm/convergence report from a trace
//! parfem report --trace run.jsonl --critical-path   # cross-rank critical path
//! parfem export-trace --trace run.jsonl --out run.trace.json   # Perfetto/chrome
//! parfem perf-gate                       # CI perf-regression gate over BENCH_*.json
//! ```
//!
//! Argument parsing is deliberately dependency-free.

use parfem::perfgate;
use parfem::prelude::*;
use parfem::sparse::{gershgorin, io as mmio, scaling::scale_system, KernelPolicy};
use parfem::trace::{
    export_chrome_trace, jsonl, render_comm_table, render_convergence, render_critical_path,
    render_phase_table, render_timeline, CritPath, MetricsRegistry,
};
use std::process::ExitCode;

// With `--features count-allocs`, count every allocation so solve summaries
// (and `parfem report`) include `alloc_count` / `alloc_bytes`.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: parfem::trace::alloc::CountingAlloc = parfem::trace::alloc::CountingAlloc;

fn usage() -> ExitCode {
    // The `--precond` and `--machine` help lines come straight from the
    // registries, so the usage screen can never drift from the parsers.
    let precond_help = parfem::precond::registry::grammar_help()
        .lines()
        .map(|l| format!("                        {l}"))
        .collect::<Vec<_>>()
        .join("\n");
    eprintln!(
        "usage:
  parfem meshes
  parfem spectrum --mesh NXxNY | --paper-mesh K
  parfem solve [options]
  parfem report --trace FILE.jsonl [--critical-path] [--critpath-json FILE]
  parfem export-trace --trace FILE.jsonl --out FILE.trace.json
  parfem perf-gate [--perf FILE] [--baseline FILE]

solve options:
  --problem NAME        workload physics: {problems}
                        (default elasticity2d, the paper's cantilever)
  --mesh NXxNY[xNZ]     element grid (e.g. 100x100, or 24x8x8 for the
                        3-D hexahedral cantilever)
  --paper-mesh K        use Table 2 Mesh K (1..10) instead of --mesh
                        (elasticity2d only)
  --distort AMP         distort interior nodes by AMP cell widths (0..0.5;
                        elasticity2d only)
  --load pull:F|shear:F load case and total force (default pull:1.0;
                        heat2d reads the magnitude as the total edge flux)
  --parts P             number of subdomains/ranks (default 4)
  --strategy edd|rdd    decomposition strategy (default edd)
  --partitioner SPEC    element partitioner: strips|blocks|graph:<seed>
                        (default strips; EDD only — RDD always partitions
                        node columns into strips)
  --variant basic|enhanced   EDD algorithm variant (default enhanced)
  --precond SPEC        preconditioner (default gls:7), one of:
{precond_help}
  --machine NAME        virtual machine model: {machines} (default origin)
  --overlap             nonblocking interface exchange overlapped with the
                        interior matvec (bit-identical; changes modeled time)
  --tol T               relative residual tolerance (default 1e-6)
  --restart M           GMRES restart dimension (default 25)
  --kernels POLICY      kernel variant: scalar|simd|sellcs|bcsr|auto
                        (default scalar, the bit-exact reference; auto
                        micro-benchmarks the formats per local matrix)
  --faults SEED:P       deterministic chaos: inject drops/duplicates/delays/
                        reorders at intensity P in [0,1], seeded by SEED
                        (bit-reproducible; recoverable faults change only
                        the modeled time)
  --comm-timeout S      wall-clock watchdog per blocking wait, seconds
                        (default 30)
  --comm-retries N      retransmission budget per message under --faults
                        (default 30)
  --trace FILE.jsonl    record a structured event trace to FILE
  --profile             print per-rank phase/comm tables after the solve
  --metrics             print the metrics-registry exposition after the solve
  --mtx-out PREFIX      write PREFIX_k.mtx / PREFIX_f.mtx / PREFIX_u.mtx

report options:
  --trace FILE.jsonl    trace file written by `parfem solve --trace`
  --width N             timeline width in columns (default 72)
  --critical-path       reconstruct and print the cross-rank critical path
  --critpath-json FILE  also write the critical path as JSON to FILE

export-trace options:
  --trace FILE.jsonl    trace file written by `parfem solve --trace`
  --out FILE            chrome trace_event JSON (open in Perfetto/about:tracing)

perf-gate options:
  --perf FILE           bench snapshot (default BENCH_PERF.json)
  --baseline FILE       frozen reference (default BENCH_BASELINE.json)
                        exits non-zero when any metric regresses",
        problems = Physics::ALL.map(|p| p.name()).join("|"),
        machines = MachineModel::NAMES.join("|"),
    );
    ExitCode::from(2)
}

struct Args(Vec<String>);

impl Args {
    fn value_of(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn has_flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }
}

/// `NXxNY` or `NXxNYxNZ` (the 3-D depth defaults to 1 when absent).
fn parse_grid(s: &str) -> Option<(usize, usize, usize)> {
    let mut it = s.split(['x', 'X']);
    let nx = it.next()?.parse().ok()?;
    let ny = it.next()?.parse().ok()?;
    let nz = match it.next() {
        None => 1,
        Some(z) => z.parse().ok()?,
    };
    if it.next().is_some() {
        return None;
    }
    Some((nx, ny, nz))
}

fn build_problem(args: &Args) -> Result<PhysicsProblem, String> {
    let physics_name = args.value_of("--problem").unwrap_or("elasticity2d");
    let physics = Physics::parse(physics_name).ok_or_else(|| {
        format!(
            "unknown problem {physics_name}; expected {}",
            Physics::ALL.map(|p| p.name()).join("|")
        )
    })?;
    let load = match args.value_of("--load") {
        None => LoadCase::PullX(1.0),
        Some(spec) => {
            let (kind, mag) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad --load {spec}"))?;
            let f: f64 = mag.parse().map_err(|_| format!("bad force {mag}"))?;
            match kind {
                "pull" => LoadCase::PullX(f),
                "shear" => LoadCase::ShearY(f),
                _ => return Err(format!("unknown load kind {kind}")),
            }
        }
    };
    if let Some(k) = args.value_of("--paper-mesh") {
        if physics != Physics::Elasticity2d {
            return Err(format!(
                "--paper-mesh is the paper's 2-D elasticity family; \
                 pass --mesh for --problem {physics}"
            ));
        }
        let k: usize = k.parse().map_err(|_| "bad --paper-mesh".to_string())?;
        return Ok(CantileverProblem::paper_mesh(k).into_physics_problem());
    }
    let grid = args
        .value_of("--mesh")
        .ok_or_else(|| "need --mesh or --paper-mesh".to_string())?;
    let (nx, ny, nz) = parse_grid(grid).ok_or_else(|| format!("bad --mesh {grid}"))?;
    if physics != Physics::Elasticity3d && grid.matches(['x', 'X']).count() > 1 {
        return Err(format!("--problem {physics} takes a 2-D grid NXxNY"));
    }
    if let Some(a) = args.value_of("--distort") {
        if physics != Physics::Elasticity2d {
            return Err("--distort supports --problem elasticity2d only".to_string());
        }
        let amp: f64 = a.parse().map_err(|_| "bad --distort".to_string())?;
        let mesh = QuadMesh::distorted(nx, ny, nx as f64, ny as f64, amp, 0x5eed);
        let mut dof_map = DofMap::new(mesh.n_nodes());
        dof_map.clamp_edge(&mesh, Edge::Left);
        let mut loads = vec![0.0; dof_map.n_dofs()];
        match load {
            LoadCase::PullX(f) => {
                parfem::fem::assembly::edge_load(&mesh, &dof_map, Edge::Right, f, 0.0, &mut loads)
            }
            LoadCase::ShearY(f) => {
                parfem::fem::assembly::edge_load(&mesh, &dof_map, Edge::Right, 0.0, f, &mut loads)
            }
        }
        return Ok(CantileverProblem {
            mesh,
            dof_map,
            material: Material::unit(),
            loads,
        }
        .into_physics_problem());
    }
    Ok(PhysicsProblem::cantilever(
        physics,
        (nx, ny, nz),
        Material::unit(),
        load,
    ))
}

fn cmd_meshes() -> ExitCode {
    println!("{:>7} {:>12} {:>8} {:>8}", "Mesh", "grid", "nNode", "nEqn");
    for k in 1..=10 {
        let p = CantileverProblem::paper_mesh(k);
        let (nx, ny) = PAPER_MESHES[k - 1];
        println!(
            "{:>7} {:>12} {:>8} {:>8}",
            format!("Mesh{k}"),
            format!("{nx}x{ny}"),
            p.mesh.n_nodes(),
            p.n_eqn()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_spectrum(args: &Args) -> ExitCode {
    let problem = match build_problem(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let sys = problem.static_system();
    let (a, _, _) = scale_system(&sys.stiffness, &sys.rhs).expect("square system");
    let lmax = gershgorin::power_iteration_lambda_max(&a, 50_000, 1e-12);
    let lmin = gershgorin::power_iteration_lambda_min(&a, 50_000, 1e-12);
    let (glo, ghi) = gershgorin::gershgorin_interval(&a);
    println!("scaled operator ({} equations):", problem.n_eqn());
    println!("  power iteration: lambda in [{lmin:.4e}, {lmax:.6}]");
    println!("  gershgorin:      lambda in [{glo:.4}, {ghi:.4}]");
    println!(
        "  condition estimate kappa ~ {:.3e}",
        lmax / lmin.max(1e-300)
    );
    println!("  suggested theta: (eps, 1)  [paper default after norm-1 scaling]");
    ExitCode::SUCCESS
}

fn cmd_solve(args: &Args) -> ExitCode {
    let problem = match build_problem(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let parts: usize = args
        .value_of("--parts")
        .map(|s| s.parse().unwrap_or(4))
        .unwrap_or(4);
    let machine_name = args.value_of("--machine").unwrap_or("origin");
    let machine = match MachineModel::by_name(machine_name) {
        Ok(m) => m,
        Err(e) => {
            // The typed error renders the full preset list itself.
            eprintln!("error: {e}");
            return usage();
        }
    };
    let precond = match PrecondSpec::parse(args.value_of("--precond").unwrap_or("gls:7")) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let variant = match args.value_of("--variant").unwrap_or("enhanced") {
        "basic" => EddVariant::Basic,
        "enhanced" => EddVariant::Enhanced,
        v => {
            eprintln!("unknown variant {v}");
            return usage();
        }
    };
    let faults = match args.value_of("--faults") {
        None => None,
        Some(spec) => match FaultPlan::from_spec(spec) {
            Ok(plan) => {
                let retries = args
                    .value_of("--comm-retries")
                    .map(|s| s.parse().unwrap_or(30))
                    .unwrap_or(30);
                Some(plan.with_retry_policy(retries, 1e-3, 2.0))
            }
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        },
    };
    let metrics = if args.has_flag("--metrics") {
        MetricsRegistry::new()
    } else {
        MetricsRegistry::disabled()
    };
    let kernels = match args.value_of("--kernels") {
        None => KernelPolicy::Scalar,
        Some(s) => match KernelPolicy::parse(s) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        },
    };
    let cfg = SolverConfig {
        gmres: GmresConfig {
            tol: args
                .value_of("--tol")
                .map(|s| s.parse().unwrap_or(1e-6))
                .unwrap_or(1e-6),
            restart: args
                .value_of("--restart")
                .map(|s| s.parse().unwrap_or(25))
                .unwrap_or(25),
            max_iters: 200_000,
            kernels,
            ..Default::default()
        },
        precond,
        variant,
        overlap: args.has_flag("--overlap"),
        faults,
        comm_timeout: std::time::Duration::from_secs_f64(
            args.value_of("--comm-timeout")
                .map(|s| s.parse().unwrap_or(30.0))
                .unwrap_or(30.0),
        ),
        metrics: metrics.clone(),
    };

    let trace_path = args.value_of("--trace");
    let profile = args.has_flag("--profile");
    let sink = if trace_path.is_some() || profile {
        TraceSink::recording()
    } else {
        TraceSink::disabled()
    };

    let partitioner =
        match PartitionerSpec::parse(args.value_of("--partitioner").unwrap_or("strips")) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
    let strategy_name = args.value_of("--strategy").unwrap_or("edd");
    let strategy = match strategy_name {
        "edd" => Strategy::Edd(problem.element_partition(&partitioner, parts)),
        "rdd" => {
            if partitioner != PartitionerSpec::Strips {
                eprintln!("error: --partitioner {partitioner} only applies to --strategy edd");
                return usage();
            }
            Strategy::Rdd(problem.node_partition(parts))
        }
        s => {
            eprintln!("unknown strategy {s}");
            return usage();
        }
    };
    println!(
        "solving {} {} equations with {} on {} ranks ({}, {}, {})",
        problem.n_eqn(),
        problem.physics,
        cfg.precond.name(),
        parts,
        strategy_name,
        partitioner,
        machine.name
    );
    let result = SolveSession::new(problem.as_problem())
        .strategy(strategy)
        .config(cfg)
        .machine(machine)
        .trace(&sink)
        .run();
    let out = match result {
        Ok(out) => out,
        Err(failures) => {
            eprintln!("error: {failures}");
            for (rank, e) in &failures.errors {
                eprintln!("  rank {rank}: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    // Verify against the assembled system.
    let sys = problem.static_system();
    let r = sys.stiffness.spmv(&out.u);
    let res: f64 = r
        .iter()
        .zip(&sys.rhs)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        .sqrt();
    let rhs_norm: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!(
        "converged = {}, iterations = {}, restarts = {}",
        out.history.converged(),
        out.history.iterations(),
        out.history.restarts
    );
    println!(
        "true relative residual = {:.3e}, modeled time = {:.4} s",
        res / rhs_norm.max(1e-300),
        out.modeled_time
    );
    let s0 = &out.reports[0].stats;
    println!(
        "rank 0: {} exchanges, {} reductions, {} bytes sent, {:.0} Mflops counted",
        s0.neighbor_exchanges,
        s0.allreduces,
        s0.bytes_sent,
        s0.flops as f64 / 1e6
    );

    if metrics.is_enabled() {
        print!("\n{}", metrics.render());
    }

    if sink.is_enabled() {
        let events = sink.take_events();
        if let Some(path) = trace_path {
            match std::fs::write(path, jsonl::encode_all(&events)) {
                Ok(()) => println!("wrote {} trace events to {path}", events.len()),
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if profile {
            let report = TraceReport::from_events(&events);
            print!("\n{}", render_phase_table(&report));
            print!("\n{}", render_comm_table(&report));
            print!("\n{}", render_timeline(&report, 72));
        }
    }

    if let Some(prefix) = args.value_of("--mtx-out") {
        let write = |suffix: &str, f: &dyn Fn(&mut std::fs::File) -> std::io::Result<()>| {
            let path = format!("{prefix}_{suffix}.mtx");
            let mut file = std::fs::File::create(&path).expect("create mtx file");
            f(&mut file).expect("write mtx");
            println!("wrote {path}");
        };
        write("k", &|w| mmio::write_matrix(w, &sys.stiffness));
        write("f", &|w| mmio::write_vector(w, &sys.rhs));
        write("u", &|w| mmio::write_vector(w, &out.u));
    }
    if out.history.converged() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_report(args: &Args) -> ExitCode {
    let Some(path) = args.value_of("--trace") else {
        eprintln!("error: report needs --trace FILE.jsonl");
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match jsonl::decode_all(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let width = args
        .value_of("--width")
        .and_then(|s| s.parse().ok())
        .unwrap_or(72);
    let report = TraceReport::from_events(&events);
    print!("{}", render_phase_table(&report));
    print!("\n{}", render_comm_table(&report));
    print!("\n{}", render_convergence(&report));
    print!("\n{}", render_timeline(&report, width));
    if args.has_flag("--critical-path") || args.value_of("--critpath-json").is_some() {
        let cp = CritPath::from_events(&events);
        if args.has_flag("--critical-path") {
            print!("\n{}", render_critical_path(&cp));
        }
        if let Some(out) = args.value_of("--critpath-json") {
            if let Err(e) = std::fs::write(out, cp.to_json()) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote critical path to {out}");
        }
    }
    ExitCode::SUCCESS
}

/// `parfem export-trace`: convert a recorded `.jsonl` trace into the
/// chrome `trace_event` JSON that Perfetto / `about:tracing` load directly.
fn cmd_export_trace(args: &Args) -> ExitCode {
    let Some(path) = args.value_of("--trace") else {
        eprintln!("error: export-trace needs --trace FILE.jsonl");
        return usage();
    };
    let Some(out) = args.value_of("--out") else {
        eprintln!("error: export-trace needs --out FILE.trace.json");
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match jsonl::decode_all(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let chrome = export_chrome_trace(&events);
    match std::fs::write(out, &chrome) {
        Ok(()) => {
            println!("wrote {} events to {out} (open in Perfetto)", events.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `parfem perf-gate`: the CI regression gate over the committed bench
/// snapshots. Exits non-zero when any metric regresses past its threshold.
fn cmd_perf_gate(args: &Args) -> ExitCode {
    let perf_path = args.value_of("--perf").unwrap_or("BENCH_PERF.json");
    let baseline_path = args.value_of("--baseline").unwrap_or("BENCH_BASELINE.json");
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
    };
    let (Some(perf), Some(baseline)) = (read(perf_path), read(baseline_path)) else {
        return ExitCode::FAILURE;
    };
    match perfgate::evaluate_texts(&perf, &baseline, &perfgate::GateConfig::default()) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let args = Args(argv[1..].to_vec());
    match cmd.as_str() {
        "meshes" => cmd_meshes(),
        "spectrum" => cmd_spectrum(&args),
        "solve" => cmd_solve(&args),
        "report" => cmd_report(&args),
        "export-trace" => cmd_export_trace(&args),
        "perf-gate" => cmd_perf_gate(&args),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command {other}");
            usage()
        }
    }
}
