//! The CI performance-regression gate.
//!
//! Compares the committed benchmark snapshot (`BENCH_PERF.json`, its
//! `current` section) against the frozen reference (`BENCH_BASELINE.json`)
//! and fails — with a non-zero exit from `parfem perf-gate` — when any
//! tracked metric regresses past its threshold. The thresholds are
//! deliberately generous: the gate catches *structural* regressions (a lost
//! workspace reuse, an accidentally quadratic kernel, a broken overlap
//! schedule), not machine-to-machine noise.
//!
//! Four families of checks:
//!
//! - **throughput** (`mflops`, `iters_per_s`) — higher is better; fail when
//!   `current < threshold × reference`,
//! - **allocation** (`allocs_per_iter`, `alloc_bytes_per_iter`) — lower is
//!   better; fail when `current > threshold × reference + slack` (the
//!   additive slack keeps a zero-allocation reference from forbidding any
//!   future allocation at all),
//! - **overlap** (`overlap_modeled.*.speedup`) — the modeled
//!   overlapped-exchange speedup must stay ≥ 1: overlapping may never be
//!   modeled as slower than blocking,
//! - **scaling** (`scaling_modeled.*`, the large-P series the `scaling`
//!   bench bin regenerates) — the graph partitioner's worst edge-cut ratio
//!   against strips must stay ≤ 1, each series' worst modeled overlap
//!   speedup must stay ≥ 1, and every recorded parallel efficiency must
//!   lie in `(0, 1]` (an efficiency above 1 or at 0 means the machine
//!   model is broken, not that the machine got faster),
//! - **two-level convergence** (`twolevel_modeled.*`, real FGMRES solves
//!   over the weak-scaling family) — the two-level iteration growth from
//!   `p_min` to `p_max` must stay ≤ 1.3, and the one-level growth over the
//!   same range must stay strictly larger than the two-level growth: the
//!   coarse space earns its keep only if it flattens the iteration curve
//!   that the one-level smoother cannot,
//! - **physics workloads** (`physics_modeled.*`, real FGMRES solves over
//!   the heat2d and elasticity3d weak families the `physics_scaling` bin
//!   regenerates) — each problem's two-level iteration growth from `p_min`
//!   to `p_max` must stay ≤ 1.5, and every recorded modeled solve time
//!   must be positive and finite (a zero or non-finite time means the
//!   machine model broke, not that the solve got free).

use parfem_trace::json::{self, Json};
use std::fmt;

/// Gate thresholds. [`GateConfig::default`] matches what CI runs.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Minimum allowed `current / reference` for higher-is-better
    /// throughput metrics (default `0.6`: a 40% drop fails).
    pub min_throughput_ratio: f64,
    /// Maximum allowed `current / reference` for lower-is-better
    /// allocation metrics (default `1.25`).
    pub max_alloc_ratio: f64,
    /// Additive slack for allocation metrics, in the metric's own unit
    /// (default `16.0` — a zero-allocation reference still admits a few
    /// allocations per iteration before failing).
    pub alloc_slack: f64,
    /// Minimum allowed modeled overlap speedup (default `1.0`).
    pub min_overlap_speedup: f64,
    /// Maximum allowed `scaling_modeled.*.graph_cut_ratio_max` — the graph
    /// partitioner's worst edge cut relative to strips across a scaling
    /// series (default `1.0`: the graph partitioner may never lose to the
    /// structured strips it refines).
    pub max_graph_cut_ratio: f64,
    /// Maximum allowed `twolevel_modeled.*.twolevel_iter_growth` — the
    /// two-level iteration count at `p_max` relative to `p_min` (default
    /// `1.3`: near-flat counts are the whole point of the coarse space).
    pub max_twolevel_iter_growth: f64,
    /// Maximum allowed `physics_modeled.*.iter_growth` — each non-paper
    /// workload's two-level iteration count at `p_max` relative to `p_min`
    /// (default `1.5`: slightly looser than the elasticity2d bound, since
    /// the 3-D rigid-body coarse space has six modes to smooth instead of
    /// three and the heat family anchors at a very small count).
    pub max_physics_iter_growth: f64,
    /// Per-metric **absolute** caps on allocation metrics, overriding the
    /// ratio-plus-slack rule wherever tighter. Each entry is a
    /// (check-name prefix, cap) pair matched against `bench.metric`; the
    /// default caps every `fgmres_iteration*` bench at **zero** allocations
    /// and bytes per iteration — the warm-workspace solvers are exactly
    /// allocation-free and must stay that way.
    pub alloc_caps: Vec<(String, f64)>,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            min_throughput_ratio: 0.6,
            max_alloc_ratio: 1.25,
            alloc_slack: 16.0,
            min_overlap_speedup: 1.0,
            max_graph_cut_ratio: 1.0,
            max_twolevel_iter_growth: 1.3,
            max_physics_iter_growth: 1.5,
            alloc_caps: vec![("fgmres_iteration".to_string(), 0.0)],
        }
    }
}

/// One evaluated metric.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// `bench.metric` (for example `spmv.mflops`).
    pub name: String,
    /// The measured value from `BENCH_PERF.json`'s `current` section.
    pub current: f64,
    /// The reference value from `BENCH_BASELINE.json`.
    pub reference: f64,
    /// The limit `current` was compared against.
    pub limit: f64,
    /// Whether the check passed.
    pub pass: bool,
    /// `>=` for higher-is-better metrics, `<=` for lower-is-better ones.
    pub direction: &'static str,
}

/// Result of a gate evaluation: every check, pass or fail.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// All evaluated checks, in file order.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&GateCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// Renders the fixed-width pass/fail table `parfem perf-gate` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>14} {:>14} {:>14}  {}\n",
            "metric", "current", "reference", "limit", "status"
        ));
        for c in &self.checks {
            out.push_str(&format!(
                "{:<42} {:>14.4} {:>14.4} {:>14.4}  {}\n",
                format!("{} ({})", c.name, c.direction),
                c.current,
                c.reference,
                c.limit,
                if c.pass { "ok" } else { "REGRESSION" }
            ));
        }
        let failures = self.failures();
        if failures.is_empty() {
            out.push_str(&format!("perf gate: {} checks passed\n", self.checks.len()));
        } else {
            out.push_str(&format!(
                "perf gate: {} of {} checks FAILED\n",
                failures.len(),
                self.checks.len()
            ));
        }
        out
    }
}

/// Why a gate evaluation could not run (distinct from a failing gate).
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// A JSON document failed to parse.
    Parse {
        /// Which document (`"perf"` or `"baseline"`).
        which: &'static str,
        /// The underlying parse error, rendered.
        detail: String,
    },
    /// A document parsed but is missing a required section or has an
    /// unexpected schema tag.
    Schema(String),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Parse { which, detail } => {
                write!(f, "could not parse the {which} document: {detail}")
            }
            GateError::Schema(msg) => write!(f, "unexpected bench schema: {msg}"),
        }
    }
}

impl std::error::Error for GateError {}

/// The throughput metrics of the committed bench schema, per bench.
const THROUGHPUT_METRICS: &[&str] = &["mflops", "iters_per_s"];
/// The allocation metrics of the committed bench schema, per bench.
const ALLOC_METRICS: &[&str] = &["allocs_per_iter", "alloc_bytes_per_iter"];

fn expect_schema(doc: &Json, which: &'static str) -> Result<(), GateError> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("parfem-bench-perf-v1") => Ok(()),
        Some(other) => Err(GateError::Schema(format!(
            "{which}: schema {other:?}, expected \"parfem-bench-perf-v1\""
        ))),
        None => Err(GateError::Schema(format!(
            "{which}: missing \"schema\" tag"
        ))),
    }
}

/// Evaluates the gate over the two parsed documents.
///
/// `perf` is `BENCH_PERF.json` (its `current` and `overlap_modeled`
/// sections are read); `baseline` is `BENCH_BASELINE.json` (benches at the
/// top level). Benches or metrics present on only one side are skipped —
/// the gate compares what both sides measured.
///
/// # Errors
/// [`GateError::Schema`] when either document lacks the expected schema
/// tag or the perf document has no `current` section.
pub fn evaluate(perf: &Json, baseline: &Json, cfg: &GateConfig) -> Result<GateReport, GateError> {
    expect_schema(perf, "perf")?;
    expect_schema(baseline, "baseline")?;
    let current = perf
        .get("current")
        .and_then(Json::as_object)
        .ok_or_else(|| GateError::Schema("perf: missing \"current\" section".to_string()))?;

    let mut checks = Vec::new();
    for (bench, cur_bench) in current {
        let Some(ref_bench) = baseline.get(bench) else {
            continue;
        };
        for &metric in THROUGHPUT_METRICS {
            let (Some(cur), Some(reference)) = (
                cur_bench.get(metric).and_then(Json::as_f64),
                ref_bench.get(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let limit = cfg.min_throughput_ratio * reference;
            checks.push(GateCheck {
                name: format!("{bench}.{metric}"),
                current: cur,
                reference,
                limit,
                pass: cur >= limit,
                direction: ">=",
            });
        }
        for &metric in ALLOC_METRICS {
            let (Some(cur), Some(reference)) = (
                cur_bench.get(metric).and_then(Json::as_f64),
                ref_bench.get(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let name = format!("{bench}.{metric}");
            let limit = cfg
                .alloc_caps
                .iter()
                .filter(|(prefix, _)| name.starts_with(prefix.as_str()))
                .map(|&(_, cap)| cap)
                .fold(cfg.max_alloc_ratio * reference + cfg.alloc_slack, f64::min);
            checks.push(GateCheck {
                name,
                current: cur,
                reference,
                limit,
                pass: cur <= limit,
                direction: "<=",
            });
        }
    }
    if let Some(overlap) = perf.get("overlap_modeled").and_then(Json::as_object) {
        for (machine, entry) in overlap {
            let Some(speedup) = entry.get("speedup").and_then(Json::as_f64) else {
                continue;
            };
            checks.push(GateCheck {
                name: format!("overlap_modeled.{machine}.speedup"),
                current: speedup,
                reference: 1.0,
                limit: cfg.min_overlap_speedup,
                pass: speedup >= cfg.min_overlap_speedup,
                direction: ">=",
            });
        }
    }
    if let Some(scaling) = perf.get("scaling_modeled").and_then(Json::as_object) {
        for (series, entry) in scaling {
            if let Some(ratio) = entry.get("graph_cut_ratio_max").and_then(Json::as_f64) {
                checks.push(GateCheck {
                    name: format!("scaling_modeled.{series}.graph_cut_ratio_max"),
                    current: ratio,
                    reference: 1.0,
                    limit: cfg.max_graph_cut_ratio,
                    pass: ratio <= cfg.max_graph_cut_ratio,
                    direction: "<=",
                });
            }
            if let Some(speedup) = entry.get("overlap_speedup_min").and_then(Json::as_f64) {
                checks.push(GateCheck {
                    name: format!("scaling_modeled.{series}.overlap_speedup_min"),
                    current: speedup,
                    reference: 1.0,
                    limit: cfg.min_overlap_speedup,
                    pass: speedup >= cfg.min_overlap_speedup,
                    direction: ">=",
                });
            }
            let Some(fields) = entry.as_object() else {
                continue;
            };
            for (key, value) in fields {
                if !key.starts_with("efficiency_") {
                    continue;
                }
                let Some(eff) = value.as_f64() else { continue };
                checks.push(GateCheck {
                    name: format!("scaling_modeled.{series}.{key}"),
                    current: eff,
                    reference: 1.0,
                    limit: 1.0,
                    pass: eff > 0.0 && eff <= 1.0 + 1e-9,
                    direction: "<=",
                });
            }
        }
    }
    if let Some(twolevel) = perf.get("twolevel_modeled").and_then(Json::as_object) {
        for (series, entry) in twolevel {
            let growth_two = entry.get("twolevel_iter_growth").and_then(Json::as_f64);
            if let Some(g2) = growth_two {
                checks.push(GateCheck {
                    name: format!("twolevel_modeled.{series}.twolevel_iter_growth"),
                    current: g2,
                    reference: 1.0,
                    limit: cfg.max_twolevel_iter_growth,
                    pass: g2 <= cfg.max_twolevel_iter_growth,
                    direction: "<=",
                });
            }
            if let (Some(g1), Some(g2)) = (
                entry.get("onelevel_iter_growth").and_then(Json::as_f64),
                growth_two,
            ) {
                // One-level growth is the reference *and* the limit: the
                // one-level counts must grow strictly faster, so the
                // two-level growth has to sit strictly below it. (With a
                // censored one-level endpoint `g1` is a lower bound, which
                // only makes this check conservative.)
                checks.push(GateCheck {
                    name: format!("twolevel_modeled.{series}.onelevel_iter_growth"),
                    current: g1,
                    reference: g2,
                    limit: g2,
                    pass: g1 > g2,
                    direction: ">",
                });
            }
        }
    }
    if let Some(physics) = perf.get("physics_modeled").and_then(Json::as_object) {
        for (series, entry) in physics {
            if let Some(growth) = entry.get("iter_growth").and_then(Json::as_f64) {
                checks.push(GateCheck {
                    name: format!("physics_modeled.{series}.iter_growth"),
                    current: growth,
                    reference: 1.0,
                    limit: cfg.max_physics_iter_growth,
                    pass: growth <= cfg.max_physics_iter_growth,
                    direction: "<=",
                });
            }
            let Some(fields) = entry.as_object() else {
                continue;
            };
            for (key, value) in fields {
                if !key.starts_with("modeled_time_") {
                    continue;
                }
                let Some(t) = value.as_f64() else { continue };
                checks.push(GateCheck {
                    name: format!("physics_modeled.{series}.{key}"),
                    current: t,
                    reference: 0.0,
                    limit: 0.0,
                    pass: t.is_finite() && t > 0.0,
                    direction: ">",
                });
            }
        }
    }
    Ok(GateReport { checks })
}

/// [`evaluate`] over raw JSON texts (what the CLI reads from disk).
///
/// # Errors
/// [`GateError::Parse`] when either text is not valid JSON, plus
/// everything [`evaluate`] reports.
pub fn evaluate_texts(
    perf_text: &str,
    baseline_text: &str,
    cfg: &GateConfig,
) -> Result<GateReport, GateError> {
    let perf = json::parse(perf_text).map_err(|e| GateError::Parse {
        which: "perf",
        detail: e.to_string(),
    })?;
    let baseline = json::parse(baseline_text).map_err(|e| GateError::Parse {
        which: "baseline",
        detail: e.to_string(),
    })?;
    evaluate(&perf, &baseline, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "schema": "parfem-bench-perf-v1",
        "spmv": { "n": 65536, "secs": 3.4e-4, "mflops": 1900.0 },
        "fgmres_iteration": { "n": 40000, "iters_per_s": 900.0,
                              "allocs_per_iter": 3.33, "alloc_bytes_per_iter": 665837.8 }
    }"#;

    fn perf(spmv_mflops: f64, allocs: f64, overlap: f64) -> String {
        format!(
            r#"{{
                "schema": "parfem-bench-perf-v1",
                "current": {{
                    "spmv": {{ "n": 65536, "mflops": {spmv_mflops} }},
                    "fgmres_iteration": {{ "iters_per_s": 1600.0,
                                           "allocs_per_iter": {allocs},
                                           "alloc_bytes_per_iter": 0.0 }}
                }},
                "overlap_modeled": {{
                    "ibm_sp2": {{ "speedup": {overlap} }}
                }}
            }}"#
        )
    }

    #[test]
    fn healthy_snapshot_passes() {
        let report =
            evaluate_texts(&perf(2400.0, 0.0, 1.29), BASELINE, &GateConfig::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
        // spmv.mflops, fgmres iters_per_s + 2 alloc metrics, 1 overlap.
        assert_eq!(report.checks.len(), 5);
    }

    #[test]
    fn throughput_collapse_fails() {
        let report =
            evaluate_texts(&perf(400.0, 0.0, 1.29), BASELINE, &GateConfig::default()).unwrap();
        assert!(!report.passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "spmv.mflops");
        assert!(report.render().contains("REGRESSION"));
    }

    #[test]
    fn allocation_regression_fails() {
        let report =
            evaluate_texts(&perf(2400.0, 50.0, 1.29), BASELINE, &GateConfig::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(
            report.failures()[0].name,
            "fgmres_iteration.allocs_per_iter"
        );
    }

    #[test]
    fn lost_overlap_speedup_fails() {
        let report =
            evaluate_texts(&perf(2400.0, 0.0, 0.97), BASELINE, &GateConfig::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures()[0].name, "overlap_modeled.ibm_sp2.speedup");
    }

    fn scaling_perf(ratio: f64, overlap_min: f64, eff: f64) -> String {
        format!(
            r#"{{
                "schema": "parfem-bench-perf-v1",
                "current": {{}},
                "scaling_modeled": {{
                    "weak": {{
                        "p_max": 4096,
                        "graph_cut_ratio_max": {ratio},
                        "overlap_speedup_min": {overlap_min},
                        "efficiency_cluster-2level_p4096": {eff}
                    }}
                }}
            }}"#
        )
    }

    #[test]
    fn healthy_scaling_series_passes() {
        let report = evaluate_texts(
            &scaling_perf(0.43, 1.14, 0.51),
            BASELINE,
            &GateConfig::default(),
        )
        .unwrap();
        assert!(report.passed(), "{}", report.render());
        // cut ratio + overlap minimum + one efficiency field.
        assert_eq!(report.checks.len(), 3);
    }

    #[test]
    fn graph_partitioner_losing_to_strips_fails() {
        let report = evaluate_texts(
            &scaling_perf(1.02, 1.14, 0.51),
            BASELINE,
            &GateConfig::default(),
        )
        .unwrap();
        assert!(!report.passed());
        assert_eq!(
            report.failures()[0].name,
            "scaling_modeled.weak.graph_cut_ratio_max"
        );
    }

    #[test]
    fn scaling_overlap_regression_fails() {
        let report = evaluate_texts(
            &scaling_perf(0.43, 0.96, 0.51),
            BASELINE,
            &GateConfig::default(),
        )
        .unwrap();
        assert!(!report.passed());
        assert_eq!(
            report.failures()[0].name,
            "scaling_modeled.weak.overlap_speedup_min"
        );
    }

    #[test]
    fn nonphysical_efficiency_fails_in_both_directions() {
        for bad in [1.2, 0.0, -0.1] {
            let report = evaluate_texts(
                &scaling_perf(0.43, 1.14, bad),
                BASELINE,
                &GateConfig::default(),
            )
            .unwrap();
            assert!(!report.passed(), "efficiency {bad} must fail");
            assert_eq!(
                report.failures()[0].name,
                "scaling_modeled.weak.efficiency_cluster-2level_p4096"
            );
        }
    }

    fn twolevel_perf(growth_two: f64, growth_one: f64) -> String {
        format!(
            r#"{{
                "schema": "parfem-bench-perf-v1",
                "current": {{}},
                "twolevel_modeled": {{
                    "weak": {{
                        "p_min": 64,
                        "p_max": 4096,
                        "onelevel_censored": 1,
                        "twolevel_iter_growth": {growth_two},
                        "onelevel_iter_growth": {growth_one}
                    }}
                }}
            }}"#
        )
    }

    #[test]
    fn healthy_twolevel_series_passes() {
        let report =
            evaluate_texts(&twolevel_perf(1.23, 24.0), BASELINE, &GateConfig::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
        // growth bound + strict one-level comparison.
        assert_eq!(report.checks.len(), 2);
    }

    #[test]
    fn twolevel_iteration_growth_past_bound_fails() {
        let report =
            evaluate_texts(&twolevel_perf(1.5, 24.0), BASELINE, &GateConfig::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(
            report.failures()[0].name,
            "twolevel_modeled.weak.twolevel_iter_growth"
        );
    }

    #[test]
    fn onelevel_not_strictly_faster_growing_fails() {
        // Equality fails too: the one-level counts must grow *strictly*
        // faster, otherwise the coarse space buys nothing.
        for g1 in [1.23, 1.1] {
            let report =
                evaluate_texts(&twolevel_perf(1.23, g1), BASELINE, &GateConfig::default()).unwrap();
            assert!(!report.passed(), "one-level growth {g1} must fail");
            assert_eq!(
                report.failures()[0].name,
                "twolevel_modeled.weak.onelevel_iter_growth"
            );
        }
    }

    fn physics_perf(growth: f64, time_p1024: &str) -> String {
        format!(
            r#"{{
                "schema": "parfem-bench-perf-v1",
                "current": {{}},
                "physics_modeled": {{
                    "heat2d": {{
                        "p_min": 64,
                        "p_max": 1024,
                        "iters_p64": 10,
                        "iters_p1024": 10,
                        "modeled_time_p64": 3.1e-4,
                        "modeled_time_p1024": 8.9e-4,
                        "iter_growth": 1.0
                    }},
                    "elasticity3d": {{
                        "p_min": 64,
                        "p_max": 1024,
                        "iters_p64": 12,
                        "iters_p1024": 17,
                        "modeled_time_p64": 1.3e-3,
                        "modeled_time_p1024": {time_p1024},
                        "iter_growth": {growth}
                    }}
                }}
            }}"#
        )
    }

    #[test]
    fn healthy_physics_series_passes() {
        let report = evaluate_texts(
            &physics_perf(1.42, "4.6e-3"),
            BASELINE,
            &GateConfig::default(),
        )
        .unwrap();
        assert!(report.passed(), "{}", report.render());
        // Two series × (1 growth + 2 modeled-time checks).
        assert_eq!(report.checks.len(), 6);
    }

    #[test]
    fn physics_iteration_growth_past_bound_fails() {
        // The degraded-snapshot self-test: a coarse space that stops
        // flattening a physics workload's counts must trip the gate.
        let report = evaluate_texts(
            &physics_perf(1.75, "4.6e-3"),
            BASELINE,
            &GateConfig::default(),
        )
        .unwrap();
        assert!(!report.passed());
        assert_eq!(
            report.failures()[0].name,
            "physics_modeled.elasticity3d.iter_growth"
        );
    }

    #[test]
    fn nonpositive_physics_modeled_time_fails() {
        for bad in ["0.0", "-1.0e-3"] {
            let report =
                evaluate_texts(&physics_perf(1.42, bad), BASELINE, &GateConfig::default()).unwrap();
            assert!(!report.passed(), "modeled time {bad} must fail");
            assert_eq!(
                report.failures()[0].name,
                "physics_modeled.elasticity3d.modeled_time_p1024"
            );
        }
    }

    #[test]
    fn zero_alloc_reference_keeps_additive_slack_for_uncapped_benches() {
        // Benches without an absolute cap keep the ratio-plus-slack rule:
        // a zero-allocation reference still admits a few allocations.
        let baseline = r#"{
            "schema": "parfem-bench-perf-v1",
            "precond_apply_gls7": { "allocs_per_iter": 0.0 }
        }"#;
        let perf = r#"{
            "schema": "parfem-bench-perf-v1",
            "current": { "precond_apply_gls7": { "allocs_per_iter": 4.0 } }
        }"#;
        let report = evaluate_texts(perf, baseline, &GateConfig::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn fgmres_allocation_cap_is_absolute_zero() {
        // The warm-workspace FGMRES benches carry an absolute cap: even a
        // single byte per iteration fails, slack or not.
        let baseline = r#"{
            "schema": "parfem-bench-perf-v1",
            "fgmres_iteration_simd": { "allocs_per_iter": 0.0,
                                       "alloc_bytes_per_iter": 0.0 }
        }"#;
        let perf = r#"{
            "schema": "parfem-bench-perf-v1",
            "current": { "fgmres_iteration_simd": { "allocs_per_iter": 0.0,
                                                    "alloc_bytes_per_iter": 1.0 } }
        }"#;
        let report = evaluate_texts(perf, baseline, &GateConfig::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(
            report.failures()[0].name,
            "fgmres_iteration_simd.alloc_bytes_per_iter"
        );
    }

    #[test]
    fn committed_snapshots_pass_the_default_gate() {
        // The acceptance criterion: the repo's own BENCH_PERF.json vs
        // BENCH_BASELINE.json must pass deterministically.
        let perf = include_str!("../../../BENCH_PERF.json");
        let baseline = include_str!("../../../BENCH_BASELINE.json");
        let report = evaluate_texts(perf, baseline, &GateConfig::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert!(report.checks.len() >= 8, "{}", report.render());
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = evaluate_texts("{not json", BASELINE, &GateConfig::default()).unwrap_err();
        assert!(
            matches!(err, GateError::Parse { which: "perf", .. }),
            "{err}"
        );
    }

    #[test]
    fn wrong_schema_is_a_schema_error() {
        let err = evaluate_texts(
            r#"{"schema": "parfem-bench-perf-v2", "current": {}}"#,
            BASELINE,
            &GateConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, GateError::Schema(_)), "{err}");
    }
}
