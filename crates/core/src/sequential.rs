//! Sequential solve harness covering every preconditioner the paper
//! compares on a single processor (Figs. 11–14).
//!
//! The pipeline is the paper's Algorithm 4: norm-1 diagonal scaling,
//! preconditioner construction on `Θ = (ε, 1)`, FGMRES, unscale.

use crate::problems::CantileverProblem;
use parfem_krylov::gmres::{fgmres, GmresConfig};
use parfem_krylov::ConvergenceHistory;
use parfem_precond::{
    BlockJacobiPrecond, ChebyshevPrecond, DirectPrecond, GlsPrecond, IdentityPrecond, Ilu0Precond,
    IntervalUnion, JacobiPrecond, NeumannPrecond,
};
use parfem_sparse::{scaling::scale_system, CsrMatrix, SparseError};

/// Preconditioner choices for the sequential harness.
#[derive(Debug, Clone)]
pub enum SeqPrecond {
    /// Unpreconditioned.
    None,
    /// Diagonal.
    Jacobi,
    /// Incomplete LU with zero fill (the paper's sequential comparator).
    Ilu0,
    /// Exact sparse-direct factorization of the scaled operator (RCM +
    /// skyline LDLᵀ) — the one-iteration reference that keeps working on
    /// floating/semi-definite systems where ILU(0) hits a zero pivot
    /// (Eq. 45).
    Direct,
    /// Neumann series of the given degree.
    Neumann(usize),
    /// GLS polynomial of the given degree on `(ε, 1)`.
    Gls(usize),
    /// GLS polynomial on an explicit spectrum estimate (Fig. 10 study).
    GlsOnTheta(usize, IntervalUnion),
    /// GLS polynomial on a *measured* spectrum: a 30-step Lanczos run
    /// estimates `[λ_min, λ_max]` of the scaled operator first (the sharper
    /// Θ the paper's Fig. 10 hints at).
    GlsAuto(usize),
    /// Chebyshev (min-max) polynomial of the given degree on `(~0, 1)`.
    Chebyshev(usize),
    /// Block-Jacobi with per-block ILU(0) over the given number of
    /// contiguous row blocks (the pARMS-style additive Schwarz baseline).
    BlockJacobi(usize),
}

impl SeqPrecond {
    /// Label matching the paper's curves.
    pub fn name(&self) -> String {
        match self {
            SeqPrecond::None => "none".into(),
            SeqPrecond::Jacobi => "jacobi".into(),
            SeqPrecond::Ilu0 => "ilu(0)".into(),
            SeqPrecond::Direct => "direct".into(),
            SeqPrecond::Neumann(m) => format!("neumann({m})"),
            SeqPrecond::Gls(m) => format!("gls({m})"),
            SeqPrecond::GlsOnTheta(m, t) => {
                let (lo, hi) = t.hull();
                format!("gls({m})@({lo:.2},{hi:.2})")
            }
            SeqPrecond::GlsAuto(m) => format!("gls({m})@ritz"),
            SeqPrecond::Chebyshev(m) => format!("chebyshev({m})"),
            SeqPrecond::BlockJacobi(p) => format!("block-jacobi({p})"),
        }
    }
}

/// Solves `K u = f` sequentially: scale, precondition, FGMRES, unscale.
///
/// # Errors
/// Returns [`SparseError`] when scaling or an ILU(0) factorization fails
/// (e.g. a singular system).
pub fn solve_system(
    k: &CsrMatrix,
    f: &[f64],
    precond: &SeqPrecond,
    cfg: &GmresConfig,
) -> Result<(Vec<f64>, ConvergenceHistory), SparseError> {
    let (a, b, sc) = scale_system(k, f)?;
    let x0 = vec![0.0; a.n_rows()];
    let res = match precond {
        SeqPrecond::None => fgmres(&a, &IdentityPrecond, &b, &x0, cfg),
        SeqPrecond::Jacobi => fgmres(&a, &JacobiPrecond::from_matrix(&a), &b, &x0, cfg),
        SeqPrecond::Ilu0 => {
            let p = Ilu0Precond::factorize(&a)?;
            fgmres(&a, &p, &b, &x0, cfg)
        }
        SeqPrecond::Direct => fgmres(&a, &DirectPrecond::new(&a), &b, &x0, cfg),
        SeqPrecond::Neumann(m) => fgmres(&a, &NeumannPrecond::for_scaled_system(*m), &b, &x0, cfg),
        SeqPrecond::Gls(m) => fgmres(&a, &GlsPrecond::for_scaled_system(*m), &b, &x0, cfg),
        SeqPrecond::GlsOnTheta(m, theta) => {
            fgmres(&a, &GlsPrecond::new(*m, theta.clone()), &b, &x0, cfg)
        }
        SeqPrecond::GlsAuto(m) => {
            let (lo, hi) = parfem_krylov::estimate_spectrum(&a, 30);
            let theta = IntervalUnion::single(lo.max(f64::EPSILON), hi.max(2.0 * f64::EPSILON));
            fgmres(&a, &GlsPrecond::new(*m, theta), &b, &x0, cfg)
        }
        SeqPrecond::Chebyshev(m) => {
            fgmres(&a, &ChebyshevPrecond::for_scaled_system(*m), &b, &x0, cfg)
        }
        SeqPrecond::BlockJacobi(p) => {
            let bj = BlockJacobiPrecond::with_uniform_blocks(&a, *p)?;
            fgmres(&a, &bj, &b, &x0, cfg)
        }
    };
    Ok((sc.unscale_solution(&res.x), res.history))
}

/// Solves a cantilever problem's static system sequentially.
///
/// # Errors
/// Propagates [`SparseError`] from [`solve_system`].
pub fn solve_static(
    problem: &CantileverProblem,
    precond: &SeqPrecond,
    cfg: &GmresConfig,
) -> Result<(Vec<f64>, ConvergenceHistory), SparseError> {
    let sys = problem.static_system();
    solve_system(&sys.stiffness, &sys.rhs, precond, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{CantileverProblem, LoadCase};
    use parfem_fem::Material;

    fn problem() -> CantileverProblem {
        CantileverProblem::new(10, 4, Material::unit(), LoadCase::PullX(1.0))
    }

    fn residual(p: &CantileverProblem, u: &[f64]) -> f64 {
        let sys = p.static_system();
        let r = sys.stiffness.spmv(u);
        r.iter()
            .zip(&sys.rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn every_preconditioner_solves_the_cantilever() {
        let p = problem();
        let cfg = GmresConfig {
            tol: 1e-8,
            max_iters: 5000,
            ..Default::default()
        };
        for pc in [
            SeqPrecond::None,
            SeqPrecond::Jacobi,
            SeqPrecond::Ilu0,
            SeqPrecond::Neumann(20),
            SeqPrecond::Gls(7),
        ] {
            let (u, h) = solve_static(&p, &pc, &cfg).expect("solve");
            assert!(h.converged(), "{} did not converge", pc.name());
            assert!(residual(&p, &u) < 1e-5, "{} residual too large", pc.name());
        }
    }

    #[test]
    fn gls_beats_unpreconditioned_on_iterations() {
        // The paper's headline: GLS(7) converges far faster than plain
        // GMRES and is comparable to ILU(0).
        let p = problem();
        let cfg = GmresConfig {
            tol: 1e-6,
            ..Default::default()
        };
        let (_, h_none) = solve_static(&p, &SeqPrecond::None, &cfg).unwrap();
        let (_, h_gls) = solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
        assert!(
            h_gls.iterations() * 3 < h_none.iterations(),
            "gls {} vs none {}",
            h_gls.iterations(),
            h_none.iterations()
        );
    }

    #[test]
    fn higher_gls_degree_reduces_iterations_on_small_mesh() {
        // Fig. 13's ordering gls(20) > gls(10) > gls(7) > gls(3) > gls(1)
        // ("converges faster than") on a small mesh.
        let p = CantileverProblem::paper_mesh(1);
        let cfg = GmresConfig {
            tol: 1e-6,
            max_iters: 20_000,
            ..Default::default()
        };
        let iters: Vec<usize> = [1usize, 3, 7, 10, 20]
            .iter()
            .map(|&m| {
                let (_, h) = solve_static(&p, &SeqPrecond::Gls(m), &cfg).unwrap();
                assert!(h.converged(), "gls({m})");
                h.iterations()
            })
            .collect();
        for w in iters.windows(2) {
            assert!(w[1] <= w[0], "degree increase worsened: {iters:?}");
        }
    }

    #[test]
    fn theta_sensitivity_affects_convergence() {
        // Fig. 10: a deliberately wrong spectrum estimate slows GLS down.
        // Needs a mesh large enough for a wide spectrum (Mesh2 of Table 2).
        let p = CantileverProblem::paper_mesh(2);
        let cfg = GmresConfig {
            tol: 1e-6,
            max_iters: 20_000,
            ..Default::default()
        };
        let good = SeqPrecond::Gls(10);
        let bad = SeqPrecond::GlsOnTheta(10, IntervalUnion::single(0.4, 0.6));
        let (_, hg) = solve_static(&p, &good, &cfg).unwrap();
        let (_, hb) = solve_static(&p, &bad, &cfg).unwrap();
        assert!(
            hg.iterations() < hb.iterations(),
            "good {} vs bad {}",
            hg.iterations(),
            hb.iterations()
        );
    }

    #[test]
    fn auto_theta_is_at_least_as_good_as_the_default() {
        let p = CantileverProblem::paper_mesh(2);
        let cfg = GmresConfig {
            tol: 1e-6,
            max_iters: 20_000,
            ..Default::default()
        };
        let (_, h_def) = solve_static(&p, &SeqPrecond::Gls(10), &cfg).unwrap();
        let (u, h_auto) = solve_static(&p, &SeqPrecond::GlsAuto(10), &cfg).unwrap();
        assert!(h_auto.converged());
        assert!(
            h_auto.iterations() <= h_def.iterations() + 2,
            "auto {} vs default {}",
            h_auto.iterations(),
            h_def.iterations()
        );
        // And it still solves the right system.
        let sys = p.static_system();
        let r = sys.stiffness.spmv(&u);
        let err: f64 = r
            .iter()
            .zip(&sys.rhs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-5 * scale);
    }

    #[test]
    fn names_are_paper_labels() {
        assert_eq!(SeqPrecond::Ilu0.name(), "ilu(0)");
        assert_eq!(SeqPrecond::Gls(7).name(), "gls(7)");
        assert_eq!(SeqPrecond::Neumann(20).name(), "neumann(20)");
    }
}
