//! # Paper → code map
//!
//! Where every construct of Liang, Kanapady & Tamma, *"An Efficient
//! Parallel Finite-Element-Based Domain Decomposition Iterative Technique
//! With Polynomial Preconditioning"* (UMN TR 05-001 / ICPP 2006), lives in
//! this workspace. This module contains no code — it is the
//! reproduction's index, kept in rustdoc so it stays next to the items it
//! references.
//!
//! ## Section 2 — preconditioned iterative solvers
//!
//! | Paper | Code |
//! |---|---|
//! | Eq. 1 `K u = f`, FEM assembly | [`parfem_fem::assembly`] |
//! | Theorem 1 (Gershgorin row-sum bound) | [`parfem_sparse::gershgorin`] |
//! | Eqs. 9–12, norm-1 diagonal scaling | [`parfem_sparse::scaling`] |
//! | Sec. 2.1.2, Neumann series `P_m = ω Σ Gᵏ` | [`parfem_precond::NeumannPrecond`] |
//! | Sec. 2.1.3, GLS polynomial on interval unions (Eqs. 18–22) | [`parfem_precond::GlsPrecond`] |
//! | Eq. 24, floating-point stability bound (Fig. 3) | [`parfem_precond::poly::stability_bound`] |
//! | Sec. 2.3 / Algorithm 1, flexible GMRES with restart | [`parfem_krylov::fgmres`] |
//! | "different preconditioners at required stages" | [`parfem_precond::EscalatingGls`] |
//!
//! ## Section 3 — element-based domain decomposition
//!
//! | Paper | Code |
//! |---|---|
//! | Definitions 1–2, local/global distributed formats | [`parfem_dd::dist_vec`] |
//! | Eq. 28, nearest-neighbour interface sum `⊕Σ` | [`parfem_dd::EddLayout::interface_sum_buffered`] |
//! | Eqs. 29–31, 1-D truss illustration (Fig. 5) | [`parfem_fem::truss`] |
//! | Eq. 32, `K = Σ Bᵀ K̂ B` unassembled subdomains | [`parfem_fem::SubdomainSystem`] |
//! | Eqs. 33–35, deduplicated inner products | [`parfem_dd::EddLayout::dot_partial`] |
//! | Eqs. 36–37, local matvec | [`parfem_dd::EddOperator`] |
//! | Algorithms 3–4, distributed diagonal scaling | [`parfem_dd::scaling`] |
//! | Algorithm 5 (3 exchanges/step) | [`parfem_dd::EddVariant::Basic`] |
//! | Algorithm 6 (1 exchange/step) | [`parfem_dd::EddVariant::Enhanced`] |
//! | Algorithm 7, EDD polynomial preconditioning | any [`parfem_precond::Preconditioner`] over [`parfem_dd::EddOperator`] |
//! | Eq. 45, floating-subdomain ILU singularity | `ilu0_fails_with_zero_pivot_on_single_floating_element` test; [`parfem_sparse::SparseError::ZeroPivot`] |
//!
//! ## Section 4 — row-based decomposition (baseline)
//!
//! | Paper | Code |
//! |---|---|
//! | Eqs. 46–49 block-row partition | [`parfem_dd::RddSystem`] |
//! | Eq. 48 halo matvec | [`parfem_dd::RddOperator`] |
//! | Algorithm 8, RDD FGMRES | [`parfem_dd::rdd_fgmres`] |
//! | block-Jacobi / additive-Schwarz local solves | [`parfem_dd::RddLocalIlu`], [`parfem_precond::BlockJacobiPrecond`] |
//!
//! ## Section 5 — complexity and planarity
//!
//! | Paper | Code |
//! |---|---|
//! | Table 1 comm counts (measured, not hand-counted) | `table1_comm_counts` binary; [`parfem_msg::CommStats`] |
//! | planar `G(K)` for triangles | [`parfem_mesh::graph::Adjacency::satisfies_planar_edge_bound`] |
//! | 4-/8-noded quadrilateral densification | [`parfem_fem::quad8s`], `ablation_elements*` binaries |
//!
//! ## Section 6 — numerical results
//!
//! | Paper | Code |
//! |---|---|
//! | Eq. 50 static / Eqs. 51–52 dynamics | [`crate::problems`], [`parfem_fem::dynamics`], [`parfem_dd::SolveSession::run_dynamic`] |
//! | Table 2 meshes | [`crate::problems::PAPER_MESHES`] |
//! | Figs. 10–14 convergence studies | [`crate::sequential`], `fig10`–`fig14` binaries |
//! | Figs. 15–17 / Table 3 speedups | [`parfem_dd::SolveSession`] (EDD/RDD strategies) on [`parfem_msg::MachineModel`]; `fig16`/`fig17`/`table3` binaries |
//!
//! The per-experiment parameters live in `DESIGN.md`; measured-vs-paper
//! numbers in `EXPERIMENTS.md`.
