//! # parfem
//!
//! A parallel finite-element domain-decomposition FGMRES solver with
//! polynomial preconditioning — a from-scratch reproduction of
//! *"An Efficient Parallel Finite-Element-Based Domain Decomposition
//! Iterative Technique With Polynomial Preconditioning"* (Liang, Kanapady,
//! Tamma; Univ. of Minnesota TR 05-001 / ICPP 2006).
//!
//! This facade crate re-exports the whole workspace and adds the high-level
//! entry points the examples and experiments use:
//!
//! - [`problems`] — the paper's cantilever benchmark family (Table 2) with
//!   static and elastodynamic load cases,
//! - [`sequential`] — single-process solves with every preconditioner the
//!   paper compares (none/Jacobi/ILU(0)/Neumann/GLS), regenerating the
//!   convergence figures,
//! - [`dynamic`] — Newmark first-step effective systems (`[αM + βK]u = f̂`)
//!   and full transient simulation,
//! - the re-exported [`parfem_dd::SolveSession`] builder for the parallel
//!   runs (EDD/RDD, preconditioner, machine, overlap, faults, tracing as
//!   orthogonal options).
//!
//! ## Quickstart
//!
//! ```
//! use parfem::prelude::*;
//!
//! // A 20x4-element cantilever, clamped at the left, sheared at the tip.
//! let problem = CantileverProblem::new(20, 4, Material::unit(), LoadCase::ShearY(-1.0));
//!
//! // Solve in parallel with 4 subdomains and a GLS(7) polynomial
//! // preconditioner on the virtual SGI Origin.
//! let part = ElementPartition::strips_x(&problem.mesh, 4);
//! let out = SolveSession::new(problem.as_problem())
//!     .strategy(Strategy::Edd(part))
//!     .machine(MachineModel::sgi_origin())
//!     .run()
//!     .expect("fault-free solve");
//! assert!(out.history.converged());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dynamic;
pub mod paper;
pub mod perfgate;
pub mod problems;
pub mod sequential;

pub use parfem_dd as dd;
pub use parfem_fem as fem;
pub use parfem_krylov as krylov;
pub use parfem_mesh as mesh;
pub use parfem_msg as msg;
pub use parfem_precond as precond;
pub use parfem_sparse as sparse;
pub use parfem_trace as trace;

/// One-stop imports for examples and experiments.
pub mod prelude {
    pub use crate::dynamic::{first_step_system, simulate, DynamicOutcome};
    pub use crate::problems::{
        CantileverProblem, LoadCase, PhysicsProblem, WorkloadMesh, PAPER_MESHES,
    };
    pub use crate::sequential::{solve_static, solve_system, SeqPrecond};
    #[allow(deprecated)] // the frozen legacy entry points stay importable
    pub use parfem_dd::{
        solve_dynamic_edd, solve_edd, solve_edd_traced, solve_rdd, solve_rdd_traced,
        try_solve_edd_systems_traced, try_solve_edd_traced, try_solve_rdd_traced,
    };
    pub use parfem_dd::{
        DdSolveOutput, DynamicRunConfig, DynamicRunOutput, EddVariant, MultiSolveOutput,
        PrecondSpec, Problem, SolveError, SolveFailures, SolveSession, SolverConfig, Strategy,
    };
    pub use parfem_fem::{Material, NewmarkParams, Physics};
    pub use parfem_krylov::{ConvergenceHistory, GmresConfig};
    pub use parfem_mesh::{
        DofMap, Edge, ElementPartition, Face, HexMesh, NodePartition, PartitionerSpec, QuadMesh,
    };
    pub use parfem_msg::{CommError, FaultPlan, FaultStats, MachineModel, RankReport};
    pub use parfem_precond::IntervalUnion;
    pub use parfem_sparse::CsrMatrix;
    pub use parfem_trace::{TraceReport, TraceSink};
}
