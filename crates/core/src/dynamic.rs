//! Elastodynamic experiments (paper Eqs. 51–52, Figs. 12/14).
//!
//! The dynamic convergence figures study the linear system of the *first*
//! Newmark step after a suddenly applied load — the effective system
//! `[αM + βK] u₁ = f̂₁` — under the same preconditioners as the static case.
//! [`simulate`] additionally runs full transients with an iterative solver
//! in the loop.

use crate::problems::CantileverProblem;
use crate::sequential::{solve_system, SeqPrecond};
use parfem_fem::{assembly, NewmarkIntegrator, NewmarkParams};
use parfem_krylov::gmres::GmresConfig;
use parfem_krylov::ConvergenceHistory;
use parfem_sparse::{CsrMatrix, SparseError};

/// Builds the first-step Newmark effective system for a suddenly applied
/// load: returns `(K̄, f̂₁)` with `K̄ = ᾱM + K` (lumped mass), zero initial
/// conditions.
pub fn first_step_system(problem: &CantileverProblem, dt: f64) -> (CsrMatrix, Vec<f64>) {
    let params = NewmarkParams::average_acceleration(dt);
    let k_raw = assembly::assemble_stiffness(&problem.mesh, &problem.dof_map, &problem.material);
    let m_raw = assembly::assemble_mass(&problem.mesh, &problem.dof_map, &problem.material, true);
    let mut f = problem.loads.clone();
    let k = assembly::apply_dirichlet(&k_raw, &problem.dof_map, &mut f);
    let m = assembly::apply_dirichlet_mass(&m_raw, &problem.dof_map);
    let fixed: Vec<(usize, f64)> = problem.dof_map.fixed_dofs().collect();
    let n = k.n_rows();
    // Lumped mass with identity-regularized constrained rows: a diagonal
    // solve suffices for the initial acceleration.
    let diag_solve = |a: &CsrMatrix, b: &[f64]| -> Vec<f64> {
        a.diagonal()
            .iter()
            .zip(b)
            .map(|(&d, &bi)| if d != 0.0 { bi / d } else { 0.0 })
            .collect()
    };
    let integ = NewmarkIntegrator::new(
        k,
        m,
        params,
        fixed,
        vec![0.0; n],
        vec![0.0; n],
        &f,
        diag_solve,
    );
    let rhs = integ.effective_rhs(&f);
    (integ.effective_stiffness().clone(), rhs)
}

/// Solves the first-step dynamic system with the given preconditioner —
/// the measurement behind Figs. 12 and 14.
///
/// # Errors
/// Propagates solver errors from [`solve_system`].
pub fn first_step_solve(
    problem: &CantileverProblem,
    dt: f64,
    precond: &SeqPrecond,
    cfg: &GmresConfig,
) -> Result<(Vec<f64>, ConvergenceHistory), SparseError> {
    let (keff, rhs) = first_step_system(problem, dt);
    solve_system(&keff, &rhs, precond, cfg)
}

/// Outcome of a transient simulation.
#[derive(Debug, Clone)]
pub struct DynamicOutcome {
    /// Tip displacement (`u_y` at the top-right corner) per step.
    pub tip_history: Vec<f64>,
    /// Total FGMRES iterations over all steps.
    pub total_iterations: usize,
    /// Whether every step's solve converged.
    pub all_converged: bool,
}

/// Runs `steps` Newmark steps with the load held constant, solving every
/// effective system with FGMRES under `precond`.
///
/// # Errors
/// Propagates scaling/factorization errors from the per-step solves.
pub fn simulate(
    problem: &CantileverProblem,
    dt: f64,
    steps: usize,
    precond: &SeqPrecond,
    cfg: &GmresConfig,
) -> Result<DynamicOutcome, SparseError> {
    let params = NewmarkParams::average_acceleration(dt);
    let k_raw = assembly::assemble_stiffness(&problem.mesh, &problem.dof_map, &problem.material);
    let m_raw = assembly::assemble_mass(&problem.mesh, &problem.dof_map, &problem.material, true);
    let mut f = problem.loads.clone();
    let k = assembly::apply_dirichlet(&k_raw, &problem.dof_map, &mut f);
    let m = assembly::apply_dirichlet_mass(&m_raw, &problem.dof_map);
    let fixed: Vec<(usize, f64)> = problem.dof_map.fixed_dofs().collect();
    let n = k.n_rows();
    let diag_solve = |a: &CsrMatrix, b: &[f64]| -> Vec<f64> {
        a.diagonal()
            .iter()
            .zip(b)
            .map(|(&d, &bi)| if d != 0.0 { bi / d } else { 0.0 })
            .collect()
    };
    let mut integ = NewmarkIntegrator::new(
        k,
        m,
        params,
        fixed,
        vec![0.0; n],
        vec![0.0; n],
        &f,
        diag_solve,
    );

    let tip_dof = problem.dof_map.dof(
        problem.mesh.node_at(problem.mesh.nx(), problem.mesh.ny()),
        1,
    );
    let mut tip_history = Vec::with_capacity(steps);
    let mut total_iterations = 0usize;
    let mut all_converged = true;

    for _ in 0..steps {
        let mut step_iters = 0usize;
        let mut converged = true;
        integ.step(&f, |a, b| {
            let (u, h) = solve_system(a, b, precond, cfg).expect("step solve");
            step_iters = h.iterations();
            converged = h.converged();
            u
        });
        total_iterations += step_iters;
        all_converged &= converged;
        tip_history.push(integ.displacement()[tip_dof]);
    }
    Ok(DynamicOutcome {
        tip_history,
        total_iterations,
        all_converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::LoadCase;
    use parfem_fem::Material;

    fn problem() -> CantileverProblem {
        CantileverProblem::new(8, 2, Material::unit(), LoadCase::ShearY(-1e-3))
    }

    #[test]
    fn first_step_system_is_stiffer_than_static() {
        // K_eff = alpha*M + K has a larger diagonal than K alone.
        let p = problem();
        let (keff, _) = first_step_system(&p, 0.05);
        let kstat = p.static_system().stiffness;
        let free_dof = p.dof_map.dof(p.mesh.node_at(4, 1), 0);
        assert!(keff.get(free_dof, free_dof) > kstat.get(free_dof, free_dof));
    }

    #[test]
    fn dynamic_solves_converge_faster_than_static() {
        // The mass shift improves conditioning: the same preconditioner
        // needs fewer iterations on the dynamic effective system — exactly
        // the contrast between the paper's Figs. 11 and 12.
        let p = problem();
        let cfg = GmresConfig {
            tol: 1e-6,
            max_iters: 20_000,
            ..Default::default()
        };
        let (_, h_static) = crate::sequential::solve_static(&p, &SeqPrecond::Gls(3), &cfg).unwrap();
        let (_, h_dyn) = first_step_solve(&p, 1e-3, &SeqPrecond::Gls(3), &cfg).unwrap();
        assert!(h_dyn.converged());
        assert!(
            h_dyn.iterations() <= h_static.iterations(),
            "dynamic {} vs static {}",
            h_dyn.iterations(),
            h_static.iterations()
        );
    }

    #[test]
    fn transient_oscillates_around_static_deflection() {
        // Undamped suddenly-applied load: the mean tip deflection over one
        // full cycle is close to the static deflection, the peak about 2x.
        let p = problem();
        let cfg = GmresConfig {
            tol: 1e-10,
            max_iters: 50_000,
            ..Default::default()
        };
        let (u_static, _) = crate::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
        let tip = p.dof_map.dof(p.mesh.node_at(p.mesh.nx(), p.mesh.ny()), 1);
        let u_s = u_static[tip];

        let out = simulate(&p, 0.5, 400, &SeqPrecond::Gls(7), &cfg).unwrap();
        assert!(out.all_converged);
        let min = out
            .tip_history
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // Dynamic overshoot: peak deflection between 1x and ~2.2x static.
        assert!(min < u_s, "no overshoot: min {min} vs static {u_s}");
        assert!(min > 2.5 * u_s, "overshoot too large: {min} vs {u_s}");
    }

    #[test]
    fn simulation_accumulates_iterations() {
        let p = problem();
        let cfg = GmresConfig::default();
        let out = simulate(&p, 0.1, 5, &SeqPrecond::Gls(5), &cfg).unwrap();
        assert_eq!(out.tip_history.len(), 5);
        assert!(out.total_iterations > 0);
        assert!(out.all_converged);
    }
}
