//! Structured 8-node (serendipity) quadrilateral meshes.
//!
//! The paper's Section 5 argues that higher-order elements such as the
//! 8-noded quadrilateral densify the matrix graph `G(K)` beyond planarity
//! and thereby hurt the scalability of row-partitioned SpMV. This module
//! provides the mesh; the element itself lives in `parfem-fem::quad8s`.
//!
//! Node layout for an `nx × ny` grid: "even" rows hold corner + horizontal
//! mid-edge nodes (`2nx + 1` of them at `y = j·hy`), interleaved with "odd"
//! rows of vertical mid-edge nodes (`nx + 1` at `y = (j+½)·hy`). Element
//! connectivity lists the four corners counter-clockwise, then the four
//! mid-edge nodes (bottom, right, top, left).

use crate::numbering::Edge;

/// A structured mesh of 8-node serendipity quadrilaterals.
#[derive(Debug, Clone)]
pub struct Quad8Mesh {
    nx: usize,
    ny: usize,
    lx: f64,
    ly: f64,
    coords: Vec<[f64; 2]>,
    elems: Vec<[usize; 8]>,
}

impl Quad8Mesh {
    /// Builds an `nx × ny`-element mesh of `[0, lx] × [0, ly]`.
    ///
    /// # Panics
    /// Panics for empty grids or non-positive lengths.
    pub fn rectangle(nx: usize, ny: usize, lx: f64, ly: f64) -> Self {
        assert!(nx > 0 && ny > 0, "mesh must have at least one element");
        assert!(lx > 0.0 && ly > 0.0, "mesh lengths must be positive");
        let hx = lx / nx as f64;
        let hy = ly / ny as f64;
        let even_len = 2 * nx + 1;
        let odd_len = nx + 1;
        let stride = even_len + odd_len; // nodes per (even,odd) row pair

        let n_nodes = even_len * (ny + 1) + odd_len * ny;
        let mut coords = Vec::with_capacity(n_nodes);
        for j in 0..=ny {
            for i in 0..even_len {
                coords.push([0.5 * hx * i as f64, hy * j as f64]);
            }
            if j < ny {
                for i in 0..odd_len {
                    coords.push([hx * i as f64, hy * (j as f64 + 0.5)]);
                }
            }
        }

        let even = |j: usize, i: usize| j * stride + i;
        let odd = |j: usize, i: usize| j * stride + even_len + i;

        let mut elems = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                elems.push([
                    even(j, 2 * i),         // corner (i, j)
                    even(j, 2 * i + 2),     // corner (i+1, j)
                    even(j + 1, 2 * i + 2), // corner (i+1, j+1)
                    even(j + 1, 2 * i),     // corner (i, j+1)
                    even(j, 2 * i + 1),     // mid bottom
                    odd(j, i + 1),          // mid right
                    even(j + 1, 2 * i + 1), // mid top
                    odd(j, i),              // mid left
                ]);
            }
        }
        Quad8Mesh {
            nx,
            ny,
            lx,
            ly,
            coords,
            elems,
        }
    }

    /// Unit-square-cell cantilever geometry.
    pub fn cantilever(nx: usize, ny: usize) -> Self {
        Self::rectangle(nx, ny, nx as f64, ny as f64)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of elements.
    pub fn n_elems(&self) -> usize {
        self.elems.len()
    }

    /// Node coordinates.
    pub fn coords(&self) -> &[[f64; 2]] {
        &self.coords
    }

    /// Coordinates of one node.
    pub fn node_coords(&self, n: usize) -> [f64; 2] {
        self.coords[n]
    }

    /// Connectivity of element `e`: corners CCW, then mid-edge nodes
    /// (bottom, right, top, left).
    pub fn elem_nodes(&self, e: usize) -> [usize; 8] {
        self.elems[e]
    }

    /// Coordinates of the eight nodes of element `e`.
    pub fn elem_coords(&self, e: usize) -> [[f64; 2]; 8] {
        let n = self.elems[e];
        std::array::from_fn(|k| self.coords[n[k]])
    }

    /// All node ids on a boundary edge (corners and mid-edge nodes).
    pub fn edge_nodes(&self, edge: Edge) -> Vec<usize> {
        let tol = 1e-12 * self.lx.max(self.ly);
        let on_edge = |c: &[f64; 2]| match edge {
            Edge::Left => c[0].abs() <= tol,
            Edge::Right => (c[0] - self.lx).abs() <= tol,
            Edge::Bottom => c[1].abs() <= tol,
            Edge::Top => (c[1] - self.ly).abs() <= tol,
        };
        self.coords
            .iter()
            .enumerate()
            .filter(|(_, c)| on_edge(c))
            .map(|(n, _)| n)
            .collect()
    }

    /// Element columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Element rows.
    pub fn ny(&self) -> usize {
        self.ny
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_formula() {
        // (2nx+1)(ny+1) + (nx+1)ny
        let m = Quad8Mesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(m.n_nodes(), 7 * 3 + 4 * 2);
        assert_eq!(m.n_elems(), 6);
        let single = Quad8Mesh::rectangle(1, 1, 1.0, 1.0);
        assert_eq!(single.n_nodes(), 8);
    }

    #[test]
    fn single_element_connectivity_and_coords() {
        let m = Quad8Mesh::rectangle(1, 1, 2.0, 2.0);
        let e = m.elem_nodes(0);
        let c = m.elem_coords(0);
        // Corners CCW.
        assert_eq!(c[0], [0.0, 0.0]);
        assert_eq!(c[1], [2.0, 0.0]);
        assert_eq!(c[2], [2.0, 2.0]);
        assert_eq!(c[3], [0.0, 2.0]);
        // Midsides bottom, right, top, left.
        assert_eq!(c[4], [1.0, 0.0]);
        assert_eq!(c[5], [2.0, 1.0]);
        assert_eq!(c[6], [1.0, 2.0]);
        assert_eq!(c[7], [0.0, 1.0]);
        // All ids distinct.
        let mut ids = e.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn neighbouring_elements_share_three_nodes() {
        let m = Quad8Mesh::rectangle(2, 1, 2.0, 1.0);
        let a = m.elem_nodes(0);
        let b = m.elem_nodes(1);
        let shared: Vec<usize> = a.iter().filter(|n| b.contains(n)).copied().collect();
        // Two corners + one vertical mid-edge node.
        assert_eq!(shared.len(), 3);
    }

    #[test]
    fn edge_nodes_include_midside_nodes() {
        let m = Quad8Mesh::rectangle(2, 2, 2.0, 2.0);
        // Left edge: 3 corners + 2 vertical midside nodes = 5.
        assert_eq!(m.edge_nodes(Edge::Left).len(), 5);
        // Bottom edge: 2*2+1 nodes of the even row.
        assert_eq!(m.edge_nodes(Edge::Bottom).len(), 5);
    }

    #[test]
    fn coordinates_cover_the_rectangle() {
        let m = Quad8Mesh::rectangle(3, 2, 6.0, 4.0);
        for c in m.coords() {
            assert!(c[0] >= -1e-12 && c[0] <= 6.0 + 1e-12);
            assert!(c[1] >= -1e-12 && c[1] <= 4.0 + 1e-12);
        }
    }
}
