//! Multilevel-style graph partitioning of mesh elements.
//!
//! The strip and block partitions of [`crate::partition`] exploit the
//! structured cantilever grids; real large-P runs need a partitioner that
//! works from connectivity alone, like the "specific graph methods" the
//! paper cites for unstructured meshes. This module provides one:
//!
//! 1. **Recursive bisection** over [`Adjacency::element_graph_of`]: each
//!    bisection grows one side greedily from a pseudo-peripheral seed
//!    vertex (picking, at every step, the frontier vertex with the most
//!    links into the growing region), then
//! 2. **boundary KL/FM refinement** sweeps vertices across the boundary
//!    whenever the move strictly reduces the edge cut without violating
//!    the balance tolerance, and
//! 3. a **candidate pool** also evaluates the structured strip and block
//!    layouts (when the mesh has a logical grid), refines them the same
//!    way, and keeps whichever candidate cuts fewest node-adjacent
//!    element pairs — so the graph partitioner never does worse than the
//!    structured layouts it replaces.
//! 4. A final **absorption pass** reattaches disconnected fragments of a
//!    part to the neighbouring part they touch most, so every part is
//!    connected in the element graph whenever the mesh itself is.
//!
//! Everything is deterministic for a fixed seed: randomness comes from a
//! private xorshift generator, ties break on the lowest vertex id, and no
//! hash-map iteration order is ever observed.

use crate::cells::Cells;
use crate::graph::Adjacency;
use crate::partition::ElementPartition;
use std::collections::BinaryHeap;
use std::fmt;

/// Which element partitioner to use — parsed from CLI `--partitioner`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerSpec {
    /// Vertical strips of element columns (the paper's layout).
    Strips,
    /// A near-square `px x py` grid of element blocks.
    Blocks,
    /// The seeded graph partitioner of this module.
    Graph {
        /// Seed for the partitioner's deterministic RNG.
        seed: u64,
    },
}

impl PartitionerSpec {
    /// Parses `strips`, `blocks`, `graph` or `graph:<seed>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "strips" => Ok(PartitionerSpec::Strips),
            "blocks" => Ok(PartitionerSpec::Blocks),
            "graph" => Ok(PartitionerSpec::Graph { seed: 0 }),
            _ => match s.strip_prefix("graph:") {
                Some(seed) => seed
                    .parse::<u64>()
                    .map(|seed| PartitionerSpec::Graph { seed })
                    .map_err(|_| format!("bad graph partitioner seed '{seed}'")),
                None => Err(format!(
                    "unknown partitioner '{s}' (valid: strips|blocks|graph:<seed>)"
                )),
            },
        }
    }

    /// Partitions the elements of `mesh` into `p` parts.
    ///
    /// # Panics
    /// Panics if `p` is zero, exceeds the cell count, or (for the
    /// structured layouts) does not fit the mesh's logical grid.
    pub fn element_partition<M: Cells>(&self, mesh: &M, p: usize) -> ElementPartition {
        match *self {
            // `blocks_of(mesh, p, 1)` assigns column i to part (i*p)/nx,
            // exactly the strips_x formula, for any structured Cells mesh.
            PartitionerSpec::Strips => ElementPartition::blocks_of(mesh, p, 1),
            PartitionerSpec::Blocks => {
                let (nx, ny) = mesh
                    .grid_dims()
                    .expect("blocks partitioner needs a structured mesh");
                let (px, py) = balanced_grid(p, nx, ny);
                ElementPartition::blocks_of(mesh, px, py)
            }
            PartitionerSpec::Graph { seed } => graph_partition(mesh, p, seed),
        }
    }
}

impl fmt::Display for PartitionerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionerSpec::Strips => write!(f, "strips"),
            PartitionerSpec::Blocks => write!(f, "blocks"),
            PartitionerSpec::Graph { seed } => write!(f, "graph:{seed}"),
        }
    }
}

/// Factorizes `p = px * py` as near-square as the `nx x ny` cell grid
/// allows, preferring more parts along the longer grid axis.
///
/// # Panics
/// Panics if no factorization fits the grid.
pub fn balanced_grid(p: usize, nx: usize, ny: usize) -> (usize, usize) {
    assert!(p > 0, "need at least one part");
    let mut best: Option<(usize, usize)> = None;
    let mut best_score = f64::INFINITY;
    for py in 1..=p {
        if !p.is_multiple_of(py) {
            continue;
        }
        let px = p / py;
        if px > nx || py > ny {
            continue;
        }
        // Squareness of the resulting blocks: an (nx/px) x (ny/py) block is
        // ideal when its aspect ratio is 1.
        let aspect = (nx as f64 / px as f64) / (ny as f64 / py as f64);
        let score = aspect.max(1.0 / aspect);
        if score < best_score {
            best_score = score;
            best = Some((px, py));
        }
    }
    best.unwrap_or_else(|| panic!("no {p}-part block grid fits a {nx}x{ny} mesh"))
}

/// Seeded multilevel-style graph partition of the mesh elements.
///
/// See the module docs for the algorithm. The returned partition records
/// its edge cut (node-adjacent element pairs straddling part boundaries —
/// the same metric [`ElementPartition::edge_cut`] reports for the
/// structured layouts).
///
/// # Panics
/// Panics if `p` is zero or exceeds the cell count.
pub fn graph_partition<M: Cells>(mesh: &M, p: usize, seed: u64) -> ElementPartition {
    let n = mesh.n_cells();
    assert!(p > 0 && p <= n, "part count must be in 1..=n_elems");
    // Vertex adjacency (elements sharing >= 1 node): its cut IS the
    // node-adjacent pair count that ElementPartition reports.
    let graph = Adjacency::element_graph_of(mesh, 1);

    let mut candidates: Vec<Vec<usize>> = Vec::new();
    candidates.push(bisection_owner(&graph, p, seed));
    if let Some((nx, ny)) = mesh.grid_dims() {
        if p <= nx {
            candidates.push(
                (0..n)
                    .map(|e| {
                        let (i, _) = mesh.grid_cell(e).expect("structured cell");
                        (i * p) / nx
                    })
                    .collect(),
            );
        }
        if let Some((px, py)) = try_balanced_grid(p, nx, ny) {
            candidates.push(
                (0..n)
                    .map(|e| {
                        let (i, j) = mesh.grid_cell(e).expect("structured cell");
                        ((j * py) / ny) * px + (i * px) / nx
                    })
                    .collect(),
            );
        }
    }

    let max_size = balance_cap(n, p);
    let mut best: Option<(usize, Vec<usize>)> = None;
    for mut owner in candidates {
        refine_kway(&graph, &mut owner, p, max_size);
        let cut = cut_of(&graph, &owner);
        let better = match &best {
            None => true,
            Some((c, _)) => cut < *c,
        };
        if better {
            best = Some((cut, owner));
        }
    }
    let (_, mut owner) = best.expect("at least one candidate");
    absorb_fragments(&graph, &mut owner, p);
    ElementPartition::from_owner(p, owner).with_edge_cut(mesh)
}

/// Partitions an arbitrary adjacency graph into `p` parts — the mesh-free
/// core of [`graph_partition`], exposed for callers that already hold a
/// graph (or for graphs that are not element graphs at all).
///
/// # Panics
/// Panics if `p` is zero or exceeds the vertex count.
pub fn partition_adjacency(graph: &Adjacency, p: usize, seed: u64) -> Vec<usize> {
    let n = graph.n_vertices();
    assert!(p > 0 && p <= n, "part count must be in 1..=n_vertices");
    let mut owner = bisection_owner(graph, p, seed);
    refine_kway(graph, &mut owner, p, balance_cap(n, p));
    absorb_fragments(graph, &mut owner, p);
    owner
}

/// Undirected edges whose endpoints live in different parts.
pub fn cut_of(graph: &Adjacency, owner: &[usize]) -> usize {
    let mut cut = 0usize;
    for v in 0..graph.n_vertices() {
        for &w in graph.neighbors(v) {
            if w > v && owner[v] != owner[w] {
                cut += 1;
            }
        }
    }
    cut
}

/// Largest part size the refinement passes tolerate: the perfectly
/// balanced ceiling plus 5 %.
fn balance_cap(n: usize, p: usize) -> usize {
    n.div_ceil(p).max((n * 21).div_ceil(p * 20))
}

fn try_balanced_grid(p: usize, nx: usize, ny: usize) -> Option<(usize, usize)> {
    (1..=p)
        .filter(|&py| p.is_multiple_of(py) && p / py <= nx && py <= ny)
        .map(|py| {
            let px = p / py;
            let aspect = (nx as f64 / px as f64) / (ny as f64 / py as f64);
            (px, py, aspect.max(1.0 / aspect))
        })
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .map(|(px, py, _)| (px, py))
}

/// Splitmix-style xorshift: deterministic, seedable, no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point of xorshift.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Recursive bisection: returns a per-vertex owner array over `0..p`.
///
/// Every recursion level works on a compact local-index copy of its
/// subgraph, so per-call cost is `O(subset)` rather than `O(n)` — the
/// difference between seconds and minutes on million-element meshes at
/// large part counts.
fn bisection_owner(graph: &Adjacency, p: usize, seed: u64) -> Vec<usize> {
    let n = graph.n_vertices();
    let mut owner = vec![0usize; n];
    let mut rng = Rng::new(seed);
    let adj: Vec<Vec<u32>> = (0..n)
        .map(|v| graph.neighbors(v).iter().map(|&w| w as u32).collect())
        .collect();
    let ids: Vec<usize> = (0..n).collect();
    bisect(&adj, &ids, p, 0, &mut owner, &mut rng);
    owner
}

/// One bisection level over a compact subgraph. `adj` is the subgraph in
/// local indices; `ids` maps local index -> original vertex id.
fn bisect(
    adj: &[Vec<u32>],
    ids: &[usize],
    k: usize,
    first_part: usize,
    owner: &mut [usize],
    rng: &mut Rng,
) {
    if k == 1 {
        for &v in ids {
            owner[v] = first_part;
        }
        return;
    }
    let m = ids.len();
    let k1 = k / 2;
    let k2 = k - k1;
    // Proportional split, clamped so both sides can feed all their parts.
    let n1 = (m * k1 / k).clamp(k1, m - k2);
    let mut in_a = grow_region(adj, n1, rng);
    // Balance tolerance, clamped so each side can still feed k1/k2 parts.
    let tol = (n1 / 20).max(1);
    let min_a = n1.saturating_sub(tol).max(k1);
    let max_a = (n1 + tol).min(m - k2);
    refine_bisection(adj, &mut in_a, min_a, max_a);
    let ((adj_a, ids_a), (adj_b, ids_b)) = split(adj, ids, &in_a);
    bisect(&adj_a, &ids_a, k1, first_part, owner, rng);
    bisect(&adj_b, &ids_b, k2, first_part + k1, owner, rng);
}

/// Splits a local subgraph into compact side-A / side-B subgraphs with
/// their id maps, dropping the (cut) edges between the sides.
#[allow(clippy::type_complexity)]
fn split(
    adj: &[Vec<u32>],
    ids: &[usize],
    in_a: &[bool],
) -> ((Vec<Vec<u32>>, Vec<usize>), (Vec<Vec<u32>>, Vec<usize>)) {
    let m = adj.len();
    let mut local = vec![0u32; m];
    let (mut ids_a, mut ids_b) = (Vec::new(), Vec::new());
    for v in 0..m {
        if in_a[v] {
            local[v] = ids_a.len() as u32;
            ids_a.push(ids[v]);
        } else {
            local[v] = ids_b.len() as u32;
            ids_b.push(ids[v]);
        }
    }
    let mut adj_a: Vec<Vec<u32>> = Vec::with_capacity(ids_a.len());
    let mut adj_b: Vec<Vec<u32>> = Vec::with_capacity(ids_b.len());
    for v in 0..m {
        let nbs: Vec<u32> = adj[v]
            .iter()
            .filter(|&&w| in_a[w as usize] == in_a[v])
            .map(|&w| local[w as usize])
            .collect();
        if in_a[v] {
            adj_a.push(nbs);
        } else {
            adj_b.push(nbs);
        }
    }
    ((adj_a, ids_a), (adj_b, ids_b))
}

/// Grows a region of exactly `target` vertices, starting from a
/// pseudo-peripheral seed and always absorbing the frontier vertex with
/// the most links into the region (lowest id on ties). Returns the
/// membership mask.
fn grow_region(adj: &[Vec<u32>], target: usize, rng: &mut Rng) -> Vec<bool> {
    let m = adj.len();
    // Pseudo-peripheral seed: farthest vertex from a random start, twice.
    let start = rng.below(m);
    let far = bfs_farthest(adj, start);
    let seed = bfs_farthest(adj, far);

    let mut in_region = vec![false; m];
    let mut size = 0usize;
    // conn[v] = links from v into the region; lazily-invalidated max-heap
    // keyed by (conn, highest priority = lowest id).
    let mut conn = vec![0usize; m];
    let mut heap: BinaryHeap<(usize, std::cmp::Reverse<usize>)> = BinaryHeap::new();

    let absorb = |v: usize,
                  in_region: &mut Vec<bool>,
                  size: &mut usize,
                  conn: &mut Vec<usize>,
                  heap: &mut BinaryHeap<(usize, std::cmp::Reverse<usize>)>| {
        in_region[v] = true;
        *size += 1;
        for &w in &adj[v] {
            let w = w as usize;
            if !in_region[w] {
                conn[w] += 1;
                heap.push((conn[w], std::cmp::Reverse(w)));
            }
        }
    };
    absorb(seed, &mut in_region, &mut size, &mut conn, &mut heap);
    while size < target {
        // Pop stale entries (conn changed since push, or already absorbed).
        let next = loop {
            match heap.pop() {
                Some((c, std::cmp::Reverse(v))) => {
                    if !in_region[v] && conn[v] == c {
                        break Some(v);
                    }
                }
                // Frontier exhausted (disconnected subgraph): restart from
                // the lowest unabsorbed vertex.
                None => break (0..m).find(|&v| !in_region[v]),
            }
        };
        let Some(v) = next else { break };
        absorb(v, &mut in_region, &mut size, &mut conn, &mut heap);
    }
    in_region
}

/// BFS from `start`; returns the last vertex reached (a pseudo-peripheral
/// vertex after two applications).
fn bfs_farthest(adj: &[Vec<u32>], start: usize) -> usize {
    let mut seen = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::from([start]);
    seen[start] = true;
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &w in &adj[v] {
            let w = w as usize;
            if !seen[w] {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    last
}

/// FM-style boundary refinement of one bisection: sweeps vertices in id
/// order, moving a vertex to the other side when that strictly reduces
/// the cut and keeps side A's size within `[min_a, max_a]`.
fn refine_bisection(adj: &[Vec<u32>], in_a: &mut [bool], min_a: usize, max_a: usize) {
    let mut size_a = in_a.iter().filter(|&&b| b).count();
    for _pass in 0..8 {
        let mut moved = false;
        for v in 0..adj.len() {
            let (mut same, mut other) = (0usize, 0usize);
            for &w in &adj[v] {
                if in_a[w as usize] == in_a[v] {
                    same += 1;
                } else {
                    other += 1;
                }
            }
            if other <= same {
                continue;
            }
            let new_a = if in_a[v] { size_a - 1 } else { size_a + 1 };
            if new_a < min_a || new_a > max_a {
                continue;
            }
            in_a[v] = !in_a[v];
            size_a = new_a;
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

/// Greedy k-way boundary refinement: repeatedly moves a boundary vertex
/// to the adjacent part it is most connected to, when the move strictly
/// reduces the cut and respects `max_size` (and never empties a part).
fn refine_kway(graph: &Adjacency, owner: &mut [usize], p: usize, max_size: usize) {
    let n = graph.n_vertices();
    let mut sizes = vec![0usize; p];
    for &o in owner.iter() {
        sizes[o] += 1;
    }
    let mut conn = vec![0usize; p];
    for _pass in 0..8 {
        let mut moved = false;
        for v in 0..n {
            let own = owner[v];
            if sizes[own] <= 1 {
                continue;
            }
            // Connection counts to each adjacent part.
            let mut touched: Vec<usize> = Vec::new();
            for &w in graph.neighbors(v) {
                let q = owner[w];
                if conn[q] == 0 {
                    touched.push(q);
                }
                conn[q] += 1;
            }
            let internal = conn[own];
            let mut best_part = own;
            let mut best_conn = internal;
            let overloaded = sizes[own] > max_size;
            for &q in &touched {
                if q == own || sizes[q] + 1 > max_size {
                    continue;
                }
                let better =
                    conn[q] > best_conn || (overloaded && conn[q] == best_conn && q < best_part);
                if better {
                    best_conn = conn[q];
                    best_part = q;
                }
            }
            for &q in &touched {
                conn[q] = 0;
            }
            if best_part != own {
                sizes[own] -= 1;
                sizes[best_part] += 1;
                owner[v] = best_part;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Reattaches every non-largest connected fragment of each part to the
/// neighbouring part it shares the most edges with. Terminates because
/// each move strictly reduces the total number of per-part fragments,
/// and never increases the cut (a fragment has no edges to the rest of
/// its own part, so its boundary can only shrink).
fn absorb_fragments(graph: &Adjacency, owner: &mut [usize], p: usize) {
    loop {
        let fragments = part_fragments(graph, owner, p);
        let Some(frag) = fragments else { break };
        // Most-connected neighbouring part of the fragment.
        let mut conn = vec![0usize; p];
        for &v in &frag {
            for &w in graph.neighbors(v) {
                if owner[w] != owner[v] {
                    conn[owner[w]] += 1;
                }
            }
        }
        let (target, links) = conn
            .iter()
            .enumerate()
            .max_by_key(|&(q, c)| (*c, std::cmp::Reverse(q)))
            .expect("at least one part");
        if *links == 0 {
            // The fragment touches nothing (mesh itself disconnected):
            // leave it where it is.
            break;
        }
        for &v in &frag {
            owner[v] = target;
        }
    }
}

/// Finds one non-largest connected fragment of some part, or `None` when
/// every part is connected.
fn part_fragments(graph: &Adjacency, owner: &[usize], p: usize) -> Option<Vec<usize>> {
    let n = graph.n_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut comp_part: Vec<usize> = Vec::new();
    let mut comp_members: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        if comp[v] != usize::MAX {
            continue;
        }
        let c = comp_part.len();
        comp_part.push(owner[v]);
        let mut members = vec![v];
        comp[v] = c;
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            for &w in graph.neighbors(u) {
                if owner[w] == owner[v] && comp[w] == usize::MAX {
                    comp[w] = c;
                    members.push(w);
                    stack.push(w);
                }
            }
        }
        comp_members.push(members);
    }
    // Largest component per part survives; report any other.
    let mut largest = vec![usize::MAX; p];
    for (c, members) in comp_members.iter().enumerate() {
        let part = comp_part[c];
        if largest[part] == usize::MAX || members.len() > comp_members[largest[part]].len() {
            largest[part] = c;
        }
    }
    comp_members
        .iter()
        .enumerate()
        .find(|(c, _)| largest[comp_part[*c]] != *c)
        .map(|(_, members)| members.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::QuadMesh;

    #[test]
    fn spec_parses_all_forms() {
        assert_eq!(
            PartitionerSpec::parse("strips"),
            Ok(PartitionerSpec::Strips)
        );
        assert_eq!(
            PartitionerSpec::parse("blocks"),
            Ok(PartitionerSpec::Blocks)
        );
        assert_eq!(
            PartitionerSpec::parse("graph"),
            Ok(PartitionerSpec::Graph { seed: 0 })
        );
        assert_eq!(
            PartitionerSpec::parse("graph:42"),
            Ok(PartitionerSpec::Graph { seed: 42 })
        );
        assert!(PartitionerSpec::parse("metis").is_err());
        assert!(PartitionerSpec::parse("graph:x").is_err());
        assert_eq!(PartitionerSpec::Graph { seed: 7 }.to_string(), "graph:7");
    }

    #[test]
    fn strips_spec_matches_strips_x() {
        let mesh = QuadMesh::rectangle(8, 3, 8.0, 3.0);
        let a = PartitionerSpec::Strips.element_partition(&mesh, 4);
        let b = ElementPartition::strips_x(&mesh, 4);
        assert_eq!(a.owners(), b.owners());
        assert_eq!(a.edge_cut(), b.edge_cut());
    }

    #[test]
    fn blocks_spec_picks_a_fitting_grid() {
        let mesh = QuadMesh::rectangle(8, 4, 8.0, 4.0);
        let part = PartitionerSpec::Blocks.element_partition(&mesh, 8);
        assert_eq!(part.n_parts(), 8);
        // 8 parts on an 8x4 grid: 4x2 blocks of 2x2 cells are the square
        // choice.
        assert_eq!(balanced_grid(8, 8, 4), (4, 2));
    }

    #[test]
    fn graph_partition_is_total_and_balanced() {
        let mesh = QuadMesh::rectangle(12, 8, 12.0, 8.0);
        let part = graph_partition(&mesh, 6, 0);
        assert_eq!(part.n_parts(), 6);
        let mut sizes = [0usize; 6];
        for e in 0..96 {
            sizes[part.owner(e)] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 96);
        assert!(part.imbalance() <= 1.25, "{part:?}");
        assert!(part.edge_cut().is_some());
    }

    #[test]
    fn graph_partition_is_deterministic_per_seed() {
        let mesh = QuadMesh::rectangle(10, 10, 10.0, 10.0);
        let a = graph_partition(&mesh, 5, 3);
        let b = graph_partition(&mesh, 5, 3);
        assert_eq!(a.owners(), b.owners());
    }

    #[test]
    fn graph_cut_never_exceeds_strips_cut() {
        for &(nx, ny, p) in &[(16usize, 16usize, 8usize), (24, 6, 6), (32, 2, 4)] {
            let mesh = QuadMesh::rectangle(nx, ny, nx as f64, ny as f64);
            let strips = ElementPartition::strips_x(&mesh, p);
            let graph = graph_partition(&mesh, p, 0);
            assert!(
                graph.edge_cut().unwrap() <= strips.edge_cut().unwrap(),
                "{nx}x{ny} p={p}: graph {:?} > strips {:?}",
                graph.edge_cut(),
                strips.edge_cut()
            );
        }
    }

    #[test]
    fn partition_adjacency_covers_plain_graphs() {
        let mesh = QuadMesh::rectangle(6, 6, 6.0, 6.0);
        let graph = Adjacency::element_graph_of(&mesh, 1);
        let owner = partition_adjacency(&graph, 4, 1);
        assert_eq!(owner.len(), 36);
        let mut seen = [false; 4];
        for &o in &owner {
            seen[o] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(cut_of(&graph, &owner) > 0);
    }
}
