//! DOF numbering and Dirichlet constraint bookkeeping.
//!
//! Each node carries a physics-dependent number of DOFs: two displacement
//! components `(u_x, u_y)` for the paper's 2-D elasticity, one for scalar
//! Poisson/heat, three for 3-D elasticity. DOF `dpn*node + c` is component
//! `c` of `node`. Constrained (Dirichlet) DOFs keep their global numbers —
//! the assembly replaces their equations with identity rows instead of
//! renumbering, which is what lets the element-based decomposition avoid
//! any reordering (paper claim ii).

use crate::structured::QuadMesh;

/// A boundary edge of the rectangular domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// `x = 0`.
    Left,
    /// `x = lx`.
    Right,
    /// `y = 0`.
    Bottom,
    /// `y = ly`.
    Top,
}

/// Number of displacement DOFs per node in 2-D elasticity — the default
/// physics of [`DofMap::new`] and of the paper's experiments.
pub const DOFS_PER_NODE: usize = 2;

/// Maps nodes to global DOFs and tracks Dirichlet constraints.
#[derive(Debug, Clone)]
pub struct DofMap {
    n_nodes: usize,
    dofs_per_node: usize,
    /// `fixed[d]` is true when DOF `d` is Dirichlet-constrained.
    fixed: Vec<bool>,
    /// Prescribed values for constrained DOFs (same length as `fixed`).
    values: Vec<f64>,
}

impl DofMap {
    /// An unconstrained DOF map over `n_nodes` nodes with the default two
    /// displacement DOFs per node (2-D elasticity).
    pub fn new(n_nodes: usize) -> Self {
        Self::with_dofs(n_nodes, DOFS_PER_NODE)
    }

    /// An unconstrained DOF map with an explicit number of DOFs per node:
    /// `1` for scalar Poisson/heat, `2` for 2-D elasticity, `3` for 3-D.
    ///
    /// # Panics
    /// Panics if `dofs_per_node` is zero.
    pub fn with_dofs(n_nodes: usize, dofs_per_node: usize) -> Self {
        assert!(dofs_per_node > 0, "need at least one DOF per node");
        DofMap {
            n_nodes,
            dofs_per_node,
            fixed: vec![false; n_nodes * dofs_per_node],
            values: vec![0.0; n_nodes * dofs_per_node],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of DOFs each node carries.
    #[inline]
    pub fn dofs_per_node(&self) -> usize {
        self.dofs_per_node
    }

    /// Total number of DOFs (constrained + free).
    pub fn n_dofs(&self) -> usize {
        self.n_nodes * self.dofs_per_node
    }

    /// Number of unconstrained DOFs (the paper's `nEqn`).
    pub fn n_free(&self) -> usize {
        self.fixed.iter().filter(|&&f| !f).count()
    }

    /// The global DOF of component `c` of `node`.
    ///
    /// # Panics
    /// Panics if `node` or `c` is out of range.
    #[inline]
    pub fn dof(&self, node: usize, c: usize) -> usize {
        assert!(node < self.n_nodes, "node out of range");
        assert!(c < self.dofs_per_node, "component out of range");
        node * self.dofs_per_node + c
    }

    /// The global DOFs of a 4-node 2-D elasticity element, in the
    /// element-local order `[u0x, u0y, u1x, u1y, u2x, u2y, u3x, u3y]`.
    ///
    /// # Panics
    /// Panics unless the map carries exactly two DOFs per node.
    pub fn elem_dofs(&self, nodes: [usize; 4]) -> [usize; 8] {
        assert_eq!(
            self.dofs_per_node, 2,
            "elem_dofs is the 2-D elasticity layout"
        );
        let mut out = [0usize; 8];
        for (k, &n) in nodes.iter().enumerate() {
            out[2 * k] = self.dof(n, 0);
            out[2 * k + 1] = self.dof(n, 1);
        }
        out
    }

    /// Constrains a single DOF to `value`.
    pub fn fix_dof(&mut self, dof: usize, value: f64) {
        self.fixed[dof] = true;
        self.values[dof] = value;
    }

    /// Constrains every component of `node` to zero (a clamped node).
    pub fn clamp_node(&mut self, node: usize) {
        for c in 0..self.dofs_per_node {
            self.fix_dof(self.dof(node, c), 0.0);
        }
    }

    /// Clamps every node of a boundary edge (the paper's cantilever root).
    pub fn clamp_edge(&mut self, mesh: &QuadMesh, edge: Edge) {
        for node in mesh.edge_nodes(edge) {
            self.clamp_node(node);
        }
    }

    /// Whether DOF `d` is constrained.
    #[inline]
    pub fn is_fixed(&self, d: usize) -> bool {
        self.fixed[d]
    }

    /// Prescribed value of DOF `d` (zero for free DOFs).
    #[inline]
    pub fn fixed_value(&self, d: usize) -> f64 {
        self.values[d]
    }

    /// Iterator over the constrained DOFs and their prescribed values.
    pub fn fixed_dofs(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.fixed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(d, _)| (d, self.values[d]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dof_numbering_is_two_per_node() {
        let m = DofMap::new(5);
        assert_eq!(m.n_dofs(), 10);
        assert_eq!(m.dofs_per_node(), 2);
        assert_eq!(m.dof(0, 0), 0);
        assert_eq!(m.dof(0, 1), 1);
        assert_eq!(m.dof(4, 1), 9);
    }

    #[test]
    fn scalar_map_has_one_dof_per_node() {
        let m = DofMap::with_dofs(5, 1);
        assert_eq!(m.n_dofs(), 5);
        assert_eq!(m.dofs_per_node(), 1);
        assert_eq!(m.dof(3, 0), 3);
    }

    #[test]
    fn three_d_map_has_three_dofs_per_node() {
        let mut m = DofMap::with_dofs(4, 3);
        assert_eq!(m.n_dofs(), 12);
        assert_eq!(m.dof(2, 2), 8);
        m.clamp_node(1);
        assert_eq!(m.n_free(), 9);
        for c in 0..3 {
            assert!(m.is_fixed(m.dof(1, c)));
        }
    }

    #[test]
    fn elem_dofs_interleave_components() {
        let m = DofMap::new(10);
        let dofs = m.elem_dofs([2, 3, 7, 6]);
        assert_eq!(dofs, [4, 5, 6, 7, 14, 15, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "2-D elasticity layout")]
    fn elem_dofs_rejects_non_two_dof_maps() {
        DofMap::with_dofs(5, 1).elem_dofs([0, 1, 2, 3]);
    }

    #[test]
    fn clamp_edge_fixes_all_edge_dofs() {
        let mesh = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        // Left edge has ny+1 = 3 nodes -> 6 fixed DOFs.
        assert_eq!(dm.n_free(), dm.n_dofs() - 6);
        for node in mesh.edge_nodes(Edge::Left) {
            assert!(dm.is_fixed(dm.dof(node, 0)));
            assert!(dm.is_fixed(dm.dof(node, 1)));
        }
        // Right edge must stay free.
        for node in mesh.edge_nodes(Edge::Right) {
            assert!(!dm.is_fixed(dm.dof(node, 0)));
        }
    }

    #[test]
    fn scalar_clamp_edge_fixes_one_dof_per_node() {
        let mesh = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 1);
        dm.clamp_edge(&mesh, Edge::Left);
        assert_eq!(dm.n_free(), dm.n_dofs() - 3);
    }

    #[test]
    fn fixed_values_are_retrievable() {
        let mut dm = DofMap::new(3);
        dm.fix_dof(2, 0.5);
        assert!(dm.is_fixed(2));
        assert_eq!(dm.fixed_value(2), 0.5);
        assert_eq!(dm.fixed_value(0), 0.0);
        let fixed: Vec<(usize, f64)> = dm.fixed_dofs().collect();
        assert_eq!(fixed, vec![(2, 0.5)]);
    }

    #[test]
    fn mesh1_free_count_with_left_clamp() {
        // Mesh1 of Table 2: 7x1 elements, 16 nodes, left edge clamped
        // (2 nodes) -> 28 free equations, matching the paper's nEqn.
        let mesh = QuadMesh::cantilever(7, 1);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        assert_eq!(dm.n_free(), 28);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn dof_rejects_bad_node() {
        DofMap::new(2).dof(2, 0);
    }
}
