//! DOF numbering and Dirichlet constraint bookkeeping.
//!
//! Each node of a 2-D elasticity mesh carries two displacement DOFs
//! `(u_x, u_y)`; DOF `2*node + c` is component `c` of `node`. Constrained
//! (Dirichlet) DOFs keep their global numbers — the assembly replaces their
//! equations with identity rows instead of renumbering, which is what lets
//! the element-based decomposition avoid any reordering (paper claim ii).

use crate::structured::QuadMesh;

/// A boundary edge of the rectangular domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// `x = 0`.
    Left,
    /// `x = lx`.
    Right,
    /// `y = 0`.
    Bottom,
    /// `y = ly`.
    Top,
}

/// Number of displacement DOFs per node in 2-D elasticity.
pub const DOFS_PER_NODE: usize = 2;

/// Maps nodes to global DOFs and tracks Dirichlet constraints.
#[derive(Debug, Clone)]
pub struct DofMap {
    n_nodes: usize,
    /// `fixed[d]` is true when DOF `d` is Dirichlet-constrained.
    fixed: Vec<bool>,
    /// Prescribed values for constrained DOFs (same length as `fixed`).
    values: Vec<f64>,
}

impl DofMap {
    /// An unconstrained DOF map over `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> Self {
        DofMap {
            n_nodes,
            fixed: vec![false; n_nodes * DOFS_PER_NODE],
            values: vec![0.0; n_nodes * DOFS_PER_NODE],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total number of DOFs (constrained + free).
    pub fn n_dofs(&self) -> usize {
        self.n_nodes * DOFS_PER_NODE
    }

    /// Number of unconstrained DOFs (the paper's `nEqn`).
    pub fn n_free(&self) -> usize {
        self.fixed.iter().filter(|&&f| !f).count()
    }

    /// The global DOF of component `c` (0 = x, 1 = y) of `node`.
    ///
    /// # Panics
    /// Panics if `node` or `c` is out of range.
    #[inline]
    pub fn dof(&self, node: usize, c: usize) -> usize {
        assert!(node < self.n_nodes, "node out of range");
        assert!(c < DOFS_PER_NODE, "component out of range");
        node * DOFS_PER_NODE + c
    }

    /// The global DOFs of a 4-node element, in the element-local order
    /// `[u0x, u0y, u1x, u1y, u2x, u2y, u3x, u3y]`.
    pub fn elem_dofs(&self, nodes: [usize; 4]) -> [usize; 8] {
        let mut out = [0usize; 8];
        for (k, &n) in nodes.iter().enumerate() {
            out[2 * k] = self.dof(n, 0);
            out[2 * k + 1] = self.dof(n, 1);
        }
        out
    }

    /// Constrains a single DOF to `value`.
    pub fn fix_dof(&mut self, dof: usize, value: f64) {
        self.fixed[dof] = true;
        self.values[dof] = value;
    }

    /// Constrains both components of `node` to zero (a clamped node).
    pub fn clamp_node(&mut self, node: usize) {
        self.fix_dof(self.dof(node, 0), 0.0);
        self.fix_dof(self.dof(node, 1), 0.0);
    }

    /// Clamps every node of a boundary edge (the paper's cantilever root).
    pub fn clamp_edge(&mut self, mesh: &QuadMesh, edge: Edge) {
        for node in mesh.edge_nodes(edge) {
            self.clamp_node(node);
        }
    }

    /// Whether DOF `d` is constrained.
    #[inline]
    pub fn is_fixed(&self, d: usize) -> bool {
        self.fixed[d]
    }

    /// Prescribed value of DOF `d` (zero for free DOFs).
    #[inline]
    pub fn fixed_value(&self, d: usize) -> f64 {
        self.values[d]
    }

    /// Iterator over the constrained DOFs and their prescribed values.
    pub fn fixed_dofs(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.fixed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(d, _)| (d, self.values[d]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dof_numbering_is_two_per_node() {
        let m = DofMap::new(5);
        assert_eq!(m.n_dofs(), 10);
        assert_eq!(m.dof(0, 0), 0);
        assert_eq!(m.dof(0, 1), 1);
        assert_eq!(m.dof(4, 1), 9);
    }

    #[test]
    fn elem_dofs_interleave_components() {
        let m = DofMap::new(10);
        let dofs = m.elem_dofs([2, 3, 7, 6]);
        assert_eq!(dofs, [4, 5, 6, 7, 14, 15, 12, 13]);
    }

    #[test]
    fn clamp_edge_fixes_all_edge_dofs() {
        let mesh = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        // Left edge has ny+1 = 3 nodes -> 6 fixed DOFs.
        assert_eq!(dm.n_free(), dm.n_dofs() - 6);
        for node in mesh.edge_nodes(Edge::Left) {
            assert!(dm.is_fixed(dm.dof(node, 0)));
            assert!(dm.is_fixed(dm.dof(node, 1)));
        }
        // Right edge must stay free.
        for node in mesh.edge_nodes(Edge::Right) {
            assert!(!dm.is_fixed(dm.dof(node, 0)));
        }
    }

    #[test]
    fn fixed_values_are_retrievable() {
        let mut dm = DofMap::new(3);
        dm.fix_dof(2, 0.5);
        assert!(dm.is_fixed(2));
        assert_eq!(dm.fixed_value(2), 0.5);
        assert_eq!(dm.fixed_value(0), 0.0);
        let fixed: Vec<(usize, f64)> = dm.fixed_dofs().collect();
        assert_eq!(fixed, vec![(2, 0.5)]);
    }

    #[test]
    fn mesh1_free_count_with_left_clamp() {
        // Mesh1 of Table 2: 7x1 elements, 16 nodes, left edge clamped
        // (2 nodes) -> 28 free equations, matching the paper's nEqn.
        let mesh = QuadMesh::cantilever(7, 1);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        assert_eq!(dm.n_free(), 28);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn dof_rejects_bad_node() {
        DofMap::new(2).dof(2, 0);
    }
}
