//! Element- and node-based domain partitioning.
//!
//! The paper contrasts two decompositions of the same mesh:
//!
//! - **Element-based (EDD, Section 3)**: elements are partitioned into `P`
//!   non-overlapping sets; interface *nodes* are duplicated on every
//!   subdomain whose elements touch them. Each subdomain assembles only its
//!   own elements, so the global operator is `Σ Bₛᵀ K̂⁽ˢ⁾ Bₛ` and interface
//!   values are combined by a nearest-neighbour sum (Eq. 28).
//! - **Node-based (RDD, Section 4)**: nodes (hence matrix rows) are
//!   partitioned; the assembled matrix is block-row distributed, and the
//!   matvec needs external interface values gathered from neighbours
//!   (Eq. 48).
//!
//! [`Subdomain`] carries everything a rank needs: its elements, its local
//! node numbering, node multiplicities, and per-neighbour shared-node lists
//! in a canonical order (ascending global node id) so that paired sends and
//! receives line up without any negotiation.

use crate::cells::Cells;
use crate::hex::HexMesh;
use crate::quad8::Quad8Mesh;
use crate::structured::QuadMesh;
use crate::tri::TriMesh;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A partition of mesh *elements* into `P` subdomains (EDD).
#[derive(Clone)]
pub struct ElementPartition {
    n_parts: usize,
    owner: Vec<usize>,
    /// Node-adjacent element pairs straddling a part boundary, when the
    /// constructor had mesh connectivity (`None` after
    /// [`ElementPartition::from_owner`]).
    edge_cut: Option<usize>,
}

/// Shared `P * max_part_size / n_items` imbalance, `0.0` for empty owner
/// arrays (an empty partition is vacuously balanced, not `NaN`).
fn imbalance_of(n_parts: usize, owner: &[usize]) -> f64 {
    if owner.is_empty() {
        return 0.0;
    }
    let mut sizes = vec![0usize; n_parts];
    for &o in owner {
        sizes[o] += 1;
    }
    let max = sizes.iter().copied().max().unwrap_or(0);
    (n_parts * max) as f64 / owner.len() as f64
}

/// Node-adjacent cell pairs whose cells live in different parts — the
/// communication-volume proxy reported in the partition's `Debug` output.
fn edge_cut_of<M: Cells>(mesh: &M, owner: &[usize]) -> usize {
    let mut node_cells: Vec<Vec<usize>> = vec![Vec::new(); mesh.n_cell_nodes()];
    for e in 0..mesh.n_cells() {
        for n in mesh.cell_nodes(e) {
            node_cells[n].push(e);
        }
    }
    let mut cut: BTreeSet<(usize, usize)> = BTreeSet::new();
    for cells in &node_cells {
        for (i, &a) in cells.iter().enumerate() {
            for &b in &cells[i + 1..] {
                if owner[a] != owner[b] {
                    cut.insert((a.min(b), a.max(b)));
                }
            }
        }
    }
    cut.len()
}

impl ElementPartition {
    /// Builds a partition from an explicit per-element owner array.
    ///
    /// The edge cut is unknown without mesh connectivity; chain
    /// [`ElementPartition::with_edge_cut`] to fill it in.
    ///
    /// # Panics
    /// Panics if any owner is `>= n_parts` or if some part is empty.
    pub fn from_owner(n_parts: usize, owner: Vec<usize>) -> Self {
        assert!(n_parts > 0, "need at least one part");
        let mut seen = vec![false; n_parts];
        for &o in &owner {
            assert!(o < n_parts, "element owner {o} out of range");
            seen[o] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every part must own at least one element"
        );
        ElementPartition {
            n_parts,
            owner,
            edge_cut: None,
        }
    }

    /// Computes and records the edge cut against `mesh`, for partitions
    /// built through [`ElementPartition::from_owner`].
    ///
    /// # Panics
    /// Panics if the partition does not match the mesh.
    pub fn with_edge_cut<M: Cells>(mut self, mesh: &M) -> Self {
        assert_eq!(
            self.owner.len(),
            mesh.n_cells(),
            "partition does not match mesh"
        );
        self.edge_cut = Some(edge_cut_of(mesh, &self.owner));
        self
    }

    /// Partition into `p` vertical strips of element columns (balanced to
    /// within one column). This is the natural partition of the paper's
    /// elongated cantilever meshes.
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the number of element columns.
    pub fn strips_x(mesh: &QuadMesh, p: usize) -> Self {
        assert!(p > 0 && p <= mesh.nx(), "strip count must be in 1..=nx");
        let nx = mesh.nx();
        let owner: Vec<usize> = (0..mesh.n_elems())
            .map(|e| {
                let i = e % nx;
                // Balanced block distribution of columns.
                (i * p) / nx
            })
            .collect();
        let edge_cut = Some(edge_cut_of(mesh, &owner));
        ElementPartition {
            n_parts: p,
            owner,
            edge_cut,
        }
    }

    /// Vertical element-column strips of a triangulated structured mesh
    /// (each source quad cell contributes its two triangles to the same
    /// strip, so the interfaces match [`ElementPartition::strips_x`]).
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the column count.
    pub fn strips_x_tri(mesh: &TriMesh, p: usize) -> Self {
        assert!(p > 0 && p <= mesh.nx(), "strip count must be in 1..=nx");
        let nx = mesh.nx();
        let owner: Vec<usize> = (0..mesh.n_elems())
            .map(|e| {
                let quad_cell = e / 2;
                let i = quad_cell % nx;
                (i * p) / nx
            })
            .collect();
        let edge_cut = Some(edge_cut_of(mesh, &owner));
        ElementPartition {
            n_parts: p,
            owner,
            edge_cut,
        }
    }

    /// Vertical element-column strips of an 8-node quadrilateral mesh.
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the column count.
    pub fn strips_x_quad8(mesh: &Quad8Mesh, p: usize) -> Self {
        assert!(p > 0 && p <= mesh.nx(), "strip count must be in 1..=nx");
        let nx = mesh.nx();
        let owner: Vec<usize> = (0..mesh.n_elems())
            .map(|e| {
                let i = e % nx;
                (i * p) / nx
            })
            .collect();
        let edge_cut = Some(edge_cut_of(mesh, &owner));
        ElementPartition {
            n_parts: p,
            owner,
            edge_cut,
        }
    }

    /// Partition into a `px x py` grid of element blocks.
    ///
    /// # Panics
    /// Panics if the grid is empty or exceeds the element grid.
    pub fn blocks(mesh: &QuadMesh, px: usize, py: usize) -> Self {
        Self::blocks_of(mesh, px, py)
    }

    /// [`ElementPartition::blocks`] over any structured [`Cells`] mesh
    /// (T3, Q4, Q8, …): a `px x py` grid of cell blocks, balanced to within
    /// one grid row/column. Cells mapping to the same grid coordinate (the
    /// two triangles of a split quad) stay in the same part, so the
    /// interfaces match the quadrilateral blocks exactly.
    ///
    /// # Panics
    /// Panics if the mesh has no logical grid ([`Cells::grid_dims`] is
    /// `None`), if the grid is empty, or if it exceeds the cell grid.
    pub fn blocks_of<M: Cells>(mesh: &M, px: usize, py: usize) -> Self {
        let (nx, ny) = mesh
            .grid_dims()
            .expect("blocks_of needs a structured mesh with a logical grid");
        assert!(px > 0 && py > 0, "block grid must be non-empty");
        assert!(px <= nx && py <= ny, "block grid exceeds element grid");
        let owner: Vec<usize> = (0..mesh.n_cells())
            .map(|e| {
                let (i, j) = mesh.grid_cell(e).expect("structured cell");
                let bi = (i * px) / nx;
                let bj = (j * py) / ny;
                bj * px + bi
            })
            .collect();
        let edge_cut = Some(edge_cut_of(mesh, &owner));
        ElementPartition {
            n_parts: px * py,
            owner,
            edge_cut,
        }
    }

    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Owner of element `e`.
    pub fn owner(&self, e: usize) -> usize {
        self.owner[e]
    }

    /// Per-element owner array.
    pub fn owners(&self) -> &[usize] {
        &self.owner
    }

    /// Node-adjacent element pairs straddling part boundaries, when known
    /// (see [`ElementPartition::with_edge_cut`]).
    pub fn edge_cut(&self) -> Option<usize> {
        self.edge_cut
    }

    /// Load imbalance `P * max_part_size / n_elems` — `1.0` is perfectly
    /// balanced; `2.0` means the largest part carries twice its fair share.
    /// A partition with no elements reports `0.0`, never `NaN`.
    pub fn imbalance(&self) -> f64 {
        imbalance_of(self.n_parts, &self.owner)
    }

    /// Builds the full subdomain descriptions for a quadrilateral mesh.
    pub fn subdomains(&self, mesh: &QuadMesh) -> Vec<Subdomain> {
        self.subdomains_of(mesh)
    }

    /// Builds subdomain descriptions for any [`Cells`] mesh (T3, Q4, Q8, …).
    pub fn subdomains_of<M: Cells>(&self, mesh: &M) -> Vec<Subdomain> {
        assert_eq!(
            self.owner.len(),
            mesh.n_cells(),
            "partition does not match mesh"
        );
        let p = self.n_parts;
        // Which parts touch each node, sorted (BTreeMap keyed by node).
        let mut node_parts: Vec<Vec<usize>> = vec![Vec::new(); mesh.n_cell_nodes()];
        for (e, &o) in self.owner.iter().enumerate() {
            for &n in &mesh.cell_nodes(e) {
                if !node_parts[n].contains(&o) {
                    node_parts[n].push(o);
                }
            }
        }
        for parts in &mut node_parts {
            parts.sort_unstable();
        }

        let mut subs: Vec<Subdomain> = (0..p)
            .map(|rank| Subdomain {
                rank,
                elements: Vec::new(),
                nodes: Vec::new(),
                global_to_local: BTreeMap::new(),
                multiplicity: Vec::new(),
                neighbors: Vec::new(),
            })
            .collect();

        for (e, &o) in self.owner.iter().enumerate() {
            subs[o].elements.push(e);
        }

        // Local node sets in ascending global order.
        for (n, parts) in node_parts.iter().enumerate() {
            for &s in parts {
                let local = subs[s].nodes.len();
                subs[s].nodes.push(n);
                subs[s].global_to_local.insert(n, local);
                subs[s].multiplicity.push(parts.len());
            }
        }

        // Neighbour links: nodes shared between pairs of parts, ascending
        // global id (canonical on both sides).
        for (n, parts) in node_parts.iter().enumerate() {
            if parts.len() < 2 {
                continue;
            }
            for (ai, &a) in parts.iter().enumerate() {
                for &b in &parts[ai + 1..] {
                    let la = subs[a].global_to_local[&n];
                    push_shared(&mut subs[a].neighbors, b, la);
                    let lb = subs[b].global_to_local[&n];
                    push_shared(&mut subs[b].neighbors, a, lb);
                }
            }
        }
        for s in &mut subs {
            s.neighbors.sort_by_key(|l| l.rank);
        }
        subs
    }
}

impl fmt::Debug for ElementPartition {
    /// Quality-annotated summary: per-part sizes, the imbalance ratio and —
    /// when the constructor saw the mesh — the edge cut.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sizes = vec![0usize; self.n_parts];
        for &o in &self.owner {
            sizes[o] += 1;
        }
        let mut d = f.debug_struct("ElementPartition");
        d.field("n_parts", &self.n_parts)
            .field("n_elems", &self.owner.len())
            .field("part_sizes", &sizes)
            .field("imbalance", &self.imbalance());
        match self.edge_cut {
            Some(cut) => d.field("edge_cut", &cut),
            None => d.field("edge_cut", &"unknown"),
        };
        d.finish()
    }
}

fn push_shared(links: &mut Vec<NeighborLink>, rank: usize, local_node: usize) {
    if let Some(l) = links.iter_mut().find(|l| l.rank == rank) {
        l.shared_local_nodes.push(local_node);
    } else {
        links.push(NeighborLink {
            rank,
            shared_local_nodes: vec![local_node],
        });
    }
}

/// Shared-interface description between one subdomain and one neighbour.
///
/// `shared_local_nodes` lists *local* node indices in ascending global-node
/// order; since both sides sort by the same global ids, entry `k` on rank `a`
/// and entry `k` on rank `b` refer to the same physical node.
#[derive(Debug, Clone)]
pub struct NeighborLink {
    /// The neighbouring subdomain's rank.
    pub rank: usize,
    /// Local node indices shared with that neighbour, canonical order.
    pub shared_local_nodes: Vec<usize>,
}

/// One subdomain of an element-based partition.
#[derive(Debug, Clone)]
pub struct Subdomain {
    /// This subdomain's rank (its index in the partition).
    pub rank: usize,
    /// Global ids of the elements owned by this subdomain.
    pub elements: Vec<usize>,
    /// Global ids of all nodes touched by those elements, ascending.
    pub nodes: Vec<usize>,
    /// Map from global node id to local index in `nodes`.
    global_to_local: BTreeMap<usize, usize>,
    /// For each local node, how many subdomains share it (1 = interior).
    pub multiplicity: Vec<usize>,
    /// Interface links to neighbouring subdomains, sorted by rank.
    pub neighbors: Vec<NeighborLink>,
}

impl Subdomain {
    /// Number of local nodes.
    pub fn n_local_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The local index of global node `n`, if present.
    pub fn local_node(&self, n: usize) -> Option<usize> {
        self.global_to_local.get(&n).copied()
    }

    /// Whether the local node `l` lies on the subdomain interface.
    pub fn is_interface(&self, l: usize) -> bool {
        self.multiplicity[l] > 1
    }

    /// Number of interface nodes.
    pub fn n_interface_nodes(&self) -> usize {
        self.multiplicity.iter().filter(|&&m| m > 1).count()
    }
}

/// Node pairs sharing an element whose nodes live in different parts —
/// the RDD counterpart of [`ElementPartition::edge_cut`]: off-diagonal
/// stiffness couplings `K_ij != 0` that cross the block-row partition.
fn node_cut_of<M: Cells>(mesh: &M, owner: &[usize]) -> usize {
    let mut cut: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in 0..mesh.n_cells() {
        let nodes = mesh.cell_nodes(e);
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if owner[a] != owner[b] {
                    cut.insert((a.min(b), a.max(b)));
                }
            }
        }
    }
    cut.len()
}

/// A partition of mesh *nodes* into `P` parts (RDD block-row partition).
#[derive(Debug, Clone)]
pub struct NodePartition {
    n_parts: usize,
    owner: Vec<usize>,
    /// Cross-part node couplings, when the constructor (or
    /// [`NodePartition::with_edge_cut`]) saw mesh connectivity.
    edge_cut: Option<usize>,
}

impl NodePartition {
    /// Builds a partition from an explicit per-node owner array.
    ///
    /// # Panics
    /// Panics if any owner is out of range or some part is empty.
    pub fn from_owner(n_parts: usize, owner: Vec<usize>) -> Self {
        assert!(n_parts > 0, "need at least one part");
        let mut seen = vec![false; n_parts];
        for &o in &owner {
            assert!(o < n_parts, "node owner {o} out of range");
            seen[o] = true;
        }
        assert!(seen.iter().all(|&s| s), "every part must own a node");
        NodePartition {
            n_parts,
            owner,
            edge_cut: None,
        }
    }

    /// Computes and records the node-coupling cut against `mesh` — parity
    /// with [`ElementPartition::with_edge_cut`] so both decompositions
    /// report comparable communication-volume proxies.
    ///
    /// # Panics
    /// Panics if the partition does not match the mesh's node count.
    pub fn with_edge_cut<M: Cells>(mut self, mesh: &M) -> Self {
        assert_eq!(
            self.owner.len(),
            mesh.n_cell_nodes(),
            "partition does not match mesh"
        );
        self.edge_cut = Some(node_cut_of(mesh, &self.owner));
        self
    }

    /// Cross-part node couplings, when known (see
    /// [`NodePartition::with_edge_cut`]).
    pub fn edge_cut(&self) -> Option<usize> {
        self.edge_cut
    }

    /// Load imbalance `P * max_part_size / n_nodes` — parity with
    /// [`ElementPartition::imbalance`]; `0.0` for an empty owner array.
    pub fn imbalance(&self) -> f64 {
        imbalance_of(self.n_parts, &self.owner)
    }

    /// Splits the node ids into `p` contiguous ranges, balanced to within
    /// one node. With row-major numbering this yields horizontal strips —
    /// the natural block-row partition of the assembled matrix.
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the node count.
    pub fn contiguous(n_nodes: usize, p: usize) -> Self {
        assert!(p > 0 && p <= n_nodes, "part count must be in 1..=n_nodes");
        let owner = (0..n_nodes).map(|n| (n * p) / n_nodes).collect();
        NodePartition {
            n_parts: p,
            owner,
            edge_cut: None,
        }
    }

    /// Partitions the nodes of a structured mesh into `p` vertical strips
    /// of node columns — the node-based counterpart of
    /// [`ElementPartition::strips_x`], giving the same interface
    /// orientation for fair EDD-vs-RDD comparisons.
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the number of node columns.
    pub fn strips_x(mesh: &QuadMesh, p: usize) -> Self {
        let ncols = mesh.nx() + 1;
        assert!(p > 0 && p <= ncols, "strip count must be in 1..=nx+1");
        let owner: Vec<usize> = (0..mesh.n_nodes())
            .map(|n| {
                let i = n % ncols;
                (i * p) / ncols
            })
            .collect();
        let edge_cut = Some(node_cut_of(mesh, &owner));
        NodePartition {
            n_parts: p,
            owner,
            edge_cut,
        }
    }

    /// Partitions the nodes of a structured hexahedral mesh into `p`
    /// vertical slabs of node columns (constant-`x` planes) — the 3-D
    /// counterpart of [`NodePartition::strips_x`], so RDD block rows cut
    /// the same interfaces an x-strip element partition does.
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the number of node planes.
    pub fn strips_x_hex(mesh: &HexMesh, p: usize) -> Self {
        let ncols = mesh.nx() + 1;
        assert!(p > 0 && p <= ncols, "strip count must be in 1..=nx+1");
        let owner: Vec<usize> = (0..mesh.n_nodes())
            .map(|n| {
                let i = n % ncols;
                (i * p) / ncols
            })
            .collect();
        let edge_cut = Some(node_cut_of(mesh, &owner));
        NodePartition {
            n_parts: p,
            owner,
            edge_cut,
        }
    }

    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Owner of node `n`.
    pub fn owner(&self, n: usize) -> usize {
        self.owner[n]
    }

    /// Per-node owner array.
    pub fn owners(&self) -> &[usize] {
        &self.owner
    }

    /// The nodes owned by `rank`, ascending.
    pub fn nodes_of(&self, rank: usize) -> Vec<usize> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o == rank)
            .map(|(n, _)| n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_cover_all_elements_once() {
        let mesh = QuadMesh::rectangle(8, 3, 8.0, 3.0);
        let part = ElementPartition::strips_x(&mesh, 4);
        assert_eq!(part.n_parts(), 4);
        let mut counts = vec![0usize; 4];
        for e in 0..mesh.n_elems() {
            counts[part.owner(e)] += 1;
        }
        // 8 columns over 4 parts -> 2 columns x 3 rows = 6 elements each.
        assert_eq!(counts, vec![6, 6, 6, 6]);
    }

    #[test]
    fn strip_subdomains_have_linear_neighbor_chain() {
        let mesh = QuadMesh::rectangle(8, 2, 8.0, 2.0);
        let part = ElementPartition::strips_x(&mesh, 4);
        let subs = part.subdomains(&mesh);
        assert_eq!(subs.len(), 4);
        // Interior strips have exactly two neighbours, end strips one.
        assert_eq!(subs[0].neighbors.len(), 1);
        assert_eq!(subs[1].neighbors.len(), 2);
        assert_eq!(subs[2].neighbors.len(), 2);
        assert_eq!(subs[3].neighbors.len(), 1);
        assert_eq!(subs[0].neighbors[0].rank, 1);
        assert_eq!(subs[3].neighbors[0].rank, 2);
        // Each strip interface is one node column: ny+1 = 3 nodes.
        assert_eq!(subs[0].neighbors[0].shared_local_nodes.len(), 3);
    }

    #[test]
    fn shared_node_lists_pair_up() {
        let mesh = QuadMesh::rectangle(6, 4, 6.0, 4.0);
        let part = ElementPartition::blocks(&mesh, 2, 2);
        let subs = part.subdomains(&mesh);
        for s in &subs {
            for link in &s.neighbors {
                let t = &subs[link.rank];
                let back = t
                    .neighbors
                    .iter()
                    .find(|l| l.rank == s.rank)
                    .expect("neighbour link must be symmetric");
                assert_eq!(link.shared_local_nodes.len(), back.shared_local_nodes.len());
                // Entry k on both sides must be the same global node.
                for (la, lb) in link.shared_local_nodes.iter().zip(&back.shared_local_nodes) {
                    assert_eq!(s.nodes[*la], t.nodes[*lb]);
                }
            }
        }
    }

    #[test]
    fn multiplicities_sum_matches_duplication() {
        // Sum over subdomains of local node counts equals sum over nodes of
        // multiplicity.
        let mesh = QuadMesh::rectangle(5, 5, 5.0, 5.0);
        let part = ElementPartition::blocks(&mesh, 2, 2);
        let subs = part.subdomains(&mesh);
        let total_local: usize = subs.iter().map(|s| s.n_local_nodes()).sum();
        assert!(total_local > mesh.n_nodes(), "interfaces are duplicated");
        // Each node appears exactly once per owning subdomain.
        let mut per_node = vec![0usize; mesh.n_nodes()];
        for s in &subs {
            for &n in &s.nodes {
                per_node[n] += 1;
            }
        }
        for (n, &cnt) in per_node.iter().enumerate() {
            assert!(cnt >= 1, "node {n} lost");
        }
        let mult_sum: usize = subs
            .iter()
            .flat_map(|s| s.multiplicity.iter())
            .sum::<usize>();
        // Sum of multiplicities counts each node (multiplicity m) m times in
        // each of its m subdomains: m^2 total. Cross-check against per_node.
        let expect: usize = per_node.iter().map(|&c| c * c).sum();
        assert_eq!(mult_sum, expect);
    }

    #[test]
    fn corner_nodes_in_block_partition_have_multiplicity_four() {
        let mesh = QuadMesh::rectangle(4, 4, 4.0, 4.0);
        let part = ElementPartition::blocks(&mesh, 2, 2);
        let subs = part.subdomains(&mesh);
        // The centre node (2,2) = node 12 touches all four blocks.
        let centre = mesh.node_at(2, 2);
        for s in &subs {
            let l = s.local_node(centre).expect("centre is in every block");
            assert_eq!(s.multiplicity[l], 4);
            assert!(s.is_interface(l));
        }
        // All four blocks are pairwise neighbours through the centre node.
        assert_eq!(subs[0].neighbors.len(), 3);
    }

    #[test]
    fn interior_nodes_have_multiplicity_one() {
        let mesh = QuadMesh::rectangle(6, 2, 6.0, 2.0);
        let part = ElementPartition::strips_x(&mesh, 2);
        let subs = part.subdomains(&mesh);
        let interior = mesh.node_at(1, 1); // deep inside strip 0
        let s0 = &subs[0];
        let l = s0.local_node(interior).unwrap();
        assert_eq!(s0.multiplicity[l], 1);
        assert!(!s0.is_interface(l));
        assert!(subs[1].local_node(interior).is_none());
        assert_eq!(s0.n_interface_nodes(), 3);
    }

    #[test]
    fn single_part_partition_has_no_neighbors() {
        let mesh = QuadMesh::rectangle(3, 3, 3.0, 3.0);
        let part = ElementPartition::strips_x(&mesh, 1);
        let subs = part.subdomains(&mesh);
        assert_eq!(subs.len(), 1);
        assert!(subs[0].neighbors.is_empty());
        assert_eq!(subs[0].n_local_nodes(), mesh.n_nodes());
        assert!(subs[0].multiplicity.iter().all(|&m| m == 1));
    }

    #[test]
    fn from_owner_validates() {
        let mesh = QuadMesh::rectangle(2, 1, 2.0, 1.0);
        let part = ElementPartition::from_owner(2, vec![0, 1]);
        assert_eq!(part.owner(0), 0);
        assert_eq!(part.owner(1), 1);
        let _ = mesh; // explicit partitions need not reference a mesh
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_owner_rejects_bad_rank() {
        ElementPartition::from_owner(2, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn from_owner_rejects_empty_part() {
        ElementPartition::from_owner(3, vec![0, 1, 0]);
    }

    #[test]
    fn blocks_of_matches_blocks_on_quads() {
        let mesh = QuadMesh::rectangle(6, 4, 6.0, 4.0);
        let a = ElementPartition::blocks(&mesh, 3, 2);
        let b = ElementPartition::blocks_of(&mesh, 3, 2);
        assert_eq!(a.owners(), b.owners());
        assert_eq!(a.n_parts(), 6);
        assert_eq!(a.edge_cut(), b.edge_cut());
        assert!(a.edge_cut().is_some());
    }

    #[test]
    fn blocks_of_partitions_triangles_and_quad8() {
        let quad = QuadMesh::rectangle(6, 4, 6.0, 4.0);
        let tri = crate::tri::TriMesh::from_quad_mesh(&quad);
        let tp = ElementPartition::blocks_of(&tri, 2, 2);
        assert_eq!(tp.n_parts(), 4);
        // Both triangles of every split quad share an owner, and it equals
        // the owner the quad partition assigns to that cell.
        let qp = ElementPartition::blocks_of(&quad, 2, 2);
        for e in 0..quad.n_elems() {
            assert_eq!(tp.owner(2 * e), tp.owner(2 * e + 1));
            assert_eq!(tp.owner(2 * e), qp.owner(e));
        }

        let q8 = Quad8Mesh::rectangle(6, 4, 6.0, 4.0);
        let ep = ElementPartition::blocks_of(&q8, 2, 2);
        assert_eq!(ep.owners(), qp.owners());
        // Q8 edge midside nodes only join cells that already share corner
        // nodes, so the cut pairs match the 4-node partition's.
        assert_eq!(ep.edge_cut(), qp.edge_cut());
    }

    #[test]
    fn edge_cut_counts_straddling_adjacent_pairs() {
        // Two elements in a row, split in half: exactly one adjacent pair
        // crosses the boundary.
        let mesh = QuadMesh::rectangle(2, 1, 2.0, 1.0);
        let part = ElementPartition::strips_x(&mesh, 2);
        assert_eq!(part.edge_cut(), Some(1));
        // One part: nothing to cut.
        let whole = ElementPartition::strips_x(&mesh, 1);
        assert_eq!(whole.edge_cut(), Some(0));
    }

    #[test]
    fn debug_output_reports_partition_quality() {
        let mesh = QuadMesh::rectangle(8, 3, 8.0, 3.0);
        let part = ElementPartition::strips_x(&mesh, 4);
        let text = format!("{part:?}");
        assert!(text.contains("part_sizes: [6, 6, 6, 6]"), "{text}");
        assert!(text.contains("imbalance: 1.0"), "{text}");
        assert!(text.contains("edge_cut:"), "{text}");
        // from_owner has no mesh: the cut is reported as unknown until
        // with_edge_cut supplies one.
        let manual = ElementPartition::from_owner(2, vec![0, 0, 0, 1]);
        let text = format!("{manual:?}");
        assert!(text.contains("edge_cut: \"unknown\""), "{text}");
        assert!(text.contains("imbalance: 1.5"), "{text}");
        let mesh = QuadMesh::rectangle(4, 1, 4.0, 1.0);
        let manual = ElementPartition::from_owner(2, vec![0, 0, 0, 1]).with_edge_cut(&mesh);
        assert_eq!(manual.edge_cut(), Some(1));
    }

    #[test]
    fn node_partition_contiguous_is_balanced() {
        let np = NodePartition::contiguous(10, 3);
        let sizes: Vec<usize> = (0..3).map(|r| np.nodes_of(r).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        // Ranges are contiguous and ordered.
        assert_eq!(np.owner(0), 0);
        assert_eq!(np.owner(9), 2);
        for n in 1..10 {
            assert!(np.owner(n) >= np.owner(n - 1));
        }
    }

    #[test]
    fn node_strips_follow_columns() {
        let mesh = QuadMesh::rectangle(5, 2, 5.0, 2.0); // 6 node columns
        let np = NodePartition::strips_x(&mesh, 3);
        for j in 0..=2 {
            assert_eq!(np.owner(mesh.node_at(0, j)), 0);
            assert_eq!(np.owner(mesh.node_at(2, j)), 1);
            assert_eq!(np.owner(mesh.node_at(5, j)), 2);
        }
        // All parts non-empty.
        for r in 0..3 {
            assert!(!np.nodes_of(r).is_empty());
        }
    }

    #[test]
    fn imbalance_of_elementless_partition_is_zero() {
        // `from_owner` rejects empty parts, but internal callers (the graph
        // partitioner's intermediate states) construct partitions directly;
        // imbalance must stay finite, not NaN.
        let empty = ElementPartition {
            n_parts: 3,
            owner: Vec::new(),
            edge_cut: None,
        };
        assert_eq!(empty.imbalance(), 0.0);
        let empty_nodes = NodePartition {
            n_parts: 2,
            owner: Vec::new(),
            edge_cut: None,
        };
        assert_eq!(empty_nodes.imbalance(), 0.0);
    }

    #[test]
    fn node_partition_reports_cut_and_imbalance_parity() {
        let mesh = QuadMesh::rectangle(5, 2, 5.0, 2.0);
        let np = NodePartition::strips_x(&mesh, 3);
        // strips_x sees the mesh, so the cut is recorded eagerly.
        let cut = np.edge_cut().expect("strips_x records its cut");
        assert!(cut > 0);
        // from_owner does not know the mesh until with_edge_cut.
        let manual = NodePartition::from_owner(3, np.owners().to_vec());
        assert_eq!(manual.edge_cut(), None);
        let manual = manual.with_edge_cut(&mesh);
        assert_eq!(manual.edge_cut(), Some(cut));
        assert!(np.imbalance() >= 1.0);
        // One part split down the middle: couplings across the boundary
        // column pair every boundary node with its 2-3 cross neighbours.
        let half = NodePartition::contiguous(mesh.n_nodes(), 2).with_edge_cut(&mesh);
        assert!(half.edge_cut().unwrap() > 0);
    }

    #[test]
    fn node_partition_from_owner_round_trips() {
        let np = NodePartition::from_owner(2, vec![0, 1, 0, 1]);
        assert_eq!(np.nodes_of(0), vec![0, 2]);
        assert_eq!(np.nodes_of(1), vec![1, 3]);
        assert_eq!(np.owners(), &[0, 1, 0, 1]);
    }
}
