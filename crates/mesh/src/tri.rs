//! Structured triangle meshes (3-node elements).
//!
//! Section 5 of the paper notes that the matrix graph `G(K)` of a 3-noded
//! triangular discretization is *planar*, which is what makes scalable
//! row-based SpMV possible — while 4- and 8-noded quadrilaterals destroy
//! planarity. [`TriMesh`] splits each cell of a [`QuadMesh`] into two
//! triangles, keeping the **same node numbering**, so DOF maps, boundary
//! edges and load helpers are shared with the quadrilateral mesh.

use crate::numbering::Edge;
use crate::structured::QuadMesh;

/// A triangle mesh obtained by splitting structured quadrilateral cells.
#[derive(Debug, Clone)]
pub struct TriMesh {
    coords: Vec<[f64; 2]>,
    elems: Vec<[usize; 3]>,
    nx: usize,
    ny: usize,
    lx: f64,
    ly: f64,
}

impl TriMesh {
    /// Splits every cell of `q` along its `(n0, n2)` diagonal into the
    /// counter-clockwise triangles `(n0, n1, n2)` and `(n0, n2, n3)`.
    pub fn from_quad_mesh(q: &QuadMesh) -> Self {
        let mut elems = Vec::with_capacity(2 * q.n_elems());
        for e in 0..q.n_elems() {
            let [n0, n1, n2, n3] = q.elem_nodes(e);
            elems.push([n0, n1, n2]);
            elems.push([n0, n2, n3]);
        }
        TriMesh {
            coords: q.coords().to_vec(),
            elems,
            nx: q.nx(),
            ny: q.ny(),
            lx: q.lx(),
            ly: q.ly(),
        }
    }

    /// A triangulated `nx × ny` cantilever (unit-square cells).
    pub fn cantilever(nx: usize, ny: usize) -> Self {
        Self::from_quad_mesh(&QuadMesh::cantilever(nx, ny))
    }

    /// Number of nodes (same numbering as the source quad mesh).
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of triangles.
    pub fn n_elems(&self) -> usize {
        self.elems.len()
    }

    /// Node coordinates.
    pub fn coords(&self) -> &[[f64; 2]] {
        &self.coords
    }

    /// Coordinates of one node.
    pub fn node_coords(&self, n: usize) -> [f64; 2] {
        self.coords[n]
    }

    /// Connectivity of triangle `e` (counter-clockwise).
    pub fn elem_nodes(&self, e: usize) -> [usize; 3] {
        self.elems[e]
    }

    /// Coordinates of the three nodes of triangle `e`.
    pub fn elem_coords(&self, e: usize) -> [[f64; 2]; 3] {
        let n = self.elems[e];
        [self.coords[n[0]], self.coords[n[1]], self.coords[n[2]]]
    }

    /// Boundary edge nodes (delegates to the quad numbering).
    pub fn edge_nodes(&self, edge: Edge) -> Vec<usize> {
        QuadMesh::rectangle(self.nx, self.ny, self.lx, self.ly).edge_nodes(edge)
    }

    /// Grid lookup, shared with [`QuadMesh::node_at`].
    pub fn node_at(&self, i: usize, j: usize) -> usize {
        assert!(i <= self.nx && j <= self.ny, "grid position out of range");
        j * (self.nx + 1) + i
    }

    /// Element columns of the source grid.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Element rows of the source grid.
    pub fn ny(&self) -> usize {
        self.ny
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitting_doubles_element_count() {
        let q = QuadMesh::rectangle(4, 3, 4.0, 3.0);
        let t = TriMesh::from_quad_mesh(&q);
        assert_eq!(t.n_elems(), 24);
        assert_eq!(t.n_nodes(), q.n_nodes());
    }

    #[test]
    fn triangles_are_ccw_with_half_cell_area() {
        let t = TriMesh::cantilever(3, 2);
        for e in 0..t.n_elems() {
            let c = t.elem_coords(e);
            let area = 0.5
                * ((c[1][0] - c[0][0]) * (c[2][1] - c[0][1])
                    - (c[2][0] - c[0][0]) * (c[1][1] - c[0][1]));
            assert!((area - 0.5).abs() < 1e-12, "element {e} area {area}");
        }
    }

    #[test]
    fn areas_tile_the_domain() {
        let t = TriMesh::cantilever(5, 4);
        let total: f64 = (0..t.n_elems())
            .map(|e| {
                let c = t.elem_coords(e);
                0.5 * ((c[1][0] - c[0][0]) * (c[2][1] - c[0][1])
                    - (c[2][0] - c[0][0]) * (c[1][1] - c[0][1]))
            })
            .sum();
        assert!((total - 20.0).abs() < 1e-10);
    }

    #[test]
    fn edge_nodes_match_quad_numbering() {
        let q = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        let t = TriMesh::from_quad_mesh(&q);
        assert_eq!(t.edge_nodes(Edge::Left), q.edge_nodes(Edge::Left));
        assert_eq!(t.node_at(3, 2), q.node_at(3, 2));
    }
}
