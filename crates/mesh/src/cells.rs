//! The [`Cells`] abstraction: any mesh as a list of node-connected cells.
//!
//! Partitioning, interface discovery and subdomain construction only need
//! connectivity — not geometry or element order. Abstracting it lets the
//! element-based decomposition machinery run unchanged over 4-node
//! quadrilaterals, 3-node triangles and 8-node serendipity quadrilaterals,
//! which is what the Section-5 element-family comparisons need.

use crate::quad8::Quad8Mesh;
use crate::structured::QuadMesh;
use crate::tri::TriMesh;

/// A mesh viewed as cells over shared nodes.
pub trait Cells {
    /// Total number of nodes.
    fn n_cell_nodes(&self) -> usize;
    /// Total number of cells.
    fn n_cells(&self) -> usize;
    /// Node ids of cell `e`.
    fn cell_nodes(&self, e: usize) -> Vec<usize>;
    /// For structured meshes: the logical cell-grid dimensions `(nx, ny)`.
    /// `None` for unstructured meshes — grid-based partitioners then refuse
    /// the mesh instead of guessing a layout.
    fn grid_dims(&self) -> Option<(usize, usize)> {
        None
    }
    /// The logical grid coordinates `(i, j)` of cell `e`, with
    /// `i < nx, j < ny` from [`Cells::grid_dims`]. Cells mapping to the same
    /// coordinate (e.g. the two triangles of a split quad) are kept together
    /// by grid partitioners.
    fn grid_cell(&self, e: usize) -> Option<(usize, usize)> {
        let _ = e;
        None
    }
}

impl Cells for QuadMesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
    fn grid_dims(&self) -> Option<(usize, usize)> {
        Some((self.nx(), self.ny()))
    }
    fn grid_cell(&self, e: usize) -> Option<(usize, usize)> {
        Some((e % self.nx(), e / self.nx()))
    }
}

impl Cells for TriMesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
    fn grid_dims(&self) -> Option<(usize, usize)> {
        Some((self.nx(), self.ny()))
    }
    fn grid_cell(&self, e: usize) -> Option<(usize, usize)> {
        // Two triangles per source quad cell share its grid coordinate, so
        // they always land in the same part.
        let quad = e / 2;
        Some((quad % self.nx(), quad / self.nx()))
    }
}

impl Cells for Quad8Mesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
    fn grid_dims(&self) -> Option<(usize, usize)> {
        Some((self.nx(), self.ny()))
    }
    fn grid_cell(&self, e: usize) -> Option<(usize, usize)> {
        Some((e % self.nx(), e / self.nx()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_meshes_implement_cells() {
        let q = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(Cells::n_cells(&q), 6);
        assert_eq!(Cells::cell_nodes(&q, 0).len(), 4);

        let t = TriMesh::from_quad_mesh(&q);
        assert_eq!(Cells::n_cells(&t), 12);
        assert_eq!(Cells::cell_nodes(&t, 0).len(), 3);
        assert_eq!(Cells::n_cell_nodes(&t), Cells::n_cell_nodes(&q));

        let e = Quad8Mesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(Cells::n_cells(&e), 6);
        assert_eq!(Cells::cell_nodes(&e, 0).len(), 8);
    }

    #[test]
    fn grid_cells_enumerate_the_logical_grid() {
        let q = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(q.grid_dims(), Some((3, 2)));
        assert_eq!(q.grid_cell(0), Some((0, 0)));
        assert_eq!(q.grid_cell(5), Some((2, 1)));

        let t = TriMesh::from_quad_mesh(&q);
        assert_eq!(t.grid_dims(), Some((3, 2)));
        // Both triangles of quad cell 4 map to its coordinate (1, 1).
        assert_eq!(t.grid_cell(8), Some((1, 1)));
        assert_eq!(t.grid_cell(9), Some((1, 1)));

        let e = Quad8Mesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(e.grid_dims(), Some((3, 2)));
        assert_eq!(e.grid_cell(4), Some((1, 1)));
    }
}
