//! The [`Cells`] abstraction: any mesh as a list of node-connected cells.
//!
//! Partitioning, interface discovery and subdomain construction only need
//! connectivity — not geometry or element order. Abstracting it lets the
//! element-based decomposition machinery run unchanged over 4-node
//! quadrilaterals, 3-node triangles and 8-node serendipity quadrilaterals,
//! which is what the Section-5 element-family comparisons need.

use crate::quad8::Quad8Mesh;
use crate::structured::QuadMesh;
use crate::tri::TriMesh;

/// A mesh viewed as cells over shared nodes.
pub trait Cells {
    /// Total number of nodes.
    fn n_cell_nodes(&self) -> usize;
    /// Total number of cells.
    fn n_cells(&self) -> usize;
    /// Node ids of cell `e`.
    fn cell_nodes(&self, e: usize) -> Vec<usize>;
}

impl Cells for QuadMesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
}

impl Cells for TriMesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
}

impl Cells for Quad8Mesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_meshes_implement_cells() {
        let q = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(Cells::n_cells(&q), 6);
        assert_eq!(Cells::cell_nodes(&q, 0).len(), 4);

        let t = TriMesh::from_quad_mesh(&q);
        assert_eq!(Cells::n_cells(&t), 12);
        assert_eq!(Cells::cell_nodes(&t, 0).len(), 3);
        assert_eq!(Cells::n_cell_nodes(&t), Cells::n_cell_nodes(&q));

        let e = Quad8Mesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(Cells::n_cells(&e), 6);
        assert_eq!(Cells::cell_nodes(&e, 0).len(), 8);
    }
}
