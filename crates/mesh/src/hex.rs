//! Structured 3-D hexahedral meshes.
//!
//! The 3-D elasticity workload runs on a box cantilever discretized by
//! `nx x ny x nz` eight-node hexahedra. Nodes are numbered slab-major:
//! node `(i, j, k)` (column `i` of `0..=nx`, row `j` of `0..=ny`, slab `k`
//! of `0..=nz`) has index `k*(nx+1)*(ny+1) + j*(nx+1) + i`. Element
//! `(i, j, k)` has the standard hex8 connectivity — the bottom face
//! `[(i,j,k), (i+1,j,k), (i+1,j+1,k), (i,j+1,k)]` counter-clockwise when
//! seen from `+z`, then the same four corners on the `k+1` slab.

use crate::cells::Cells;

/// A boundary face of the box domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    /// `x = 0`.
    XMin,
    /// `x = lx`.
    XMax,
    /// `y = 0`.
    YMin,
    /// `y = ly`.
    YMax,
    /// `z = 0`.
    ZMin,
    /// `z = lz`.
    ZMax,
}

/// A structured mesh of 8-node hexahedra on a box.
///
/// ```
/// use parfem_mesh::HexMesh;
///
/// let mesh = HexMesh::cantilever(4, 2, 2);
/// assert_eq!(mesh.n_nodes(), 45);
/// assert_eq!(mesh.n_elems(), 16);
/// assert_eq!(mesh.elem_nodes(0), [0, 1, 6, 5, 15, 16, 21, 20]);
/// ```
#[derive(Debug, Clone)]
pub struct HexMesh {
    nx: usize,
    ny: usize,
    nz: usize,
    lx: f64,
    ly: f64,
    lz: f64,
    coords: Vec<[f64; 3]>,
    elems: Vec<[usize; 8]>,
}

impl HexMesh {
    /// Builds an `nx x ny x nz`-element mesh of the box
    /// `[0, lx] x [0, ly] x [0, lz]`.
    ///
    /// # Panics
    /// Panics if any element count is zero or a length is non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn box_mesh(nx: usize, ny: usize, nz: usize, lx: f64, ly: f64, lz: f64) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "mesh must have at least one element"
        );
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "mesh lengths must be positive"
        );
        let (sx, sy) = (nx + 1, (nx + 1) * (ny + 1));
        let mut coords = Vec::with_capacity(sy * (nz + 1));
        for k in 0..=nz {
            for j in 0..=ny {
                for i in 0..=nx {
                    coords.push([
                        lx * i as f64 / nx as f64,
                        ly * j as f64 / ny as f64,
                        lz * k as f64 / nz as f64,
                    ]);
                }
            }
        }
        let mut elems = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let n0 = k * sy + j * sx + i;
                    elems.push([
                        n0,
                        n0 + 1,
                        n0 + sx + 1,
                        n0 + sx,
                        n0 + sy,
                        n0 + sy + 1,
                        n0 + sy + sx + 1,
                        n0 + sy + sx,
                    ]);
                }
            }
        }
        HexMesh {
            nx,
            ny,
            nz,
            lx,
            ly,
            lz,
            coords,
            elems,
        }
    }

    /// A box cantilever with unit-cube elements — the 3-D counterpart of
    /// [`crate::QuadMesh::cantilever`], clamped at the `x = 0` face in the
    /// standard workloads.
    pub fn cantilever(nx: usize, ny: usize, nz: usize) -> Self {
        Self::box_mesh(nx, ny, nz, nx as f64, ny as f64, nz as f64)
    }

    /// Elements in the x direction.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Elements in the y direction.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Elements in the z direction.
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Domain length in x.
    pub fn lx(&self) -> f64 {
        self.lx
    }

    /// Domain length in y.
    pub fn ly(&self) -> f64 {
        self.ly
    }

    /// Domain length in z.
    pub fn lz(&self) -> f64 {
        self.lz
    }

    /// Total number of nodes (`(nx+1) * (ny+1) * (nz+1)`).
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Total number of elements.
    pub fn n_elems(&self) -> usize {
        self.elems.len()
    }

    /// Node coordinates, indexed by node id.
    pub fn coords(&self) -> &[[f64; 3]] {
        &self.coords
    }

    /// The coordinates of one node.
    pub fn node_coords(&self, node: usize) -> [f64; 3] {
        self.coords[node]
    }

    /// Element connectivity (hex8 node ids), indexed by element.
    pub fn elems(&self) -> &[[usize; 8]] {
        &self.elems
    }

    /// Connectivity of one element.
    pub fn elem_nodes(&self, e: usize) -> [usize; 8] {
        self.elems[e]
    }

    /// The node id at grid position `(i, j, k)`.
    ///
    /// # Panics
    /// Panics if the position is outside the grid.
    pub fn node_at(&self, i: usize, j: usize, k: usize) -> usize {
        assert!(
            i <= self.nx && j <= self.ny && k <= self.nz,
            "grid position out of range"
        );
        k * (self.nx + 1) * (self.ny + 1) + j * (self.nx + 1) + i
    }

    /// The coordinates of the eight nodes of element `e`, connectivity order.
    pub fn elem_coords(&self, e: usize) -> [[f64; 3]; 8] {
        let n = self.elems[e];
        [
            self.coords[n[0]],
            self.coords[n[1]],
            self.coords[n[2]],
            self.coords[n[3]],
            self.coords[n[4]],
            self.coords[n[5]],
            self.coords[n[6]],
            self.coords[n[7]],
        ]
    }

    /// Node ids on one boundary face of the box, ascending.
    pub fn face_nodes(&self, face: Face) -> Vec<usize> {
        let mut out = Vec::new();
        for k in 0..=self.nz {
            for j in 0..=self.ny {
                for i in 0..=self.nx {
                    let on = match face {
                        Face::XMin => i == 0,
                        Face::XMax => i == self.nx,
                        Face::YMin => j == 0,
                        Face::YMax => j == self.ny,
                        Face::ZMin => k == 0,
                        Face::ZMax => k == self.nz,
                    };
                    if on {
                        out.push(self.node_at(i, j, k));
                    }
                }
            }
        }
        out
    }
}

impl Cells for HexMesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
    fn grid_dims(&self) -> Option<(usize, usize)> {
        // The logical 2-D grid folds y and z into one axis: column `i` of
        // the x direction stays a column, so x-strip partitions (the
        // paper's layout) exist for any P <= nx.
        Some((self.nx, self.ny * self.nz))
    }
    fn grid_cell(&self, e: usize) -> Option<(usize, usize)> {
        Some((e % self.nx, e / self.nx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element_mesh() {
        let m = HexMesh::box_mesh(1, 1, 1, 2.0, 3.0, 4.0);
        assert_eq!(m.n_nodes(), 8);
        assert_eq!(m.n_elems(), 1);
        assert_eq!(m.elem_nodes(0), [0, 1, 3, 2, 4, 5, 7, 6]);
        assert_eq!(m.node_coords(0), [0.0, 0.0, 0.0]);
        assert_eq!(m.node_coords(7), [2.0, 3.0, 4.0]);
    }

    #[test]
    fn node_counts_and_grid_lookup() {
        let m = HexMesh::cantilever(4, 3, 2);
        assert_eq!(m.n_nodes(), 5 * 4 * 3);
        assert_eq!(m.n_elems(), 24);
        assert_eq!(m.node_at(0, 0, 0), 0);
        assert_eq!(m.node_at(4, 3, 2), m.n_nodes() - 1);
        assert_eq!(m.node_coords(m.node_at(2, 1, 1)), [2.0, 1.0, 1.0]);
    }

    #[test]
    fn elements_have_unit_volume_and_shared_faces() {
        let m = HexMesh::cantilever(3, 2, 2);
        // Adjacent elements in x share exactly 4 nodes (a face).
        let e0 = m.elem_nodes(0);
        let e1 = m.elem_nodes(1);
        let shared = e0.iter().filter(|n| e1.contains(n)).count();
        assert_eq!(shared, 4);
        // Corner deltas span a unit cube.
        let c = m.elem_coords(0);
        assert_eq!(c[1][0] - c[0][0], 1.0);
        assert_eq!(c[3][1] - c[0][1], 1.0);
        assert_eq!(c[4][2] - c[0][2], 1.0);
    }

    #[test]
    fn face_nodes_cover_the_boundary() {
        let m = HexMesh::cantilever(3, 2, 2);
        assert_eq!(m.face_nodes(Face::XMin).len(), 3 * 3);
        assert_eq!(m.face_nodes(Face::XMax).len(), 3 * 3);
        assert_eq!(m.face_nodes(Face::YMin).len(), 4 * 3);
        assert_eq!(m.face_nodes(Face::ZMax).len(), 4 * 3);
        for n in m.face_nodes(Face::XMin) {
            assert_eq!(m.node_coords(n)[0], 0.0);
        }
        for n in m.face_nodes(Face::XMax) {
            assert_eq!(m.node_coords(n)[0], m.lx());
        }
    }

    #[test]
    fn cells_impl_folds_y_and_z_into_one_grid_axis() {
        let m = HexMesh::cantilever(4, 3, 2);
        assert_eq!(m.grid_dims(), Some((4, 6)));
        assert_eq!(m.grid_cell(0), Some((0, 0)));
        assert_eq!(m.grid_cell(5), Some((1, 1)));
        assert_eq!(Cells::n_cells(&m), 24);
        assert_eq!(Cells::cell_nodes(&m, 0).len(), 8);
    }

    #[test]
    fn strip_partition_through_cells_keeps_columns_together() {
        use crate::partition::ElementPartition;
        let m = HexMesh::cantilever(4, 2, 2);
        let part = ElementPartition::blocks_of(&m, 2, 1);
        assert_eq!(part.n_parts(), 2);
        // Elements in columns 0..2 belong to part 0, columns 2..4 to part 1.
        for e in 0..m.n_elems() {
            let i = e % m.nx();
            assert_eq!(part.owner(e), if i < 2 { 0 } else { 1 });
        }
        let subs = part.subdomains_of(&m);
        // The interface is the node plane i = 2: 3 x 3 nodes.
        assert_eq!(subs[0].n_interface_nodes(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elements_rejected() {
        HexMesh::box_mesh(0, 1, 1, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_at_out_of_range_panics() {
        HexMesh::cantilever(2, 2, 2).node_at(3, 0, 0);
    }
}
