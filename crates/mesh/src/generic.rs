//! Unstructured quadrilateral meshes.
//!
//! [`GenericQuadMesh`] carries explicit coordinates and connectivity, with
//! no grid structure assumed — the mesh a downstream user imports from a
//! mesh generator. It implements [`Cells`], so the greedy BFS partitioner
//! and the element-based subdomain machinery work on it directly; boundary
//! nodes are recovered topologically (edges used by exactly one element).
//!
//! A minimal text format is provided for interchange:
//!
//! ```text
//! # comment lines start with '#'
//! nodes <n>
//! <x> <y>            (n lines)
//! elements <m>
//! <n0> <n1> <n2> <n3>  (m lines, counter-clockwise)
//! ```

use crate::cells::Cells;
use crate::structured::QuadMesh;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};

/// An unstructured mesh of 4-node quadrilaterals.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericQuadMesh {
    coords: Vec<[f64; 2]>,
    elems: Vec<[usize; 4]>,
}

impl GenericQuadMesh {
    /// Builds a mesh from explicit coordinates and connectivity.
    ///
    /// # Panics
    /// Panics on out-of-range node ids, repeated nodes within an element,
    /// or inverted (non-CCW corner ordering) elements.
    pub fn from_parts(coords: Vec<[f64; 2]>, elems: Vec<[usize; 4]>) -> Self {
        for (e, quad) in elems.iter().enumerate() {
            for &n in quad {
                assert!(n < coords.len(), "element {e}: node {n} out of range");
            }
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert!(quad[i] != quad[j], "element {e}: repeated node");
                }
            }
            let c: Vec<[f64; 2]> = quad.iter().map(|&n| coords[n]).collect();
            let area = 0.5
                * ((c[0][0] * c[1][1] - c[1][0] * c[0][1])
                    + (c[1][0] * c[2][1] - c[2][0] * c[1][1])
                    + (c[2][0] * c[3][1] - c[3][0] * c[2][1])
                    + (c[3][0] * c[0][1] - c[0][0] * c[3][1]));
            assert!(area > 0.0, "element {e} is inverted (area {area})");
        }
        GenericQuadMesh { coords, elems }
    }

    /// Converts a structured mesh (drops the grid structure).
    pub fn from_structured(mesh: &QuadMesh) -> Self {
        GenericQuadMesh {
            coords: mesh.coords().to_vec(),
            elems: (0..mesh.n_elems()).map(|e| mesh.elem_nodes(e)).collect(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of elements.
    pub fn n_elems(&self) -> usize {
        self.elems.len()
    }

    /// Node coordinates.
    pub fn coords(&self) -> &[[f64; 2]] {
        &self.coords
    }

    /// Coordinates of one node.
    pub fn node_coords(&self, n: usize) -> [f64; 2] {
        self.coords[n]
    }

    /// Connectivity of element `e`.
    pub fn elem_nodes(&self, e: usize) -> [usize; 4] {
        self.elems[e]
    }

    /// Coordinates of the four nodes of element `e`.
    pub fn elem_coords(&self, e: usize) -> [[f64; 2]; 4] {
        let n = self.elems[e];
        std::array::from_fn(|k| self.coords[n[k]])
    }

    /// Topological boundary nodes: endpoints of element edges used exactly
    /// once, ascending.
    pub fn boundary_nodes(&self) -> Vec<usize> {
        let mut edge_count: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for quad in &self.elems {
            for k in 0..4 {
                let a = quad[k];
                let b = quad[(k + 1) % 4];
                let key = (a.min(b), a.max(b));
                *edge_count.entry(key).or_insert(0) += 1;
            }
        }
        let mut nodes: Vec<usize> = edge_count
            .iter()
            .filter(|(_, &c)| c == 1)
            .flat_map(|(&(a, b), _)| [a, b])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Boundary nodes within `tol` of the minimum x coordinate — the
    /// "clamped edge" selector for imported cantilever-like meshes.
    pub fn nodes_at_min_x(&self, tol: f64) -> Vec<usize> {
        let xmin = self
            .coords
            .iter()
            .map(|c| c[0])
            .fold(f64::INFINITY, f64::min);
        self.coords
            .iter()
            .enumerate()
            .filter(|(_, c)| (c[0] - xmin).abs() <= tol)
            .map(|(n, _)| n)
            .collect()
    }

    /// Writes the mesh in the crate's text format.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "# parfem generic quad mesh")?;
        writeln!(w, "nodes {}", self.coords.len())?;
        for c in &self.coords {
            writeln!(w, "{:.17e} {:.17e}", c[0], c[1])?;
        }
        writeln!(w, "elements {}", self.elems.len())?;
        for e in &self.elems {
            writeln!(w, "{} {} {} {}", e[0], e[1], e[2], e[3])?;
        }
        Ok(())
    }

    /// Reads a mesh in the crate's text format.
    ///
    /// # Errors
    /// Returns a descriptive string on malformed input.
    pub fn read<R: Read>(r: R) -> Result<Self, String> {
        let reader = BufReader::new(r);
        let mut lines = reader
            .lines()
            .map(|l| l.map_err(|e| format!("io error: {e}")))
            .filter(|l| match l {
                Ok(s) => {
                    let t = s.trim();
                    !t.is_empty() && !t.starts_with('#')
                }
                Err(_) => true,
            });
        let header = lines.next().ok_or("missing nodes header")??;
        let n_nodes: usize = header
            .strip_prefix("nodes ")
            .ok_or("expected 'nodes <n>'")?
            .trim()
            .parse()
            .map_err(|_| "bad node count")?;
        let mut coords = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let line = lines.next().ok_or("truncated node list")??;
            let mut it = line.split_whitespace();
            let x: f64 = it
                .next()
                .ok_or("missing x")?
                .parse()
                .map_err(|_| "bad x coordinate")?;
            let y: f64 = it
                .next()
                .ok_or("missing y")?
                .parse()
                .map_err(|_| "bad y coordinate")?;
            coords.push([x, y]);
        }
        let header = lines.next().ok_or("missing elements header")??;
        let n_elems: usize = header
            .strip_prefix("elements ")
            .ok_or("expected 'elements <m>'")?
            .trim()
            .parse()
            .map_err(|_| "bad element count")?;
        let mut elems = Vec::with_capacity(n_elems);
        for _ in 0..n_elems {
            let line = lines.next().ok_or("truncated element list")??;
            let ids: Vec<usize> = line
                .split_whitespace()
                .map(|t| t.parse().map_err(|_| "bad node id".to_string()))
                .collect::<Result<_, _>>()?;
            if ids.len() != 4 {
                return Err("element line must have 4 node ids".into());
            }
            elems.push([ids[0], ids[1], ids[2], ids[3]]);
        }
        Ok(Self::from_parts(coords, elems))
    }
}

impl Cells for GenericQuadMesh {
    fn n_cell_nodes(&self) -> usize {
        self.n_nodes()
    }
    fn n_cells(&self) -> usize {
        self.n_elems()
    }
    fn cell_nodes(&self, e: usize) -> Vec<usize> {
        self.elem_nodes(e).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GenericQuadMesh {
        GenericQuadMesh::from_structured(&QuadMesh::rectangle(3, 2, 3.0, 2.0))
    }

    #[test]
    fn from_structured_round_trips_connectivity() {
        let q = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        let g = GenericQuadMesh::from_structured(&q);
        assert_eq!(g.n_nodes(), q.n_nodes());
        assert_eq!(g.n_elems(), q.n_elems());
        assert_eq!(g.elem_nodes(0), q.elem_nodes(0));
        assert_eq!(g.elem_coords(3), q.elem_coords(3));
    }

    #[test]
    fn boundary_detection_matches_the_rectangle() {
        let g = sample();
        let boundary = g.boundary_nodes();
        // A 3x2 grid: 12 nodes, only the 2 interior nodes are not boundary.
        assert_eq!(boundary.len(), 10);
        assert!(!boundary.contains(&5));
        assert!(!boundary.contains(&6));
    }

    #[test]
    fn min_x_nodes_form_the_left_edge() {
        let g = sample();
        assert_eq!(g.nodes_at_min_x(1e-12), vec![0, 4, 8]);
    }

    #[test]
    fn text_format_round_trips() {
        let g = sample();
        let mut buf = Vec::new();
        g.write(&mut buf).unwrap();
        let g2 = GenericQuadMesh::read(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(GenericQuadMesh::read("nonsense\n".as_bytes()).is_err());
        assert!(GenericQuadMesh::read("nodes 1\n0 0\nelements 1\n0 0 0\n".as_bytes()).is_err());
        assert!(GenericQuadMesh::read("nodes 2\n0 0\n".as_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_elements_rejected() {
        GenericQuadMesh::from_parts(
            vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]],
            vec![[0, 3, 2, 1]], // clockwise
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_ids_rejected() {
        GenericQuadMesh::from_parts(vec![[0.0, 0.0]], vec![[0, 1, 2, 3]]);
    }

    #[test]
    fn cells_impl_feeds_the_partitioner() {
        let g = sample();
        // Explicit owner partition over the generic mesh.
        let owner = vec![0, 0, 1, 0, 1, 1];
        let part = crate::partition::ElementPartition::from_owner(2, owner);
        let subs = part.subdomains_of(&g);
        assert_eq!(subs.len(), 2);
        let total: usize = subs.iter().map(|s| s.elements.len()).sum();
        assert_eq!(total, 6);
        // Shared interface nodes must pair up.
        let link = &subs[0].neighbors[0];
        assert!(!link.shared_local_nodes.is_empty());
    }
}
