//! Structured 2-D quadrilateral meshes.
//!
//! The paper's experiments all run on a rectangular cantilever discretized by
//! `nXele x nYele` four-node quadrilaterals (Fig. 9, Table 2). Nodes are
//! numbered row-major: node `(i, j)` (column `i` of `0..=nx`, row `j` of
//! `0..=ny`) has index `j * (nx + 1) + i`. Element `(i, j)` has counter-
//! clockwise connectivity `[(i,j), (i+1,j), (i+1,j+1), (i,j+1)]`.

use crate::numbering::Edge;

/// A structured mesh of 4-node quadrilaterals on a rectangle.
///
/// ```
/// use parfem_mesh::QuadMesh;
///
/// let mesh = QuadMesh::cantilever(40, 8); // the paper's Mesh2
/// assert_eq!(mesh.n_nodes(), 369);
/// assert_eq!(mesh.n_elems(), 320);
/// assert_eq!(mesh.elem_nodes(0), [0, 1, 42, 41]); // CCW corners
/// ```
#[derive(Debug, Clone)]
pub struct QuadMesh {
    nx: usize,
    ny: usize,
    lx: f64,
    ly: f64,
    coords: Vec<[f64; 2]>,
    elems: Vec<[usize; 4]>,
}

impl QuadMesh {
    /// Builds an `nx x ny`-element mesh of the rectangle `[0, lx] x [0, ly]`.
    ///
    /// # Panics
    /// Panics if any of `nx`, `ny` is zero or a length is non-positive.
    pub fn rectangle(nx: usize, ny: usize, lx: f64, ly: f64) -> Self {
        assert!(nx > 0 && ny > 0, "mesh must have at least one element");
        assert!(lx > 0.0 && ly > 0.0, "mesh lengths must be positive");
        let n_nodes = (nx + 1) * (ny + 1);
        let mut coords = Vec::with_capacity(n_nodes);
        for j in 0..=ny {
            for i in 0..=nx {
                coords.push([lx * i as f64 / nx as f64, ly * j as f64 / ny as f64]);
            }
        }
        let mut elems = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                let n0 = j * (nx + 1) + i;
                elems.push([n0, n0 + 1, n0 + nx + 2, n0 + nx + 1]);
            }
        }
        QuadMesh {
            nx,
            ny,
            lx,
            ly,
            coords,
            elems,
        }
    }

    /// A unit-thickness cantilever beam mesh with element counts from the
    /// paper's Table 2 and an aspect-ratio-preserving geometry (each element
    /// is a unit square).
    pub fn cantilever(nx: usize, ny: usize) -> Self {
        Self::rectangle(nx, ny, nx as f64, ny as f64)
    }

    /// A mapped mesh: the unit-square reference grid `(s, t) ∈ [0,1]²` is
    /// pushed through `map(s, t) -> [x, y]`. Connectivity and node numbering
    /// are those of the reference grid, so partitioning, DOF maps and
    /// boundary-edge queries ([`QuadMesh::edge_nodes`] in reference space)
    /// all work unchanged — this is how curved domains (arcs, wedges,
    /// tapered beams) enter the pipeline while the isoparametric Q4 element
    /// handles the geometry.
    ///
    /// # Panics
    /// Panics if the map inverts any element (non-positive corner-ordering
    /// area), or for empty grids.
    pub fn mapped(nx: usize, ny: usize, map: impl Fn(f64, f64) -> [f64; 2]) -> Self {
        assert!(nx > 0 && ny > 0, "mesh must have at least one element");
        let mut mesh = Self::rectangle(nx, ny, 1.0, 1.0);
        for j in 0..=ny {
            for i in 0..=nx {
                let n = j * (nx + 1) + i;
                mesh.coords[n] = map(i as f64 / nx as f64, j as f64 / ny as f64);
            }
        }
        // lx/ly lose their rectangle meaning; keep the bounding box.
        let (mut xmax, mut ymax) = (f64::MIN, f64::MIN);
        for c in &mesh.coords {
            xmax = xmax.max(c[0]);
            ymax = ymax.max(c[1]);
        }
        mesh.lx = xmax;
        mesh.ly = ymax;
        // Validate orientation.
        for e in 0..mesh.n_elems() {
            let c = mesh.elem_coords(e);
            let area = 0.5
                * ((c[0][0] * c[1][1] - c[1][0] * c[0][1])
                    + (c[1][0] * c[2][1] - c[2][0] * c[1][1])
                    + (c[2][0] * c[3][1] - c[3][0] * c[2][1])
                    + (c[3][0] * c[0][1] - c[0][0] * c[3][1]));
            assert!(area > 0.0, "map inverts element {e} (area {area})");
        }
        mesh
    }

    /// A deterministically distorted rectangle: every *interior* node is
    /// displaced by up to `amplitude` cell-widths in each direction
    /// (xorshift64 seeded by `seed`). `amplitude < 0.5` keeps all elements
    /// convex and counter-clockwise. Boundary nodes stay put so boundary
    /// conditions and edge loads are unchanged.
    ///
    /// Distorted meshes exercise the general isoparametric Q4 path (the
    /// structured meshes only ever see rectangles) and degrade the matrix
    /// conditioning — a realistic stress test for the preconditioners.
    ///
    /// # Panics
    /// Panics if `amplitude` is not in `[0, 0.5)`.
    pub fn distorted(nx: usize, ny: usize, lx: f64, ly: f64, amplitude: f64, seed: u64) -> Self {
        assert!(
            (0.0..0.5).contains(&amplitude),
            "amplitude must be in [0, 0.5) to keep elements valid"
        );
        let mut mesh = Self::rectangle(nx, ny, lx, ly);
        let hx = lx / nx as f64;
        let hy = ly / ny as f64;
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        for j in 1..ny {
            for i in 1..nx {
                let n = j * (nx + 1) + i;
                mesh.coords[n][0] += amplitude * hx * next();
                mesh.coords[n][1] += amplitude * hy * next();
            }
        }
        mesh
    }

    /// Elements in the x direction.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Elements in the y direction.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Domain length in x.
    pub fn lx(&self) -> f64 {
        self.lx
    }

    /// Domain length in y.
    pub fn ly(&self) -> f64 {
        self.ly
    }

    /// Total number of nodes (`(nx+1) * (ny+1)`, the paper's `nNode`).
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Total number of elements.
    pub fn n_elems(&self) -> usize {
        self.elems.len()
    }

    /// Node coordinates, indexed by node id.
    pub fn coords(&self) -> &[[f64; 2]] {
        &self.coords
    }

    /// The coordinates of one node.
    pub fn node_coords(&self, node: usize) -> [f64; 2] {
        self.coords[node]
    }

    /// Element connectivity (counter-clockwise node ids), indexed by element.
    pub fn elems(&self) -> &[[usize; 4]] {
        &self.elems
    }

    /// Connectivity of one element.
    pub fn elem_nodes(&self, e: usize) -> [usize; 4] {
        self.elems[e]
    }

    /// The node id at grid position `(i, j)`.
    ///
    /// # Panics
    /// Panics if the position is outside the grid.
    pub fn node_at(&self, i: usize, j: usize) -> usize {
        assert!(i <= self.nx && j <= self.ny, "grid position out of range");
        j * (self.nx + 1) + i
    }

    /// The element id at grid position `(i, j)`.
    ///
    /// # Panics
    /// Panics if the position is outside the grid.
    pub fn elem_at(&self, i: usize, j: usize) -> usize {
        assert!(i < self.nx && j < self.ny, "element position out of range");
        j * self.nx + i
    }

    /// The coordinates of the four nodes of element `e`, counter-clockwise.
    pub fn elem_coords(&self, e: usize) -> [[f64; 2]; 4] {
        let n = self.elems[e];
        [
            self.coords[n[0]],
            self.coords[n[1]],
            self.coords[n[2]],
            self.coords[n[3]],
        ]
    }

    /// Node ids along one boundary edge of the rectangle, in grid order.
    pub fn edge_nodes(&self, edge: Edge) -> Vec<usize> {
        match edge {
            Edge::Left => (0..=self.ny).map(|j| self.node_at(0, j)).collect(),
            Edge::Right => (0..=self.ny).map(|j| self.node_at(self.nx, j)).collect(),
            Edge::Bottom => (0..=self.nx).map(|i| self.node_at(i, 0)).collect(),
            Edge::Top => (0..=self.nx).map(|i| self.node_at(i, self.ny)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element_mesh() {
        let m = QuadMesh::rectangle(1, 1, 2.0, 3.0);
        assert_eq!(m.n_nodes(), 4);
        assert_eq!(m.n_elems(), 1);
        assert_eq!(m.elem_nodes(0), [0, 1, 3, 2]);
        assert_eq!(m.node_coords(0), [0.0, 0.0]);
        assert_eq!(m.node_coords(1), [2.0, 0.0]);
        assert_eq!(m.node_coords(2), [0.0, 3.0]);
        assert_eq!(m.node_coords(3), [2.0, 3.0]);
    }

    #[test]
    fn table2_node_counts_match_paper() {
        // Table 2 of the paper: (nXele, nYele) -> nNode.
        let cases = [
            (7usize, 1usize, 16usize),
            (40, 8, 369),
            (40, 20, 861),
            (50, 50, 2601),
            (60, 60, 3721),
            (70, 70, 5041),
            (80, 80, 6561),
            (90, 90, 8281),
            (100, 100, 10201),
            (200, 100, 20301),
        ];
        for (nx, ny, n_nodes) in cases {
            let m = QuadMesh::cantilever(nx, ny);
            assert_eq!(m.n_nodes(), n_nodes, "mesh {nx}x{ny}");
            assert_eq!(m.n_elems(), nx * ny);
        }
    }

    #[test]
    fn connectivity_is_counter_clockwise() {
        let m = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        for e in 0..m.n_elems() {
            let c = m.elem_coords(e);
            // Shoelace area must be positive for CCW ordering.
            let area = 0.5
                * ((c[0][0] * c[1][1] - c[1][0] * c[0][1])
                    + (c[1][0] * c[2][1] - c[2][0] * c[1][1])
                    + (c[2][0] * c[3][1] - c[3][0] * c[2][1])
                    + (c[3][0] * c[0][1] - c[0][0] * c[3][1]));
            assert!(area > 0.0, "element {e} not CCW");
            assert!((area - 1.0).abs() < 1e-12, "element {e} area {area}");
        }
    }

    #[test]
    fn shared_nodes_between_adjacent_elements() {
        let m = QuadMesh::rectangle(2, 1, 2.0, 1.0);
        let e0 = m.elem_nodes(0);
        let e1 = m.elem_nodes(1);
        let shared: Vec<usize> = e0.iter().filter(|n| e1.contains(n)).copied().collect();
        assert_eq!(shared.len(), 2, "adjacent elements share an edge");
    }

    #[test]
    fn edge_nodes_cover_boundaries() {
        let m = QuadMesh::rectangle(3, 2, 3.0, 2.0);
        assert_eq!(m.edge_nodes(Edge::Left), vec![0, 4, 8]);
        assert_eq!(m.edge_nodes(Edge::Right), vec![3, 7, 11]);
        assert_eq!(m.edge_nodes(Edge::Bottom), vec![0, 1, 2, 3]);
        assert_eq!(m.edge_nodes(Edge::Top), vec![8, 9, 10, 11]);
    }

    #[test]
    fn node_and_elem_grid_lookup() {
        let m = QuadMesh::rectangle(4, 3, 4.0, 3.0);
        assert_eq!(m.node_at(0, 0), 0);
        assert_eq!(m.node_at(4, 3), m.n_nodes() - 1);
        assert_eq!(m.elem_at(0, 0), 0);
        assert_eq!(m.elem_at(3, 2), m.n_elems() - 1);
    }

    #[test]
    fn mapped_mesh_builds_a_quarter_annulus() {
        // (s, t) -> polar: radius 1..2, angle pi/2..0 (decreasing with s
        // keeps the (x, y) orientation positive).
        let m = QuadMesh::mapped(8, 4, |s, t| {
            let r = 1.0 + t;
            let a = (1.0 - s) * std::f64::consts::FRAC_PI_2;
            [r * a.cos(), r * a.sin()]
        });
        assert_eq!(m.n_elems(), 32);
        // Total area = pi/4 * (4 - 1) ~ 2.356; FEM cell shoelace areas
        // approximate it from inside (polygonal approximation of arcs).
        let total: f64 = (0..m.n_elems())
            .map(|e| {
                let c = m.elem_coords(e);
                0.5 * ((c[0][0] * c[1][1] - c[1][0] * c[0][1])
                    + (c[1][0] * c[2][1] - c[2][0] * c[1][1])
                    + (c[2][0] * c[3][1] - c[3][0] * c[2][1])
                    + (c[3][0] * c[0][1] - c[0][0] * c[3][1]))
            })
            .sum();
        let exact = std::f64::consts::FRAC_PI_4 * 3.0;
        assert!(
            (total - exact).abs() < 0.02 * exact,
            "area {total} vs {exact}"
        );
        // Reference-space edges still work: Edge::Left (s = 0) is the
        // angle-pi/2 edge, i.e. x = 0.
        for n in m.edge_nodes(Edge::Left) {
            assert!(m.node_coords(n)[0].abs() < 1e-12);
        }
        // Edge::Right (s = 1) is the angle-0 edge, y = 0.
        for n in m.edge_nodes(Edge::Right) {
            assert!(m.node_coords(n)[1].abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "inverts element")]
    fn inverting_map_is_rejected() {
        QuadMesh::mapped(2, 2, |s, t| [t, s]); // orientation-reversing
    }

    #[test]
    fn distorted_mesh_keeps_valid_ccw_elements() {
        let m = QuadMesh::distorted(8, 6, 8.0, 6.0, 0.35, 42);
        for e in 0..m.n_elems() {
            let c = m.elem_coords(e);
            let area = 0.5
                * ((c[0][0] * c[1][1] - c[1][0] * c[0][1])
                    + (c[1][0] * c[2][1] - c[2][0] * c[1][1])
                    + (c[2][0] * c[3][1] - c[3][0] * c[2][1])
                    + (c[3][0] * c[0][1] - c[0][0] * c[3][1]));
            assert!(area > 0.0, "element {e} inverted (area {area})");
        }
    }

    #[test]
    fn distorted_mesh_keeps_boundary_fixed() {
        let m = QuadMesh::distorted(5, 4, 5.0, 4.0, 0.4, 7);
        let r = QuadMesh::rectangle(5, 4, 5.0, 4.0);
        for edge in [Edge::Left, Edge::Right, Edge::Bottom, Edge::Top] {
            for n in m.edge_nodes(edge) {
                assert_eq!(m.node_coords(n), r.node_coords(n), "node {n} moved");
            }
        }
        // But some interior node did move.
        let interior = m.node_at(2, 2);
        assert_ne!(m.node_coords(interior), r.node_coords(interior));
    }

    #[test]
    fn distortion_is_deterministic_per_seed() {
        let a = QuadMesh::distorted(4, 4, 4.0, 4.0, 0.3, 1);
        let b = QuadMesh::distorted(4, 4, 4.0, 4.0, 0.3, 1);
        let c = QuadMesh::distorted(4, 4, 4.0, 4.0, 0.3, 2);
        assert_eq!(a.coords(), b.coords());
        assert_ne!(a.coords(), c.coords());
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elements_rejected() {
        QuadMesh::rectangle(0, 1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_at_out_of_range_panics() {
        QuadMesh::rectangle(2, 2, 1.0, 1.0).node_at(3, 0);
    }
}
